//! The adaptive decision of Figure 3, up close: for one query and a pair of
//! databases — one small and fully sampled, one large and under-sampled —
//! show the estimated score distributions and the resulting
//! shrink-or-don't-shrink choices.
//!
//! Run with: `cargo run --release --example adaptive_selection`

use dbselect_repro::core::prelude::*;
use dbselect_repro::core::uncertainty::{score_distribution, UncertaintyConfig, WordPosterior};
use dbselect_repro::selection::{BGloss, CollectionContext, SelectionAlgorithm};
use dbselect_repro::textindex::Document;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

fn sampled_summary(db_size: f64, sample_size: u32, dfs: &[(u32, u32)]) -> ContentSummary {
    let words: HashMap<u32, WordStats> = dfs
        .iter()
        .map(|&(t, sample_df)| {
            let df = f64::from(sample_df) / f64::from(sample_size) * db_size;
            (
                t,
                WordStats {
                    sample_df,
                    df,
                    tf: df * 1.5,
                },
            )
        })
        .collect();
    ContentSummary::new(db_size, sample_size, words)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    // Query: [blood(0), hemophilia(1)] — word 1 is the rare one.
    let query = [0u32, 1u32];

    // Small database: 320 docs, 300 sampled — the sample basically IS the
    // database. "blood" in half the sample, "hemophilia" in 2 docs.
    let small = sampled_summary(320.0, 300, &[(0, 150), (1, 2)]);
    // Large database (PubMed-like): 100k docs, 300 sampled. Same sample
    // pattern, but now each sampled document stands for 333 real ones.
    let large = sampled_summary(100_000.0, 300, &[(0, 150)]); // "hemophilia" missed!

    let algo = BGloss;
    for (name, summary) in [
        ("small+well-sampled", &small),
        ("large+under-sampled", &large),
    ] {
        let views: Vec<&dyn SummaryView> = vec![summary];
        let ctx = CollectionContext::build(&query, &views);
        let gamma = summary.gamma().unwrap_or(-2.0);
        let posteriors: Vec<WordPosterior> = query
            .iter()
            .map(|&w| {
                let s = summary.word(w).map_or(0, |st| st.sample_df);
                WordPosterior::new(s, summary.sample_size(), summary.db_size(), gamma, 160)
            })
            .collect();
        let dist = score_distribution(
            &posteriors,
            summary.db_size(),
            |p| algo.score_with_df_fractions(&query, p, summary, &ctx),
            &mut rng,
            &UncertaintyConfig::default(),
        );
        let decision = if algo.score_is_uncertain(dist.mean, dist.std_dev, query.len()) {
            "USE SHRUNK SUMMARY (score unreliable)"
        } else {
            "keep sample summary (score reliable)"
        };
        println!("{name}:");
        println!("  bGlOSS score distribution over plausible word frequencies:");
        println!(
            "    mean {:.4}, std {:.4}, draws {}",
            dist.mean, dist.std_dev, dist.draws
        );
        println!("  decision: {decision}\n");
    }

    // Show why: the posterior over hemophilia's true frequency is tight for
    // the small database but spans orders of magnitude for the large one.
    println!("posterior mean of hemophilia's document frequency:");
    let small_post = WordPosterior::new(2, 300, 320.0, -2.0, 160);
    let large_post = WordPosterior::new(0, 300, 100_000.0, -2.0, 160);
    println!(
        "  small database:  {:>8.1} docs (observed 2 in the sample)",
        small_post.mean()
    );
    println!(
        "  large database:  {:>8.1} docs (observed none — could be 0, could be hundreds)",
        large_post.mean()
    );

    // Tiny end-to-end check that the example stays truthful.
    let _ = Document::from_tokens(0, vec![0, 1]);
}
