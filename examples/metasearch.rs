//! A full metasearch session over a Web-like collection of databases: build
//! the metasearcher (sampling + shrinkage), route the test-bed queries, and
//! report selection accuracy against the ground-truth relevance judgments.
//!
//! Run with: `cargo run --release --example metasearch`

use dbselect_repro::corpus::TestBedConfig;
use dbselect_repro::eval::rk::rk;
use dbselect_repro::{Algorithm, Classification, Metasearcher, MetasearcherConfig};

fn main() {
    // A scaled-down Web-like collection (79 databases) keeps this example
    // snappy; drop `.scaled_down(4)` for the full 315-database experience.
    let bed = TestBedConfig::web_like().scaled_down(4).build();
    println!(
        "test bed: {} databases, {} documents, {} queries",
        bed.databases.len(),
        bed.total_docs(),
        bed.queries.len()
    );

    let databases: Vec<_> = bed.databases.iter().map(|d| d.db.clone()).collect();
    let mut meta = Metasearcher::build(
        bed.hierarchy.clone(),
        databases,
        &bed.seed_lexicon,
        Classification::Directory(bed.true_categories()),
        Algorithm::Cori,
        bed.dict.len(),
        MetasearcherConfig::default(),
    );
    println!("metasearcher ready ({} databases profiled)\n", meta.len());

    // Route the first few queries and show what a user would see.
    let k = 5;
    let mut rks = Vec::new();
    for (qi, query) in bed.queries.iter().enumerate() {
        let words: Vec<&str> = query.terms.iter().map(|&t| bed.dict.term(t)).collect();
        let selections = meta.select(&query.terms, k);
        let ranking: Vec<usize> = selections.iter().map(|s| s.index).collect();
        let quality = rk(&ranking, &bed.relevance[qi], k);
        if let Some(r) = quality {
            rks.push(r);
        }
        if qi < 5 {
            println!("query {qi}: [{}]", words.join(" "));
            println!("  need topic: {}", bed.hierarchy.full_name(query.topic));
            for s in &selections {
                let home = bed.hierarchy.full_name(bed.databases[s.index].category);
                let rel = bed.relevance[qi][s.index];
                println!(
                    "  -> {:<12} score {:>9.4}  ({home}, {rel} relevant docs)",
                    s.name, s.score
                );
            }
            match quality {
                Some(r) => println!("  R{k} = {r:.3}\n"),
                None => println!("  (no relevant documents for this query)\n"),
            }
        }
    }
    let mean_rk = rks.iter().sum::<f64>() / rks.len().max(1) as f64;
    println!(
        "mean R{k} over {} evaluable queries: {mean_rk:.3}",
        rks.len()
    );

    // Steps 2–3 of the metasearching loop: forward the query to the
    // selected databases and show the merged (CORI-weighted) result list.
    let query = &bed.queries[0];
    let merged = meta.search(&query.terms, 3, 4);
    println!(
        "\nmerged results for query 0 (top {}):",
        merged.len().min(6)
    );
    for (db, doc) in merged.iter().take(6) {
        println!("  {db} / doc {doc}");
    }
}
