//! Profile once, select forever: persist a profiled collection with the
//! `store` crate and show that selection after a reload is bit-identical —
//! the offline/online split the paper assumes ("the λi weights are computed
//! off-line ... This computation does not involve any overhead at
//! query-processing time", Section 3.2).
//!
//! Run with: `cargo run --release --example persistence`

use dbselect_repro::core::category_summary::CategoryWeighting;
use dbselect_repro::corpus::TestBedConfig;
use dbselect_repro::sampling::{profile_qbs, PipelineConfig};
use dbselect_repro::selection::{adaptive_rank, AdaptiveConfig, Cori, SummaryPair};
use rand::rngs::StdRng;
use rand::SeedableRng;
use store::{CollectionStore, StoredDatabase};

fn main() {
    // Offline phase: sample and summarize a small collection.
    let bed = TestBedConfig::tiny(2026).build();
    let mut rng = StdRng::seed_from_u64(2026);
    let pipeline = PipelineConfig {
        frequency_estimation: true,
        ..Default::default()
    };
    let databases: Vec<StoredDatabase> = bed
        .databases
        .iter()
        .map(|tdb| {
            let profile = profile_qbs(&tdb.db, &bed.seed_lexicon, &pipeline, &mut rng);
            StoredDatabase {
                name: tdb.name.clone(),
                classification: tdb.category,
                summary: profile.summary,
                sample_docs: profile.sample.docs.into_iter().map(|d| d.tokens).collect(),
            }
        })
        .collect();
    let store = CollectionStore {
        dict: bed.dict.clone(),
        hierarchy: bed.hierarchy.clone(),
        databases,
    };

    let path = std::env::temp_dir().join("dbselect-example.store");
    store.save(&path).expect("save store");
    let size = std::fs::metadata(&path).expect("stat").len();
    println!(
        "persisted {} databases / {} terms in {} KiB -> {}",
        store.databases.len(),
        store.dict.len(),
        size / 1024,
        path.display()
    );

    // Online phase: reload, re-shrink (deterministic), and select.
    let reloaded = CollectionStore::load(&path).expect("load store");
    let rank = |s: &CollectionStore| {
        let shrunk = s.shrink_all(CategoryWeighting::BySize);
        let pairs: Vec<SummaryPair<'_>> = s
            .databases
            .iter()
            .zip(&shrunk)
            .map(|(db, r)| SummaryPair {
                unshrunk: &db.summary,
                shrunk: r,
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(7);
        adaptive_rank(
            &Cori::default(),
            &bed.queries[0].terms,
            &pairs,
            &AdaptiveConfig::default(),
            &mut rng,
        )
        .ranking
    };
    let before = rank(&store);
    let after = rank(&reloaded);
    assert_eq!(before, after, "selection is identical across save/load");

    println!(
        "\nquery {:?} selects (before == after reload):",
        bed.queries[0].terms
    );
    for r in before.iter().take(5) {
        println!(
            "  {:<12} score {:.4}",
            reloaded.databases[r.index].name, r.score
        );
    }
    std::fs::remove_file(&path).ok();
}
