//! Quickstart: the paper's "hypertension" story (Examples 1 and 3) on two
//! tiny hand-written databases.
//!
//! A heart-disease database's *sample* happens to miss the word
//! "hypertension" even though the database contains it. Its sibling under
//! the same category did sample the word, so the shrunk content summary
//! recovers it — and a metasearcher routing the query [hypertension] now
//! finds the right database.
//!
//! Run with: `cargo run --release --example quickstart`

use dbselect_repro::core::prelude::*;
use dbselect_repro::textindex::{Analyzer, Document, IndexedDatabase, TermDict};

fn main() {
    let analyzer = Analyzer::english();
    let mut dict = TermDict::new();

    // Two "Heart" databases. D1's later documents discuss hypertension, but
    // a small sample will only see the early ones.
    let d1_texts = [
        "The heart pumps blood through arteries and veins",
        "Cardiac surgery repairs damaged heart valves",
        "Cholesterol deposits narrow the coronary arteries",
        "Hypertension is high blood pressure and strains the heart",
        "Hypertension increases the risk of stroke and heart failure",
        "Treating hypertension lowers cardiovascular mortality",
    ];
    let d2_texts = [
        "Hypertension affects a quarter of adults",
        "Blood pressure medication controls hypertension",
        "The heart muscle thickens under chronic hypertension",
        "Aerobic exercise reduces blood pressure",
    ];

    let build = |texts: &[&str], dict: &mut TermDict| -> Vec<Document> {
        texts
            .iter()
            .enumerate()
            .map(|(i, t)| Document::from_text(i as u32, t, &analyzer, dict))
            .collect()
    };
    let d1_docs = build(&d1_texts, &mut dict);
    let d2_docs = build(&d2_texts, &mut dict);
    let d1 = IndexedDatabase::new("heart-journal", d1_docs.clone());
    let d2 = IndexedDatabase::new("bp-clinic", d2_docs.clone());

    // A topic hierarchy: Root → Health → Heart.
    let mut hierarchy = Hierarchy::new("Root");
    let health = hierarchy.add_child(Hierarchy::ROOT, "Health");
    let heart = hierarchy.add_child(health, "Heart");

    // Approximate summaries from *samples*: D1's sample is its first three
    // documents — no "hypertension"; D2 is small enough to sample fully.
    let s1 = ContentSummary::from_sample(d1_docs.iter().take(3), d1.num_docs() as f64);
    let s2 = ContentSummary::from_sample(d2_docs.iter(), d2.num_docs() as f64);

    let hyper = dict
        .lookup("hypertens")
        .expect("stemmed form of hypertension");
    println!(
        "p̂(hypertension | heart-journal) from the sample: {:.3}",
        s1.p_df(hyper)
    );
    println!(
        "true p(hypertension | heart-journal):             {:.3}",
        3.0 / 6.0
    );

    // Shrink D1's summary toward the Heart category (which aggregates D2).
    let cats = CategorySummaries::build(
        &hierarchy,
        &[(heart, &s1), (heart, &s2)],
        CategoryWeighting::BySize,
    );
    let comps = cats.components_for(&hierarchy, heart, &s1, true);
    let config = ShrinkageConfig {
        uniform_p: 1.0 / dict.len() as f64,
        ..Default::default()
    };
    let shrunk = shrink(&s1, &comps, &config);

    println!("\nmixture weights λ (uniform, Root, Health, Heart, database):");
    for (name, lambda) in ["uniform", "Root", "Health", "Heart", "heart-journal"]
        .iter()
        .zip(shrunk.lambdas())
    {
        println!("  {name:<14} {lambda:.3}");
    }
    println!(
        "\np̂_R(hypertension | heart-journal) after shrinkage: {:.3}",
        shrunk.p_df(hyper)
    );
    assert!(
        shrunk.p_df(hyper) > 0.0,
        "shrinkage recovered the missing word"
    );

    println!("\nShrinkage recovered a word the sample missed — the database");
    println!("will now be considered for the query [hypertension].");
}
