//! Inspect what sampling actually learns about a database: summary
//! completeness (recall/precision against the perfect summary), the
//! Mandelbrot frequency-estimation fit, the sample-resample size estimate,
//! and the shrinkage mixture weights — a guided tour of the pipeline's
//! intermediate artifacts.
//!
//! Run with: `cargo run --release --example summary_inspection`

use dbselect_repro::core::prelude::*;
use dbselect_repro::corpus::TestBedConfig;
use dbselect_repro::eval::metrics::{summary_quality, EvaluatedSummary};
use dbselect_repro::sampling::{
    profile_qbs, sample_resample, PipelineConfig, SizeEstimationConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let bed = TestBedConfig::trec4_like().scaled_down(4).build();
    let mut rng = StdRng::seed_from_u64(2024);

    // Pick the largest database — the one sampling understands least.
    let target = (0..bed.databases.len())
        .max_by_key(|&i| bed.databases[i].db.num_docs())
        .expect("non-empty test bed");
    let tdb = &bed.databases[target];
    println!(
        "database {} — {} documents, topic {}",
        tdb.name,
        tdb.db.num_docs(),
        bed.hierarchy.full_name(tdb.category)
    );

    // 1. Query-based sampling with frequency estimation.
    let pipeline = PipelineConfig {
        frequency_estimation: true,
        ..Default::default()
    };
    let profile = profile_qbs(&tdb.db, &bed.seed_lexicon, &pipeline, &mut rng);
    println!(
        "\nsample: {} documents via {} queries",
        profile.sample.len(),
        profile.sample.queries_sent
    );

    // 2. Size estimation.
    let size = sample_resample(
        &tdb.db,
        &profile.sample,
        &SizeEstimationConfig::default(),
        &mut rng,
    );
    println!(
        "sample-resample size estimate: {size:.0} (true: {})",
        tdb.db.num_docs()
    );

    // 3. Mandelbrot checkpoints.
    println!("\nMandelbrot checkpoints (|S|, α, log β):");
    for cp in &profile.sample.checkpoints {
        println!(
            "  |S| = {:>4}  α = {:>7.3}  log β = {:>7.3}",
            cp.sample_size, cp.alpha, cp.log_beta
        );
    }
    if let Some(est) = FrequencyEstimator::from_checkpoints(&profile.sample.checkpoints) {
        let (alpha, beta) = est.params_for_size(size);
        println!(
            "extrapolated to |D̂| = {size:.0}: α = {alpha:.3}, β = {beta:.1}, γ = {:.3}",
            est.gamma(size)
        );
    }

    // 4. Summary completeness against the perfect summary.
    let perfect = ContentSummary::perfect(&tdb.db);
    let approx_eval = EvaluatedSummary::from_content_summary(&profile.summary);
    let perfect_eval = EvaluatedSummary::from_content_summary(&perfect);
    let q = summary_quality(&approx_eval, &perfect_eval);
    println!("\nunshrunk summary vs perfect:");
    println!("  weighted recall    {:.3}", q.weighted_recall);
    println!(
        "  unweighted recall  {:.3}  (vocabulary coverage)",
        q.unweighted_recall
    );
    println!("  weighted precision {:.3}", q.weighted_precision);
    println!("  Spearman ρ         {:.3}", q.spearman);

    // 5. Shrink and re-evaluate.
    let summaries: Vec<(CategoryId, ContentSummary)> = bed
        .databases
        .iter()
        .map(|d| {
            let p = profile_qbs(&d.db, &bed.seed_lexicon, &pipeline, &mut rng);
            (d.category, p.summary)
        })
        .collect();
    let refs: Vec<(CategoryId, &ContentSummary)> = summaries.iter().map(|(c, s)| (*c, s)).collect();
    let cats = CategorySummaries::build(&bed.hierarchy, &refs, CategoryWeighting::BySize);
    let comps = cats.components_for(&bed.hierarchy, tdb.category, &summaries[target].1, true);
    let config = ShrinkageConfig {
        uniform_p: 1.0 / bed.dict.len() as f64,
        ..Default::default()
    };
    let shrunk = shrink(&summaries[target].1, &comps, &config);

    println!("\nmixture weights λ:");
    let path = bed.hierarchy.path_from_root(tdb.category);
    let lambdas = shrunk.lambdas();
    println!("  {:<18} {:.3}", "uniform C0", lambdas[0]);
    for (i, &cat) in path.iter().enumerate() {
        println!("  {:<18} {:.3}", bed.hierarchy.name(cat), lambdas[i + 1]);
    }
    println!("  {:<18} {:.3}", "database", lambdas[lambdas.len() - 1]);

    let shrunk_eval = EvaluatedSummary::from_shrunk_summary(&shrunk);
    let qs = summary_quality(&shrunk_eval, &perfect_eval);
    println!("\nshrunk summary vs perfect:");
    println!(
        "  weighted recall    {:.3}  (was {:.3})",
        qs.weighted_recall, q.weighted_recall
    );
    println!(
        "  unweighted recall  {:.3}  (was {:.3})",
        qs.unweighted_recall, q.unweighted_recall
    );
    println!(
        "  weighted precision {:.3}  (was {:.3})",
        qs.weighted_precision, q.weighted_precision
    );
}
