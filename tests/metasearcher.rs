//! Integration tests for the `Metasearcher` façade.

use dbselect_repro::corpus::TestBedConfig;
use dbselect_repro::sampling::{ProbeClassifier, SamplerKind};
use dbselect_repro::selection::ShrinkageMode;
use dbselect_repro::{Algorithm, Classification, Metasearcher, MetasearcherConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build_meta(
    algorithm: Algorithm,
    shrinkage: ShrinkageMode,
) -> (corpus::TestBed, Metasearcher<textindex::IndexedDatabase>) {
    let bed = TestBedConfig::tiny(77).build();
    let databases: Vec<_> = bed.databases.iter().map(|d| d.db.clone()).collect();
    let meta = Metasearcher::build(
        bed.hierarchy.clone(),
        databases,
        &bed.seed_lexicon,
        Classification::Directory(bed.true_categories()),
        algorithm,
        bed.dict.len(),
        MetasearcherConfig {
            shrinkage,
            ..Default::default()
        },
    );
    (bed, meta)
}

#[test]
fn select_returns_at_most_k() {
    let (bed, mut meta) = build_meta(Algorithm::Cori, ShrinkageMode::Adaptive);
    for query in &bed.queries {
        let hits = meta.select(&query.terms, 4);
        assert!(hits.len() <= 4);
        // Scores are descending.
        assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
        for h in &hits {
            assert!(h.index < meta.len());
            assert!(h.name.starts_with("Tiny-db"));
        }
    }
}

#[test]
fn search_merges_results_from_selected_databases() {
    let (bed, mut meta) = build_meta(Algorithm::Cori, ShrinkageMode::Adaptive);
    let results = meta.search(&bed.queries[0].terms, 3, 5);
    assert!(results.len() <= 15);
    for (name, _doc) in &results {
        assert!(name.starts_with("Tiny-db"));
    }
}

#[test]
fn same_seed_same_selections() {
    let (bed, mut a) = build_meta(Algorithm::BGloss, ShrinkageMode::Adaptive);
    let (_, mut b) = build_meta(Algorithm::BGloss, ShrinkageMode::Adaptive);
    for query in bed.queries.iter().take(3) {
        assert_eq!(a.select(&query.terms, 5), b.select(&query.terms, 5));
    }
}

#[test]
fn automatic_classification_path_works() {
    let mut bed = TestBedConfig::tiny(78).build();
    let mut rng = StdRng::seed_from_u64(78);
    let examples = bed.training_documents(5, &mut rng);
    let classifier = ProbeClassifier::train(&bed.hierarchy, &examples, 6);
    let databases: Vec<_> = bed.databases.iter().map(|d| d.db.clone()).collect();
    let mut meta = Metasearcher::build(
        bed.hierarchy.clone(),
        databases,
        &bed.seed_lexicon,
        Classification::Automatic(classifier),
        Algorithm::Lm,
        bed.dict.len(),
        MetasearcherConfig {
            sampler: SamplerKind::Fps,
            ..Default::default()
        },
    );
    // Classifications were derived automatically and are valid nodes.
    for i in 0..meta.len() {
        assert!(meta.classification(i) < bed.hierarchy.len());
    }
    let hits = meta.select(&bed.queries[0].terms, 3);
    assert!(hits.len() <= 3);
}

#[test]
fn summaries_are_accessible() {
    let (_, meta) = build_meta(Algorithm::Cori, ShrinkageMode::Never);
    assert!(!meta.is_empty());
    for i in 0..meta.len() {
        assert!(meta.summary(i).vocabulary_size() > 0);
        let lambdas = meta.shrunk_summary(i).lambdas();
        let sum: f64 = lambdas.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }
}

#[test]
fn universal_mode_scores_every_database() {
    let (bed, mut meta) = build_meta(Algorithm::BGloss, ShrinkageMode::Always);
    let hits = meta.select(&bed.queries[0].terms, bed.databases.len());
    assert_eq!(hits.len(), bed.databases.len());
}
