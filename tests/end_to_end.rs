//! Cross-crate integration tests: the full pipeline (corpus generation →
//! sampling → summaries → shrinkage → selection → evaluation) on small
//! test beds, asserting the paper's qualitative claims hold end to end.

use corpus::TestBedConfig;
use dbselect_core::category_summary::{CategorySummaries, CategoryWeighting};
use dbselect_core::hierarchy::CategoryId;
use dbselect_core::shrinkage::{shrink, ShrinkageConfig};
use dbselect_core::summary::{ContentSummary, SummaryView};
use eval::metrics::{summary_quality, EvaluatedSummary};
use eval::rk::rk_for_ranking;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sampling::{profile_qbs, PipelineConfig, SamplerKind};
use selection::{
    adaptive_rank, rank_databases, AdaptiveConfig, BGloss, ShrinkageMode, SummaryPair,
};

struct Profiled {
    bed: corpus::TestBed,
    summaries: Vec<ContentSummary>,
    shrunk: Vec<dbselect_core::shrinkage::ShrunkSummary>,
}

/// Profile a small test bed with QBS + frequency estimation and shrink.
fn profile(seed: u64) -> Profiled {
    let mut config = TestBedConfig::tiny(seed);
    // Databases several times larger than the sample target, so summaries
    // are genuinely incomplete.
    config.sizes = corpus::SizeModel::Uniform(300, 700);
    config.num_databases = 16;
    let bed = config.build();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    let pipeline = PipelineConfig {
        frequency_estimation: true,
        ..Default::default()
    };
    let mut qbs = pipeline;
    qbs.qbs.target_sample_size = 100; // small samples: incompleteness guaranteed

    let summaries: Vec<ContentSummary> = bed
        .databases
        .iter()
        .map(|tdb| profile_qbs(&tdb.db, &bed.seed_lexicon, &qbs, &mut rng).summary)
        .collect();
    let classifications: Vec<CategoryId> = bed.true_categories();
    let refs: Vec<(CategoryId, &ContentSummary)> = classifications
        .iter()
        .copied()
        .zip(summaries.iter())
        .collect();
    let cats = CategorySummaries::build(&bed.hierarchy, &refs, CategoryWeighting::BySize);
    let shrink_config = ShrinkageConfig {
        uniform_p: 1.0 / bed.dict.len() as f64,
        ..Default::default()
    };
    let shrunk = summaries
        .iter()
        .zip(&classifications)
        .map(|(s, &c)| {
            let comps = cats.components_for(&bed.hierarchy, c, s, true);
            shrink(s, &comps, &shrink_config)
        })
        .collect();
    Profiled {
        bed,
        summaries,
        shrunk,
    }
}

#[test]
fn shrinkage_improves_mean_recall() {
    let p = profile(11);
    let mut wr_gain = 0.0;
    let mut ur_gain = 0.0;
    for (i, tdb) in p.bed.databases.iter().enumerate() {
        let perfect = EvaluatedSummary::from_content_summary(&ContentSummary::perfect(&tdb.db));
        let unshrunk = EvaluatedSummary::from_content_summary(&p.summaries[i]);
        let shrunk = EvaluatedSummary::from_shrunk_summary(&p.shrunk[i]);
        let qu = summary_quality(&unshrunk, &perfect);
        let qs = summary_quality(&shrunk, &perfect);
        wr_gain += qs.weighted_recall - qu.weighted_recall;
        ur_gain += qs.unweighted_recall - qu.unweighted_recall;
    }
    let n = p.bed.databases.len() as f64;
    assert!(
        wr_gain / n > 0.0,
        "mean weighted-recall gain {}",
        wr_gain / n
    );
    assert!(
        ur_gain / n > 0.0,
        "mean unweighted-recall gain {}",
        ur_gain / n
    );
}

#[test]
fn shrinkage_precision_loss_is_bounded() {
    let p = profile(12);
    for (i, tdb) in p.bed.databases.iter().enumerate() {
        let perfect = EvaluatedSummary::from_content_summary(&ContentSummary::perfect(&tdb.db));
        let shrunk = EvaluatedSummary::from_shrunk_summary(&p.shrunk[i]);
        let q = summary_quality(&shrunk, &perfect);
        // The paper's weighted precision stays above 0.9; give slack for
        // the miniature test bed.
        assert!(
            q.weighted_precision > 0.6,
            "db {i}: wp {}",
            q.weighted_precision
        );
    }
}

#[test]
fn universal_shrinkage_lets_bgloss_rank_every_database() {
    let p = profile(13);
    let pairs: Vec<SummaryPair<'_>> = p
        .summaries
        .iter()
        .zip(&p.shrunk)
        .map(|(unshrunk, shrunk)| SummaryPair { unshrunk, shrunk })
        .collect();
    let mut rng = StdRng::seed_from_u64(99);
    let config = AdaptiveConfig {
        mode: ShrinkageMode::Always,
        ..Default::default()
    };
    let query = &p.bed.queries[0];
    let outcome = adaptive_rank(&BGloss, &query.terms, &pairs, &config, &mut rng);
    // Every shrunk summary gives every word non-zero probability, so no
    // database collapses to a zero bGlOSS score.
    assert_eq!(outcome.ranking.len(), p.bed.databases.len());
}

#[test]
fn plain_bgloss_drops_databases_missing_query_words() {
    let p = profile(14);
    let views: Vec<&dyn SummaryView> = p.summaries.iter().map(|s| s as &dyn SummaryView).collect();
    let mut dropped_any = false;
    for query in &p.bed.queries {
        let ranking = rank_databases(&BGloss, &query.terms, &views);
        if ranking.len() < p.bed.databases.len() {
            dropped_any = true;
        }
    }
    assert!(
        dropped_any,
        "incomplete summaries must zero out some bGlOSS scores"
    );
}

#[test]
fn adaptive_shrinkage_beats_plain_for_bgloss() {
    // Averaged over several seeds to keep the assertion robust; this is the
    // paper's central claim in its sharpest setting (bGlOSS, short queries).
    let mut shr_total = 0.0;
    let mut plain_total = 0.0;
    let mut n = 0usize;
    for seed in [21u64, 22, 23] {
        let p = profile(seed);
        let pairs: Vec<SummaryPair<'_>> = p
            .summaries
            .iter()
            .zip(&p.shrunk)
            .map(|(unshrunk, shrunk)| SummaryPair { unshrunk, shrunk })
            .collect();
        let views: Vec<&dyn SummaryView> =
            p.summaries.iter().map(|s| s as &dyn SummaryView).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for (qi, query) in p.bed.queries.iter().enumerate() {
            let config = AdaptiveConfig::default();
            let adaptive = adaptive_rank(&BGloss, &query.terms, &pairs, &config, &mut rng);
            let plain = rank_databases(&BGloss, &query.terms, &views);
            let k = 3;
            if let (Some(s), Some(pl)) = (
                rk_for_ranking(&adaptive.ranking, &p.bed.relevance[qi], k),
                rk_for_ranking(&plain, &p.bed.relevance[qi], k),
            ) {
                shr_total += s;
                plain_total += pl;
                n += 1;
            }
        }
    }
    assert!(n > 0);
    assert!(
        shr_total >= plain_total,
        "adaptive shrinkage mean R3 {} vs plain {}",
        shr_total / n as f64,
        plain_total / n as f64
    );
}

#[test]
fn pipeline_is_deterministic_given_seeds() {
    let a = profile(31);
    let b = profile(31);
    for (sa, sb) in a.summaries.iter().zip(&b.summaries) {
        assert_eq!(sa.vocabulary_size(), sb.vocabulary_size());
        assert_eq!(sa.db_size(), sb.db_size());
    }
    for (ra, rb) in a.shrunk.iter().zip(&b.shrunk) {
        assert_eq!(ra.lambdas(), rb.lambdas());
    }
}

#[test]
fn fps_pipeline_runs_end_to_end() {
    let mut bed = TestBedConfig::tiny(41).build();
    let mut rng = StdRng::seed_from_u64(41);
    let examples = bed.training_documents(5, &mut rng);
    let classifier = sampling::ProbeClassifier::train(&bed.hierarchy, &examples, 6);
    let pipeline = PipelineConfig {
        frequency_estimation: true,
        ..Default::default()
    };
    for tdb in bed.databases.iter().take(4) {
        let profile =
            sampling::profile_fps(&tdb.db, &bed.hierarchy, &classifier, &pipeline, &mut rng);
        assert!(profile.classification.is_some());
        assert_eq!(profile.sampler, SamplerKind::Fps);
        assert!(profile.summary.vocabulary_size() > 0);
        assert!(profile.summary.db_size() > 0.0);
    }
}
