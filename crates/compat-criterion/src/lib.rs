//! A self-contained stand-in for the subset of the `criterion` API this
//! workspace uses, for builds without crates.io access.
//!
//! It keeps the harness shape — `criterion_group!` / `criterion_main!`,
//! `Criterion::bench_function`, benchmark groups with `bench_with_input` —
//! but replaces the statistics engine with a simple warm-up + timed-batch
//! loop that prints a median ns/iter estimate per benchmark. Good enough to
//! compare runs on one machine; not a replacement for real criterion.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(300);
const MEASURE: Duration = Duration::from_millis(1200);
const BATCHES: usize = 10;

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(id);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run a benchmark inside this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.into().0));
        self
    }

    /// Run a benchmark with an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.into().0));
        self
    }

    /// Accepted and ignored (the shim has a fixed measurement budget).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted and ignored (the shim has a fixed measurement budget).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted and ignored (no throughput reporting in the shim).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// A benchmark identifier, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Just the parameter, for groups where the group name is the function.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Throughput hint (accepted and ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// True when the binary was invoked with `--test` (mirroring criterion's
/// smoke mode): each benchmark body runs exactly once, unmeasured, so CI
/// can verify benchmarks still compile and execute without paying for
/// warm-up and timed batches.
fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Runs the closure under measurement.
#[derive(Debug, Default)]
pub struct Bencher {
    batch_ns: Vec<f64>,
    smoke: bool,
}

impl Bencher {
    /// Measure `routine`: warm up, pick an iteration count that fills a
    /// batch, then time several batches. Under `--test`, run it once and
    /// skip measurement entirely.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if smoke_mode() {
            self.smoke = true;
            black_box(routine());
            return;
        }
        // Warm-up, and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        let batch_budget = MEASURE.as_nanos() as f64 / BATCHES as f64;
        let iters_per_batch = ((batch_budget / per_iter.max(1.0)) as u64).max(1);

        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters_per_batch as f64;
            self.batch_ns.push(ns);
        }
    }

    fn report(&self, id: &str) {
        if self.smoke {
            println!("{id:<56} smoke ok (1 iteration, unmeasured)");
            return;
        }
        if self.batch_ns.is_empty() {
            println!("{id:<56} (no measurement)");
            return;
        }
        let mut sorted = self.batch_ns.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let lo = sorted[0];
        let hi = sorted[sorted.len() - 1];
        println!(
            "{id:<56} {:>14} ns/iter (min {:.0}, max {:.0})",
            format!("{median:.0}"),
            lo,
            hi
        );
    }
}

/// Collect benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// The `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_batches() {
        let mut b = Bencher::default();
        b.iter(|| black_box(1u64 + 1));
        assert_eq!(b.batch_ns.len(), BATCHES);
        assert!(b.batch_ns.iter().all(|&ns| ns > 0.0));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }
}
