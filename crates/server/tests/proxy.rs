//! End-to-end tests of the federated proxy tier over real sockets.
//!
//! The load-bearing assertions: a proxy fronting two real shard daemons
//! serves `/route` and `/route_batch` responses **byte-identical** to a
//! single monolithic daemon for every (algorithm, shrinkage mode) pair;
//! backend faults (killed daemon, stalled accept, mid-body close,
//! garbage JSON, slow dribbler) degrade responses instead of failing
//! them — the client never sees a 5xx while at least one shard is up;
//! the per-backend circuit breaker opens on a dead backend and recovers
//! through a half-open probe once it comes back.

mod common;

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use common::{fixture_catalog, start};
use server::json::Json;
use server::state::ServingState;
use server::{ProxyConfig, Server, ServerConfig};
use store::snapshot::ServingSnapshot;

/// One `Connection: close` HTTP exchange on a fresh connection.
fn exchange(addr: SocketAddr, raw: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("write");
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).expect("read");
    let text = String::from_utf8(bytes).expect("utf-8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("header terminator");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, head.to_string(), body.to_string())
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String, String) {
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    exchange(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

fn shutdown(addr: SocketAddr, handle: JoinHandle<()>) {
    let (status, _, _) = post(addr, "/admin/shutdown", "");
    assert_eq!(status, 200);
    handle.join().expect("accept loop exits cleanly");
}

/// A shard daemon for the proxy to scatter to: the **full** snapshot,
/// started with `--shards 2`, so it can run the global choose phase and
/// score whichever shard the proxy asks for.
fn shard_backend() -> (SocketAddr, JoinHandle<()>) {
    let state = ServingState::from_snapshot_sharded(
        ServingSnapshot::from_stored(&fixture_catalog(1.0)),
        "mem".to_string(),
        0,
        2,
    );
    start(ServerConfig::default(), state)
}

/// Start a proxy daemon over `backends` on an OS-assigned port.
fn start_proxy(mut config: ServerConfig, proxy: ProxyConfig) -> (SocketAddr, JoinHandle<()>) {
    if std::env::var("DBSELECTD_TEST_MODE").as_deref() == Ok("threaded") {
        config.mode = server::ServeMode::Threaded;
    }
    config.proxy = Some(proxy);
    let daemon = Server::bind_proxy(config).expect("bind proxy");
    let addr = daemon.local_addr();
    let handle = std::thread::spawn(move || daemon.run().expect("run"));
    (addr, handle)
}

fn proxy_over(backends: &[SocketAddr]) -> ProxyConfig {
    ProxyConfig {
        backends: backends.iter().map(|a| a.to_string()).collect(),
        health_interval: Duration::from_millis(50),
        ..Default::default()
    }
}

/// Poll `probe` until it holds or a generous deadline passes.
fn wait_for(what: &str, probe: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if probe() {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("timed out waiting for {what}");
}

/// The value of a Prometheus sample whose line starts with `prefix`
/// (metric name, or name + label set, followed by a space).
fn metric(body: &str, prefix: &str) -> Option<f64> {
    body.lines().find_map(|line| {
        line.strip_prefix(prefix)
            .and_then(|rest| rest.trim().parse().ok())
    })
}

/// An address that refuses connections: bind an OS port, then free it.
fn dead_addr() -> SocketAddr {
    TcpListener::bind("127.0.0.1:0")
        .expect("reserve port")
        .local_addr()
        .expect("reserved addr")
}

/// A scripted fault backend: accepts connections, reads one request
/// head, and answers with `respond` — which may lie about its length,
/// dribble, or slam the connection shut. Runs until `stop` is set.
fn scripted_backend(
    respond: impl Fn(&mut TcpStream) + Send + 'static,
) -> (SocketAddr, Arc<AtomicBool>, JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fault backend");
    let addr = listener.local_addr().expect("fault backend addr");
    listener.set_nonblocking(true).expect("nonblocking");
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        while !stop_flag.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((mut conn, _)) => {
                    conn.set_read_timeout(Some(Duration::from_secs(2))).ok();
                    // Read until the blank line so the peer's write
                    // completes before the scripted fault lands.
                    let mut head = Vec::new();
                    let mut byte = [0u8; 1];
                    while !head.ends_with(b"\r\n\r\n") {
                        match conn.read(&mut byte) {
                            Ok(1) => head.push(byte[0]),
                            _ => break,
                        }
                    }
                    respond(&mut conn);
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
    });
    (addr, stop, handle)
}

fn stop_scripted(stop: Arc<AtomicBool>, handle: JoinHandle<()>) {
    stop.store(true, Ordering::SeqCst);
    handle.join().expect("fault backend exits");
}

const QUERIES: [&str; 5] = [
    "heart blood surgery",
    "soccer goal keeper",
    "stock market yield goal",
    "virus immune protein blood",
    "heart unknownword stadium",
];

#[test]
fn proxy_is_byte_identical_to_the_monolithic_daemon() {
    let monolith = ServingState::from_frozen(fixture_catalog(1.0), "mem".to_string(), 0);
    let (mono_addr, mono_handle) = start(ServerConfig::default(), monolith);
    let (b0_addr, b0_handle) = shard_backend();
    let (b1_addr, b1_handle) = shard_backend();
    let (proxy_addr, proxy_handle) =
        start_proxy(ServerConfig::default(), proxy_over(&[b0_addr, b1_addr]));

    // Readiness sticks once the health checker has seen every backend.
    wait_for("proxy readiness", || get(proxy_addr, "/readyz").0 == 200);
    let (_, _, ready_body) = get(proxy_addr, "/readyz");
    let ready = Json::parse(&ready_body).expect("readyz JSON");
    assert_eq!(ready.get("ready"), Some(&Json::Bool(true)));
    assert_eq!(
        ready
            .get("backends")
            .and_then(Json::as_array)
            .map(|b| b.len()),
        Some(2)
    );

    for algo in ["bgloss", "cori", "lm"] {
        for mode in ["adaptive", "always", "never"] {
            for (qi, line) in QUERIES.iter().enumerate() {
                let body = format!(
                    r#"{{"query":"{line}","algo":"{algo}","shrinkage":"{mode}","seed":{}}}"#,
                    42 + qi as u64
                );
                let (mono_status, _, mono_body) = post(mono_addr, "/route", &body);
                let (proxy_status, _, proxy_body) = post(proxy_addr, "/route", &body);
                assert_eq!(mono_status, 200, "{mono_body}");
                assert_eq!(proxy_status, 200, "{proxy_body}");
                assert_eq!(
                    proxy_body, mono_body,
                    "proxy diverged from monolith for {algo}/{mode} on {line:?}"
                );
            }
        }
    }

    // Truncation and batching go through the same merge path.
    for body in [
        r#"{"query":"heart blood surgery","k":2}"#.to_string(),
        format!(
            r#"{{"queries":[{}],"algo":"cori","shrinkage":"always","seed":7,"k":3}}"#,
            QUERIES
                .iter()
                .map(|q| format!("{q:?}"))
                .collect::<Vec<_>>()
                .join(",")
        ),
    ] {
        let path = if body.contains("queries") {
            "/route_batch"
        } else {
            "/route"
        };
        let (mono_status, _, mono_body) = post(mono_addr, path, &body);
        let (proxy_status, _, proxy_body) = post(proxy_addr, path, &body);
        assert_eq!((mono_status, proxy_status), (200, 200), "{proxy_body}");
        assert_eq!(proxy_body, mono_body, "proxy diverged on {path}");
    }

    let (status, _, _) = get(proxy_addr, "/healthz");
    assert_eq!(status, 200);
    let (status, _, metrics) = get(proxy_addr, "/metrics");
    assert_eq!(status, 200);
    assert_eq!(metric(&metrics, "dbselectd_proxy_ready "), Some(1.0));
    assert_eq!(metric(&metrics, "dbselectd_proxy_backends "), Some(2.0));
    assert_eq!(
        metric(&metrics, "dbselectd_proxy_degraded_total "),
        Some(0.0)
    );
    for backend in [b0_addr, b1_addr] {
        let up = format!("dbselectd_backend_up{{backend=\"{backend}\"}} ");
        assert_eq!(metric(&metrics, &up), Some(1.0), "{metrics}");
        let state = format!("dbselectd_backend_breaker_state{{backend=\"{backend}\"}} ");
        assert_eq!(metric(&metrics, &state), Some(0.0));
        let count =
            format!("dbselectd_backend_request_duration_seconds_count{{backend=\"{backend}\"}} ");
        assert!(metric(&metrics, &count).unwrap() >= 1.0);
    }

    shutdown(proxy_addr, proxy_handle);
    shutdown(b0_addr, b0_handle);
    shutdown(b1_addr, b1_handle);
    shutdown(mono_addr, mono_handle);
}

#[test]
fn a_dead_shard_degrades_the_response_instead_of_failing_it() {
    let (b0_addr, b0_handle) = shard_backend();
    let (proxy_addr, proxy_handle) = start_proxy(
        ServerConfig::default(),
        ProxyConfig {
            backends: vec![b0_addr.to_string(), dead_addr().to_string()],
            retries: 1,
            backoff_base: Duration::from_millis(5),
            // Keep the prober from opening the breaker mid-test: the
            // request path itself must discover and survive the fault.
            breaker_failures: 1000,
            health_interval: Duration::from_secs(5),
            ..Default::default()
        },
    );

    let body = r#"{"query":"heart blood surgery","algo":"cori","seed":42}"#;
    let (status, _, response) = post(proxy_addr, "/route", body);
    assert_eq!(
        status, 200,
        "a reachable shard must keep serving: {response}"
    );
    let parsed = Json::parse(&response).expect("degraded JSON");
    assert_eq!(parsed.get("degraded"), Some(&Json::Bool(true)));
    assert_eq!(
        parsed.get("missing_shards"),
        Some(&Json::Arr(vec![Json::Num(1.0)]))
    );
    let ranking = parsed
        .get("ranking")
        .and_then(Json::as_array)
        .expect("partial ranking");
    assert!(!ranking.is_empty(), "shard 0's databases still rank");
    for (rank, entry) in ranking.iter().enumerate() {
        assert_eq!(
            entry.get("rank").and_then(Json::as_u64),
            Some(rank as u64 + 1),
            "merged ranking is renumbered densely"
        );
    }

    // Batch requests degrade the same way.
    let batch = r#"{"queries":["heart blood","soccer goal"],"seed":7}"#;
    let (status, _, response) = post(proxy_addr, "/route_batch", batch);
    assert_eq!(status, 200, "{response}");
    let parsed = Json::parse(&response).expect("batch JSON");
    assert_eq!(parsed.get("degraded"), Some(&Json::Bool(true)));
    assert_eq!(
        parsed
            .get("results")
            .and_then(Json::as_array)
            .map(|r| r.len()),
        Some(2)
    );

    let (_, _, metrics) = get(proxy_addr, "/metrics");
    assert!(metric(&metrics, "dbselectd_proxy_degraded_total ").unwrap() >= 2.0);
    let failures: f64 = metrics
        .lines()
        .filter_map(|l| l.strip_prefix("dbselectd_backend_failures_total{"))
        .filter_map(|l| l.split("} ").nth(1)?.trim().parse::<f64>().ok())
        .sum();
    assert!(failures >= 1.0, "the dead backend's failures are counted");

    shutdown(proxy_addr, proxy_handle);
    shutdown(b0_addr, b0_handle);
}

#[test]
fn breaker_opens_on_a_killed_backend_and_recovers_after_restart() {
    // Reserve a port for the backend, then leave it dead: the proxy
    // starts against a connection-refusing address.
    let backend_addr = dead_addr();
    let (proxy_addr, proxy_handle) = start_proxy(
        ServerConfig::default(),
        ProxyConfig {
            backends: vec![backend_addr.to_string()],
            retries: 0,
            breaker_failures: 2,
            breaker_cooldown: Duration::from_millis(200),
            health_interval: Duration::from_millis(40),
            ..Default::default()
        },
    );
    let breaker_state = format!("dbselectd_backend_breaker_state{{backend=\"{backend_addr}\"}} ");
    let opens = format!("dbselectd_backend_breaker_opens_total{{backend=\"{backend_addr}\"}} ");

    // The prober's failures trip the breaker without any client traffic.
    wait_for("breaker to open", || {
        let (_, _, metrics) = get(proxy_addr, "/metrics");
        metric(&metrics, &breaker_state) == Some(1.0)
    });
    let (_, _, metrics) = get(proxy_addr, "/metrics");
    assert!(metric(&metrics, &opens).unwrap() >= 1.0);
    assert_eq!(
        metric(
            &metrics,
            &format!("dbselectd_backend_up{{backend=\"{backend_addr}\"}} ")
        ),
        Some(0.0)
    );

    // With its only shard fenced off, the proxy answers 503 — the one
    // case it surfaces an error — and /readyz has never gone ready.
    let (status, head, _) = post(proxy_addr, "/route", r#"{"query":"heart blood","seed":1}"#);
    assert_eq!(status, 503);
    assert!(head.contains("Retry-After:"), "{head}");
    let (status, head, _) = get(proxy_addr, "/readyz");
    assert_eq!(status, 503);
    assert!(head.contains("Retry-After:"), "{head}");

    // Restart the backend on the same address: the next half-open probe
    // must close the breaker and readiness must stick.
    let state = ServingState::from_frozen(fixture_catalog(1.0), "mem".to_string(), 0);
    let (restarted, backend_handle) = start(
        ServerConfig {
            addr: backend_addr.to_string(),
            ..Default::default()
        },
        state,
    );
    assert_eq!(restarted, backend_addr);
    wait_for("breaker to close after restart", || {
        let (_, _, metrics) = get(proxy_addr, "/metrics");
        metric(&metrics, &breaker_state) == Some(0.0)
    });
    wait_for("readiness after recovery", || {
        get(proxy_addr, "/readyz").0 == 200
    });

    // Recovered end to end: the proxied answer matches the backend's own.
    let body = r#"{"query":"heart blood surgery","algo":"lm","shrinkage":"always","seed":9}"#;
    let (status, _, proxied) = post(proxy_addr, "/route", body);
    assert_eq!(status, 200, "{proxied}");
    let (_, _, direct) = post(backend_addr, "/route", body);
    assert_eq!(proxied, direct, "recovered proxy serves bit-identically");

    shutdown(proxy_addr, proxy_handle);
    shutdown(backend_addr, backend_handle);
}

#[test]
fn garbage_and_truncated_backend_responses_are_retried_then_degraded() {
    let (b0_addr, b0_handle) = shard_backend();
    // Shard 1 answers 200 with an unparseable body — the proxy must
    // treat that like a transport fault: retry, then drop the shard.
    let (garbage_addr, garbage_stop, garbage_handle) = scripted_backend(|conn| {
        conn.write_all(
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 9\r\nConnection: close\r\n\r\nnot json!",
        )
        .ok();
    });
    let (proxy_addr, proxy_handle) = start_proxy(
        ServerConfig::default(),
        ProxyConfig {
            backends: vec![b0_addr.to_string(), garbage_addr.to_string()],
            retries: 2,
            backoff_base: Duration::from_millis(5),
            breaker_failures: 1000,
            health_interval: Duration::from_secs(5),
            ..Default::default()
        },
    );

    let body = r#"{"query":"stock market yield","algo":"bgloss","seed":3}"#;
    let (status, _, response) = post(proxy_addr, "/route", body);
    assert_eq!(status, 200, "garbage from one shard is not a client error");
    let parsed = Json::parse(&response).expect("degraded JSON");
    assert_eq!(parsed.get("degraded"), Some(&Json::Bool(true)));
    let (_, _, metrics) = get(proxy_addr, "/metrics");
    let retries = format!("dbselectd_backend_retries_total{{backend=\"{garbage_addr}\"}} ");
    assert!(
        metric(&metrics, &retries).unwrap() >= 1.0,
        "unparseable responses burn the retry budget: {metrics}"
    );
    shutdown(proxy_addr, proxy_handle);
    stop_scripted(garbage_stop, garbage_handle);

    // Shard 1 promises 1000 body bytes and closes mid-body.
    let (cut_addr, cut_stop, cut_handle) = scripted_backend(|conn| {
        conn.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 1000\r\n\r\n{\"gener")
            .ok();
    });
    let (proxy_addr, proxy_handle) = start_proxy(
        ServerConfig::default(),
        ProxyConfig {
            backends: vec![b0_addr.to_string(), cut_addr.to_string()],
            retries: 1,
            backoff_base: Duration::from_millis(5),
            breaker_failures: 1000,
            health_interval: Duration::from_secs(5),
            ..Default::default()
        },
    );
    let (status, _, response) = post(proxy_addr, "/route", body);
    assert_eq!(status, 200, "mid-body close is not a client error");
    let parsed = Json::parse(&response).expect("degraded JSON");
    assert_eq!(parsed.get("degraded"), Some(&Json::Bool(true)));
    shutdown(proxy_addr, proxy_handle);
    stop_scripted(cut_stop, cut_handle);

    shutdown(b0_addr, b0_handle);
}

#[test]
fn stalled_and_dribbling_backends_are_bounded_by_the_deadline() {
    let (b0_addr, b0_handle) = shard_backend();
    // A listener that never accepts: connects land in the backlog and
    // the request stalls until the per-attempt budget expires.
    let stalled = TcpListener::bind("127.0.0.1:0").expect("bind stalled backend");
    let stalled_addr = stalled.local_addr().expect("stalled addr");
    // A backend that accepts but dribbles one header byte at a time,
    // never finishing inside any sane deadline.
    let (dribble_addr, dribble_stop, dribble_handle) = scripted_backend(|conn| {
        for byte in b"HTTP/1.1 200 OK\r\nContent-Length: 100000\r\n\r\n" {
            if conn.write_all(&[*byte]).is_err() {
                return;
            }
            std::thread::sleep(Duration::from_millis(40));
        }
    });

    let config = ServerConfig {
        deadline: Duration::from_millis(900),
        ..Default::default()
    };
    let (proxy_addr, proxy_handle) = start_proxy(
        config,
        ProxyConfig {
            backends: vec![
                b0_addr.to_string(),
                stalled_addr.to_string(),
                dribble_addr.to_string(),
            ],
            retries: 1,
            backoff_base: Duration::from_millis(5),
            breaker_failures: 1000,
            health_interval: Duration::from_secs(30),
            ..Default::default()
        },
    );

    // 3 proxy backends means 3-way sharding, but the shard daemons were
    // built with --shards 2: shard ids 0 and 1 resolve, the faulty pair
    // would own id 2 anyway. What matters here: the healthy shard's
    // answer arrives, the stalled and dribbling shards are cut off by
    // the deadline, and the client waits at most one deadline.
    let started = Instant::now();
    let body = r#"{"query":"virus immune protein","seed":11}"#;
    let (status, _, response) = post(proxy_addr, "/route", body);
    let elapsed = started.elapsed();
    assert_eq!(
        status, 200,
        "slow shards must not fail the request: {response}"
    );
    let parsed = Json::parse(&response).expect("degraded JSON");
    assert_eq!(parsed.get("degraded"), Some(&Json::Bool(true)));
    let missing = parsed
        .get("missing_shards")
        .and_then(Json::as_array)
        .expect("missing shard list");
    assert!(
        missing.contains(&Json::Num(1.0)) && missing.contains(&Json::Num(2.0)),
        "both pathological shards are reported missing: {response}"
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "the deadline bounds slow shards (took {elapsed:?})"
    );

    shutdown(proxy_addr, proxy_handle);
    drop(stalled);
    stop_scripted(dribble_stop, dribble_handle);
    shutdown(b0_addr, b0_handle);
}

#[test]
fn all_shards_down_is_a_503_with_the_configured_retry_after() {
    let (proxy_addr, proxy_handle) = start_proxy(
        ServerConfig {
            retry_after: Duration::from_millis(2500),
            ..Default::default()
        },
        ProxyConfig {
            backends: vec![dead_addr().to_string(), dead_addr().to_string()],
            retries: 0,
            breaker_failures: 1000,
            health_interval: Duration::from_secs(5),
            ..Default::default()
        },
    );

    let (status, head, body) = post(proxy_addr, "/route", r#"{"query":"heart","seed":1}"#);
    assert_eq!(status, 503, "{body}");
    // 2500ms rounds up to the next whole second.
    assert!(head.contains("Retry-After: 3"), "{head}");

    // Client errors are still the client's: validation happens before
    // the scatter, so a bad request never depends on backend health.
    let (status, _, body) = post(proxy_addr, "/route", r#"{"algo":"cori"}"#);
    assert_eq!(status, 400, "{body}");
    let (status, _, body) = post(proxy_addr, "/route", r#"{"query":"heart","algo":"nope"}"#);
    assert_eq!(status, 400, "{body}");
    let (status, _, body) = post(proxy_addr, "/route", r#"{"query":"heart","shard":0}"#);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("reserved for proxy-to-backend"), "{body}");
    let (status, _, _) = get(proxy_addr, "/route");
    assert_eq!(status, 405);
    let (status, _, _) = post(proxy_addr, "/nope", "{}");
    assert_eq!(status, 404);

    shutdown(proxy_addr, proxy_handle);
}

#[test]
fn a_backend_4xx_passes_through_to_the_client() {
    let (b0_addr, b0_handle) = shard_backend();
    let (reject_addr, reject_stop, reject_handle) = scripted_backend(|conn| {
        let body = br#"{"error":"scripted backend rejection"}"#;
        conn.write_all(
            format!(
                "HTTP/1.1 400 Bad Request\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                body.len()
            )
            .as_bytes(),
        )
        .ok();
        conn.write_all(body).ok();
    });
    let (proxy_addr, proxy_handle) = start_proxy(
        ServerConfig::default(),
        ProxyConfig {
            backends: vec![b0_addr.to_string(), reject_addr.to_string()],
            retries: 1,
            breaker_failures: 1000,
            health_interval: Duration::from_secs(5),
            ..Default::default()
        },
    );

    // The request is valid at the proxy; the backend's rejection (e.g. a
    // generation or shard-shape disagreement) is forwarded, not masked
    // as a degraded 200 built from half the shards.
    let (status, _, body) = post(
        proxy_addr,
        "/route",
        r#"{"query":"heart blood","algo":"cori","seed":2}"#,
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("scripted backend rejection"), "{body}");

    shutdown(proxy_addr, proxy_handle);
    stop_scripted(reject_stop, reject_handle);
    shutdown(b0_addr, b0_handle);
}
