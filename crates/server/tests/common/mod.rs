//! Shared fixture for the daemon's integration tests: a small profiled
//! testbed catalog and helpers to boot a daemon on an OS-assigned port.

#![allow(dead_code)] // each test crate uses its own subset

use std::net::SocketAddr;
use std::thread::JoinHandle;

use dbselect_core::category_summary::CategoryWeighting;
use dbselect_core::hierarchy::Hierarchy;
use dbselect_core::summary::ContentSummary;
use server::state::ServingState;
use server::{Server, ServerConfig};
use store::catalog::StoredCatalog;
use store::{CollectionStore, StoredDatabase};
use textindex::{Analyzer, Document, TermDict};

/// A profiled testbed: `scale` perturbs sizes so two fixtures rank
/// differently (the reload test tells generations apart by ranking).
pub fn fixture_store(scale: f64) -> CollectionStore {
    let analyzer = Analyzer::english();
    let words = [
        "heart", "blood", "artery", "surgery", "soccer", "goal", "stadium", "keeper", "stock",
        "market", "bond", "yield", "virus", "immune", "vaccine", "protein",
    ];
    let mut dict = TermDict::new();
    let terms: Vec<u32> = words
        .iter()
        .map(|w| dict.intern(&analyzer.analyze_term(w).expect("fixture word survives")))
        .collect();
    let mut hierarchy = Hierarchy::new("Root");
    let health = hierarchy.ensure_path("Health/Heart");
    let sports = hierarchy.ensure_path("Sports/Soccer");
    let finance = hierarchy.ensure_path("Finance");
    let bio = hierarchy.ensure_path("Health/Immunology");

    // Per database: (name, category, term indices, docs, db_size).
    let specs: [(&str, _, &[usize], usize, f64); 6] = [
        ("cardio", health, &[0, 1, 2, 3, 12], 9, 1200.0),
        ("surgery-digest", health, &[0, 3, 1, 15], 7, 400.0),
        ("goal-net", sports, &[4, 5, 6, 7], 8, 2600.0),
        ("terrace-talk", sports, &[4, 6, 7, 9], 5, 150.0),
        ("tickerwire", finance, &[8, 9, 10, 11, 5], 9, 3100.0),
        ("pathogen-log", bio, &[12, 13, 14, 15, 1], 6, 900.0),
    ];
    let databases = specs
        .iter()
        .enumerate()
        .map(|(dbi, (name, category, term_ixs, n_docs, db_size))| {
            let docs: Vec<Document> = (0..*n_docs)
                .map(|d| {
                    // Deterministic, db-distinct token mix: doc d holds a
                    // rotating window over the db's vocabulary.
                    let tokens: Vec<u32> = term_ixs
                        .iter()
                        .cycle()
                        .skip(d % term_ixs.len())
                        .take(1 + (d + dbi) % term_ixs.len())
                        .map(|&ix| terms[ix])
                        .collect();
                    Document::from_tokens(d as u32, tokens)
                })
                .collect();
            let mut summary = ContentSummary::from_sample(docs.iter(), db_size * scale);
            if dbi % 2 == 0 {
                summary.set_gamma(-1.4 - 0.2 * dbi as f64);
            }
            StoredDatabase {
                name: (*name).to_string(),
                classification: *category,
                summary,
                sample_docs: Vec::new(),
            }
        })
        .collect();
    CollectionStore {
        dict,
        hierarchy,
        databases,
    }
}

pub fn fixture_catalog(scale: f64) -> StoredCatalog {
    StoredCatalog::freeze(fixture_store(scale), CategoryWeighting::BySize)
}

pub fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("dbselectd-test-{tag}-{}.cat", std::process::id()))
}

/// Start a daemon on an OS-assigned port; returns its address and the
/// accept-loop thread (joined after `/admin/shutdown`).
///
/// CI runs the whole integration suite against both connection paths:
/// `DBSELECTD_TEST_MODE=threaded` flips every daemon started here onto
/// the legacy thread-per-connection path. Tests that genuinely require
/// one specific path bind the server directly instead.
pub fn start(mut config: ServerConfig, state: ServingState) -> (SocketAddr, JoinHandle<()>) {
    if std::env::var("DBSELECTD_TEST_MODE").as_deref() == Ok("threaded") {
        config.mode = server::ServeMode::Threaded;
    }
    let daemon = Server::bind(config, state).expect("bind");
    let addr = daemon.local_addr();
    let handle = std::thread::spawn(move || daemon.run().expect("run"));
    (addr, handle)
}

/// [`start`], hosting one named tenant per `(name, state)` entry.
pub fn start_tenants(
    mut config: ServerConfig,
    states: Vec<(String, ServingState)>,
) -> (SocketAddr, JoinHandle<()>) {
    if std::env::var("DBSELECTD_TEST_MODE").as_deref() == Ok("threaded") {
        config.mode = server::ServeMode::Threaded;
    }
    let daemon = Server::bind_tenants(config, states).expect("bind tenants");
    let addr = daemon.local_addr();
    let handle = std::thread::spawn(move || daemon.run().expect("run"));
    (addr, handle)
}
