//! End-to-end tests of `dbselectd` over real sockets.
//!
//! The load-bearing assertions: rankings served over HTTP are
//! **bit-identical** to in-process `SelectionEngine::route` for every
//! (algorithm, shrinkage mode) pair; `/admin/reload` swaps catalogs
//! without failing a single in-flight request; a full admission queue
//! answers `503`; a missed deadline answers `504`.

mod common;

use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use common::{fixture_catalog, start, temp_path};
use sampling::scheduler::db_rng;
use server::json::Json;
use server::state::{Algo, ServingState, MODES};
use server::ServerConfig;

/// One `Connection: close` HTTP exchange on a fresh connection.
fn exchange(addr: SocketAddr, raw: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("write");
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).expect("read");
    let text = String::from_utf8(bytes).expect("utf-8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("header terminator");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, head.to_string(), body.to_string())
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String, String) {
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    exchange(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

/// Read exactly one response from a kept-alive connection, framed by its
/// `Content-Length`.
fn read_one_response<R: std::io::Read>(reader: &mut BufReader<R>) -> (u16, String, String) {
    let mut head = String::new();
    loop {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).expect("read header line") > 0,
            "connection closed mid-headers (head so far: {head:?})"
        );
        if line == "\r\n" {
            break;
        }
        head.push_str(&line);
    }
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length header")
        .trim()
        .parse()
        .expect("numeric Content-Length");
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).expect("read body");
    (status, head, String::from_utf8(body).expect("utf-8 body"))
}

fn shutdown(addr: SocketAddr, handle: JoinHandle<()>) {
    let (status, _, _) = post(addr, "/admin/shutdown", "");
    assert_eq!(status, 200);
    handle.join().expect("accept loop exits cleanly");
}

/// The served ranking as (database, score-bits, shrinkage_used) triples.
fn parse_ranking(ranking: &Json) -> Vec<(String, u64, bool)> {
    ranking
        .as_array()
        .expect("ranking array")
        .iter()
        .map(|entry| {
            (
                entry.get("database").unwrap().as_str().unwrap().to_string(),
                entry.get("score").unwrap().as_f64().unwrap().to_bits(),
                matches!(entry.get("shrinkage_used").unwrap(), Json::Bool(true)),
            )
        })
        .collect()
}

/// The in-process expectation for query `index` of a batch.
fn expected_ranking(
    state: &ServingState,
    words: &[String],
    algo: Algo,
    mode: selection::ShrinkageMode,
    seed: u64,
    index: usize,
) -> Vec<(String, u64, bool)> {
    let (query, _) = state.analyze(words);
    let mut rng = db_rng(seed, index);
    let outcome = state.engine(algo, mode).route(&query, &mut rng);
    outcome
        .ranking
        .iter()
        .map(|r| {
            (
                state.name(r.index).to_string(),
                r.score.to_bits(),
                outcome.used_shrinkage[r.index],
            )
        })
        .collect()
}

fn words(line: &str) -> Vec<String> {
    line.split_whitespace().map(str::to_string).collect()
}

#[test]
fn route_is_bit_identical_for_every_algo_and_mode() {
    let frozen = fixture_catalog(1.0);
    let reference = ServingState::from_frozen(frozen.clone(), "mem".into(), 0);
    let (addr, handle) = start(
        ServerConfig::default(),
        ServingState::from_frozen(frozen, "mem".into(), 0),
    );

    let queries = [
        "heart blood surgery",
        "soccer goal keeper",
        "stock market yield goal",
        "virus immune protein blood",
        "heart unknownword stadium",
    ];
    for (algo_name, algo) in [
        ("bgloss", Algo::BGloss),
        ("cori", Algo::Cori),
        ("lm", Algo::Lm),
    ] {
        for (mode_name, mode) in [
            ("adaptive", MODES[0]),
            ("always", MODES[1]),
            ("never", MODES[2]),
        ] {
            for (qi, line) in queries.iter().enumerate() {
                let seed = 42 + qi as u64;
                let body = format!(
                    r#"{{"query":"{line}","algo":"{algo_name}","shrinkage":"{mode_name}","seed":{seed}}}"#
                );
                let (status, _, response) = post(addr, "/route", &body);
                assert_eq!(status, 200, "{algo_name}/{mode_name}: {response}");
                let parsed = Json::parse(&response).expect("response JSON");
                let served = parse_ranking(parsed.get("ranking").unwrap());
                let expected = expected_ranking(&reference, &words(line), algo, mode, seed, 0);
                assert_eq!(
                    served, expected,
                    "HTTP ranking diverged for {algo_name}/{mode_name} on {line:?}"
                );
            }
        }
    }
    shutdown(addr, handle);
}

/// Tentpole guardrail, over the wire: for every algorithm × shrinkage
/// mode × k, the `"k"`-requested `/route` body serializes exactly the
/// first k entries of the full ranking — same order, same score bytes —
/// because the pruned top-k path underneath is bit-identical to
/// truncation. Serialization is deterministic, so comparing rendered
/// JSON compares bytes.
#[test]
fn topk_bodies_are_byte_identical_to_the_full_ranking_prefix() {
    let (addr, handle) = start(
        ServerConfig::default(),
        ServingState::from_frozen(fixture_catalog(1.0), "mem".into(), 0),
    );

    let queries = ["heart blood surgery", "soccer goal keeper", "stock market yield goal"];
    for algo in ["bgloss", "cori", "lm"] {
        for mode in ["adaptive", "always", "never"] {
            for (qi, line) in queries.iter().enumerate() {
                let seed = 42 + qi as u64;
                let body = format!(
                    r#"{{"query":"{line}","algo":"{algo}","shrinkage":"{mode}","seed":{seed}}}"#
                );
                let (status, _, full_body) = post(addr, "/route", &body);
                assert_eq!(status, 200, "{full_body}");
                let full = Json::parse(&full_body).unwrap();
                let ranking = full.get("ranking").unwrap().as_array().unwrap().to_vec();
                for k in 1..=ranking.len() + 1 {
                    let body = format!(
                        r#"{{"query":"{line}","algo":"{algo}","shrinkage":"{mode}","seed":{seed},"k":{k}}}"#
                    );
                    let (status, _, topk_body) = post(addr, "/route", &body);
                    assert_eq!(status, 200, "{topk_body}");
                    if k >= ranking.len() {
                        // No truncation: the entire response body is the
                        // same bytes the k-less request produced.
                        assert_eq!(topk_body, full_body, "{algo}/{mode} k={k}");
                        continue;
                    }
                    let served = Json::parse(&topk_body).unwrap();
                    let want = Json::Arr(ranking[..k].to_vec()).render();
                    let got = served.get("ranking").unwrap().render();
                    assert_eq!(got, want, "{algo}/{mode} k={k} on {line:?}");
                }
            }
        }
    }
    shutdown(addr, handle);
}

#[test]
fn route_batch_matches_per_query_routing_and_is_thread_invariant() {
    let frozen = fixture_catalog(1.0);
    let reference = ServingState::from_frozen(frozen.clone(), "mem".into(), 0);
    let (addr, handle) = start(
        ServerConfig::default(),
        ServingState::from_frozen(frozen, "mem".into(), 0),
    );

    let lines = [
        "heart blood",
        "soccer stadium",
        "bond yield market",
        "vaccine protein",
        "artery surgery virus",
        "goal keeper stock",
    ];
    let queries_json: Vec<String> = lines.iter().map(|l| format!("\"{l}\"")).collect();
    let mut per_thread_bodies = Vec::new();
    for threads in [1, 4] {
        let body = format!(
            r#"{{"queries":[{}],"algo":"cori","shrinkage":"adaptive","seed":7,"threads":{threads}}}"#,
            queries_json.join(",")
        );
        let (status, _, response) = post(addr, "/route_batch", &body);
        assert_eq!(status, 200, "{response}");
        per_thread_bodies.push(response);
    }
    assert_eq!(
        per_thread_bodies[0], per_thread_bodies[1],
        "batch results must not depend on thread count"
    );

    let parsed = Json::parse(&per_thread_bodies[0]).unwrap();
    let results = parsed.get("results").unwrap().as_array().unwrap();
    assert_eq!(results.len(), lines.len());
    for (qi, (line, result)) in lines.iter().zip(results).enumerate() {
        let served = parse_ranking(result.get("ranking").unwrap());
        let expected = expected_ranking(
            &reference,
            &words(line),
            Algo::Cori,
            selection::ShrinkageMode::Adaptive,
            7,
            qi,
        );
        assert_eq!(served, expected, "batch query {qi} ({line:?}) diverged");
    }
    shutdown(addr, handle);
}

#[test]
fn healthz_metrics_and_errors() {
    let (addr, handle) = start(
        ServerConfig::default(),
        ServingState::from_frozen(fixture_catalog(1.0), "mem".into(), 0),
    );

    let (status, _, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    let health = Json::parse(&body).unwrap();
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(health.get("databases").unwrap().as_u64(), Some(6));
    assert_eq!(health.get("generation").unwrap().as_u64(), Some(1));

    // Exercise a routing request so latency/cache metrics move.
    let (status, _, _) = post(addr, "/route", r#"{"query":"heart blood"}"#);
    assert_eq!(status, 200);

    let (status, head, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(head.contains("text/plain"));
    for family in [
        "dbselectd_requests_total{endpoint=\"route\",status=\"200\"} 1",
        "dbselectd_request_duration_seconds_count{endpoint=\"route\"} 1",
        "dbselectd_posterior_cache_misses_total",
        "dbselectd_queue_depth",
        "dbselectd_catalog_generation 1",
        "dbselectd_catalog_databases 6",
        "dbselectd_uptime_seconds",
    ] {
        assert!(body.contains(family), "missing {family} in:\n{body}");
    }

    let (status, _, _) = get(addr, "/nope");
    assert_eq!(status, 404);
    let (status, head, _) = get(addr, "/route");
    assert_eq!(status, 405);
    assert!(head.contains("Allow:"));
    let (status, _, _) = post(addr, "/route", "{not json");
    assert_eq!(status, 400);
    let (status, _, _) = post(addr, "/route", r#"{"query":"x","algo":"pagerank"}"#);
    assert_eq!(status, 400);
    let (status, _, _) = post(addr, "/route", r#"{"seed":1}"#);
    assert_eq!(status, 400);

    shutdown(addr, handle);
}

#[test]
fn reload_swaps_catalogs_without_failing_inflight_requests() {
    let path_a = temp_path("gen-a");
    let path_b = temp_path("gen-b");
    let gen_a = fixture_catalog(1.0);
    let gen_b = fixture_catalog(0.05); // different sizes → different scores
    gen_a.save(&path_a).unwrap();
    gen_b.save(&path_b).unwrap();

    let ref_a = ServingState::from_frozen(gen_a, "a".into(), 0);
    let ref_b = ServingState::from_frozen(gen_b, "b".into(), 0);
    let line = "heart blood surgery goal";
    let expect_a = expected_ranking(
        &ref_a,
        &words(line),
        Algo::Cori,
        selection::ShrinkageMode::Adaptive,
        42,
        0,
    );
    let expect_b = expected_ranking(
        &ref_b,
        &words(line),
        Algo::Cori,
        selection::ShrinkageMode::Adaptive,
        42,
        0,
    );
    assert_ne!(
        expect_a, expect_b,
        "fixture generations must be distinguishable by ranking"
    );

    let state = ServingState::load(path_a.to_str().unwrap(), 0).unwrap();
    let (addr, handle) = start(
        ServerConfig {
            workers: 4,
            queue_capacity: 128,
            ..Default::default()
        },
        state,
    );

    // Hammer /route from several threads while the catalog is swapped
    // underneath them. Every response must be 200 and must equal one of
    // the two generations' rankings, never a mix.
    let stop = Arc::new(AtomicBool::new(false));
    let hammers: Vec<_> = (0..3)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let expect_a = expect_a.clone();
            let expect_b = expect_b.clone();
            std::thread::spawn(move || {
                let mut seen_b = false;
                while !stop.load(Ordering::Relaxed) {
                    let (status, _, body) =
                        post(addr, "/route", &format!(r#"{{"query":"{line}"}}"#));
                    assert_eq!(
                        status, 200,
                        "in-flight request failed during reload: {body}"
                    );
                    let ranking =
                        parse_ranking(Json::parse(&body).unwrap().get("ranking").unwrap());
                    assert!(
                        ranking == expect_a || ranking == expect_b,
                        "ranking matches neither generation: {ranking:?}"
                    );
                    seen_b |= ranking == expect_b;
                }
                seen_b
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(50));
    let (status, _, body) = post(
        addr,
        "/admin/reload",
        &format!(r#"{{"path":"{}"}}"#, path_b.display()),
    );
    assert_eq!(status, 200, "{body}");
    let reloaded = Json::parse(&body).unwrap();
    assert_eq!(reloaded.get("generation").unwrap().as_u64(), Some(2));

    // Post-reload: new requests serve generation B.
    let (_, _, body) = post(addr, "/route", &format!(r#"{{"query":"{line}"}}"#));
    let ranking = parse_ranking(Json::parse(&body).unwrap().get("ranking").unwrap());
    assert_eq!(
        ranking, expect_b,
        "post-reload requests must see the new catalog"
    );

    std::thread::sleep(Duration::from_millis(50));
    stop.store(true, Ordering::Relaxed);
    let any_saw_b = hammers
        .into_iter()
        .any(|h| h.join().expect("hammer thread"));
    assert!(any_saw_b, "hammers never observed the swapped catalog");

    let (_, _, body) = get(addr, "/healthz");
    assert_eq!(
        Json::parse(&body)
            .unwrap()
            .get("generation")
            .unwrap()
            .as_u64(),
        Some(2)
    );

    shutdown(addr, handle);
    std::fs::remove_file(&path_a).ok();
    std::fs::remove_file(&path_b).ok();
}

#[test]
fn full_queue_answers_503_with_retry_after() {
    let (addr, handle) = start(
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            debug_sleep: true,
            ..Default::default()
        },
        ServingState::from_frozen(fixture_catalog(1.0), "mem".into(), 0),
    );

    // Occupy the single worker: this request sleeps server-side.
    let busy = {
        std::thread::spawn(move || {
            let (status, _, _) = exchange(
                addr,
                &format!(
                    "POST /route HTTP/1.1\r\nHost: t\r\nConnection: close\r\nX-Debug-Sleep-Ms: 600\r\nContent-Length: {}\r\n\r\n{}",
                    r#"{"query":"heart"}"#.len(),
                    r#"{"query":"heart"}"#
                ),
            );
            status
        })
    };
    std::thread::sleep(Duration::from_millis(200)); // worker popped it, now asleep

    // Fill the queue's single slot with a second held connection …
    let queued = std::thread::spawn(move || {
        let (status, _, _) = get(addr, "/healthz");
        status
    });
    std::thread::sleep(Duration::from_millis(100));

    // … so the third connection is rejected at the door.
    let (status, head, _) = get(addr, "/healthz");
    assert_eq!(status, 503, "admission control must shed load");
    assert!(head.contains("Retry-After:"), "503 must carry Retry-After");

    assert_eq!(busy.join().unwrap(), 200, "the slow request still succeeds");
    assert_eq!(
        queued.join().unwrap(),
        200,
        "the queued request still succeeds"
    );

    let (_, _, body) = get(addr, "/metrics");
    assert!(
        body.contains("dbselectd_rejected_total 1"),
        "rejection must be counted:\n{body}"
    );
    shutdown(addr, handle);
}

#[test]
fn keep_alive_reuses_connection_and_matches_close_mode() {
    let (addr, handle) = start(
        ServerConfig::default(),
        ServingState::from_frozen(fixture_catalog(1.0), "mem".into(), 0),
    );

    // Reference: the same query over a one-shot close-mode connection.
    let body = r#"{"query":"heart blood surgery","seed":42}"#;
    let (status, _, close_mode) = post(addr, "/route", body);
    assert_eq!(status, 200);

    // Three requests down one persistent connection, then an explicit
    // close on the fourth.
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    for _ in 0..3 {
        writer
            .write_all(
                format!(
                    "POST /route HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .expect("write");
        let (status, head, served) = read_one_response(&mut reader);
        assert_eq!(status, 200);
        assert!(
            head.contains("Connection: keep-alive"),
            "kept-alive response must say so: {head}"
        );
        assert_eq!(
            served, close_mode,
            "bit-identical responses across connection modes"
        );
    }
    writer
        .write_all(
            format!(
                "POST /route HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("write");
    let (status, head, served) = read_one_response(&mut reader);
    assert_eq!(status, 200);
    assert!(head.contains("Connection: close"), "{head}");
    assert_eq!(served, close_mode);
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("read");
    assert!(rest.is_empty(), "connection must close after `close`");

    // One connection, four requests.
    let (_, _, metrics) = get(addr, "/metrics");
    assert!(
        metrics.contains(r#"dbselectd_requests_total{endpoint="route",status="200"} 5"#),
        "{metrics}"
    );
    shutdown(addr, handle);
}

#[test]
fn keep_alive_request_cap_closes_the_connection() {
    let (addr, handle) = start(
        ServerConfig {
            keep_alive_requests: 2,
            ..Default::default()
        },
        ServingState::from_frozen(fixture_catalog(1.0), "mem".into(), 0),
    );

    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let raw = "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";
    writer.write_all(raw.as_bytes()).expect("write");
    let (_, head, _) = read_one_response(&mut reader);
    assert!(head.contains("Connection: keep-alive"), "{head}");

    // The second (= cap) response announces the close and the daemon
    // hangs up even though the client never asked.
    writer.write_all(raw.as_bytes()).expect("write");
    let (_, head, _) = read_one_response(&mut reader);
    assert!(head.contains("Connection: close"), "{head}");
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("read");
    assert!(rest.is_empty(), "connection must close at the request cap");

    shutdown(addr, handle);
}

#[test]
fn idle_keep_alive_connections_are_reaped() {
    let (addr, handle) = start(
        ServerConfig {
            idle_timeout: Duration::from_millis(150),
            ..Default::default()
        },
        ServingState::from_frozen(fixture_catalog(1.0), "mem".into(), 0),
    );

    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writer
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("write");
    let (status, _, _) = read_one_response(&mut reader);
    assert_eq!(status, 200);

    // Sit idle past the timeout: the daemon closes the connection
    // silently (no 408 — there is no request to answer).
    let started = std::time::Instant::now();
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("read");
    assert!(rest.is_empty(), "idle close must not write a response");
    assert!(
        started.elapsed() >= Duration::from_millis(100),
        "closed before the idle timeout"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "idle reap took far longer than the timeout"
    );
    shutdown(addr, handle);
}

#[test]
fn http10_defaults_to_close_and_can_opt_in() {
    let (addr, handle) = start(
        ServerConfig::default(),
        ServingState::from_frozen(fixture_catalog(1.0), "mem".into(), 0),
    );

    // HTTP/1.0 without a Connection header: answered then closed.
    let (status, head, _) = exchange(addr, "GET /healthz HTTP/1.0\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200);
    assert!(head.contains("Connection: close"), "{head}");

    // HTTP/1.0 with `Connection: keep-alive` opts in.
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let raw = "GET /healthz HTTP/1.0\r\nHost: t\r\nConnection: keep-alive\r\n\r\n";
    for _ in 0..2 {
        writer.write_all(raw.as_bytes()).expect("write");
        let (status, head, _) = read_one_response(&mut reader);
        assert_eq!(status, 200);
        assert!(head.contains("Connection: keep-alive"), "{head}");
    }
    drop(writer);
    drop(reader);
    shutdown(addr, handle);
}

#[test]
fn missed_deadline_answers_504() {
    let (addr, handle) = start(
        ServerConfig {
            workers: 2,
            deadline: Duration::from_millis(150),
            debug_sleep: true,
            ..Default::default()
        },
        ServingState::from_frozen(fixture_catalog(1.0), "mem".into(), 0),
    );

    let body = r#"{"query":"heart blood"}"#;
    let (status, _, response) = exchange(
        addr,
        &format!(
            "POST /route HTTP/1.1\r\nHost: t\r\nConnection: close\r\nX-Debug-Sleep-Ms: 500\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    );
    assert_eq!(
        status, 504,
        "deadline must expire during the debug sleep: {response}"
    );

    // A prompt request on the same daemon still succeeds.
    let (status, _, _) = post(addr, "/route", body);
    assert_eq!(status, 200);

    let (_, _, metrics) = get(addr, "/metrics");
    assert!(metrics.contains("dbselectd_timeout_total 1"), "{metrics}");
    shutdown(addr, handle);
}

/// Boot a daemon with an explicitly pinned connection path, bypassing
/// `common::start`'s `DBSELECTD_TEST_MODE` override.
fn start_pinned(
    mode: server::ServeMode,
    config: ServerConfig,
    state: ServingState,
) -> (SocketAddr, JoinHandle<()>) {
    let daemon = server::Server::bind(ServerConfig { mode, ..config }, state).expect("bind");
    let addr = daemon.local_addr();
    let handle = std::thread::spawn(move || daemon.run().expect("run"));
    (addr, handle)
}

#[test]
fn reactor_and_threaded_paths_serve_identical_bytes() {
    let frozen = fixture_catalog(1.0);
    let (reactor_addr, reactor_handle) = start_pinned(
        server::ServeMode::Reactor,
        ServerConfig::default(),
        ServingState::from_frozen(frozen.clone(), "mem".into(), 0),
    );
    let (threaded_addr, threaded_handle) = start_pinned(
        server::ServeMode::Threaded,
        ServerConfig::default(),
        ServingState::from_frozen(frozen, "mem".into(), 0),
    );

    let route_body = r#"{"query":"heart blood surgery","algo":"lm","seed":7}"#;
    let batch_body = r#"{"queries":["soccer goal","stock market yield"],"algo":"cori","k":4}"#;
    let bad_json = r#"{"query": nope}"#;
    let raw_requests = [
        format!(
            "POST /route HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{route_body}",
            route_body.len()
        ),
        format!(
            "POST /route_batch HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{batch_body}",
            batch_body.len()
        ),
        "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n".to_string(),
        "GET /no-such-endpoint HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n".to_string(),
        "GET /route HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n".to_string(),
        format!(
            "POST /route HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{bad_json}",
            bad_json.len()
        ),
        // Malformed request line: rejected by the parser itself, so this
        // exercises the reactor's own error path against the threaded one.
        "BLARG\r\n\r\n".to_string(),
    ];
    for raw in &raw_requests {
        let from_reactor = exchange(reactor_addr, raw);
        let from_threaded = exchange(threaded_addr, raw);
        assert_eq!(
            from_reactor, from_threaded,
            "responses diverged between connection paths for request {raw:?}"
        );
    }
    shutdown(reactor_addr, reactor_handle);
    shutdown(threaded_addr, threaded_handle);
}

#[test]
fn reactor_holds_hundreds_of_idle_connections_with_a_tiny_worker_pool() {
    const IDLE_CONNS: usize = 200;
    let (addr, handle) = start_pinned(
        server::ServeMode::Reactor,
        ServerConfig {
            workers: 2,
            idle_timeout: Duration::from_secs(30),
            ..Default::default()
        },
        ServingState::from_frozen(fixture_catalog(1.0), "mem".into(), 0),
    );

    // Park a small army of kept-alive connections: each serves one
    // request (so it is genuinely established, not just SYN-accepted)
    // and then sits idle.
    let mut parked = Vec::with_capacity(IDLE_CONNS);
    for i in 0..IDLE_CONNS {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        writer
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .expect("write");
        let (status, _, _) = read_one_response(&mut reader);
        assert_eq!(status, 200, "connection {i} failed its warm-up request");
        parked.push((writer, reader));
    }

    // The fixed worker pool is unaffected by the parked connections:
    // fresh work still flows.
    let (status, _, _) = post(addr, "/route", r#"{"query":"heart blood"}"#);
    assert_eq!(
        status, 200,
        "routing must still work with {IDLE_CONNS} idle conns"
    );

    let (_, _, metrics) = get(addr, "/metrics");
    let gauge = |name: &str| -> u64 {
        metrics
            .lines()
            .find(|l| l.starts_with(name))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("metric {name} missing:\n{metrics}"))
    };
    assert_eq!(
        gauge("dbselectd_connections_state{state=\"idle\"}"),
        IDLE_CONNS as u64,
        "every parked connection must be in the idle state"
    );
    assert!(
        gauge("dbselectd_open_connections") >= IDLE_CONNS as u64,
        "open-connection gauge must count the parked connections"
    );
    assert!(gauge("dbselectd_reactor_wakeups_total") > 0);

    drop(parked);
    shutdown(addr, handle);
}

#[test]
fn failed_reloads_answer_4xx_and_keep_serving_the_old_generation() {
    let path = temp_path("reload-rollback");
    let catalog = fixture_catalog(1.0);
    catalog.save(&path).unwrap();
    let reference = ServingState::from_frozen(catalog, "mem".into(), 0);
    let line = "heart blood surgery goal";
    let expected = expected_ranking(
        &reference,
        &words(line),
        Algo::Cori,
        selection::ShrinkageMode::Adaptive,
        42,
        0,
    );

    let state = ServingState::load(path.to_str().unwrap(), 0).unwrap();
    let (addr, handle) = start(ServerConfig::default(), state);

    let serving_generation_one = |context: &str| {
        let (status, _, body) = post(addr, "/route", &format!(r#"{{"query":"{line}"}}"#));
        assert_eq!(status, 200, "{context}: {body}");
        let ranking = parse_ranking(Json::parse(&body).unwrap().get("ranking").unwrap());
        assert_eq!(ranking, expected, "{context}: ranking changed");
        let (_, _, health) = get(addr, "/healthz");
        assert_eq!(
            Json::parse(&health)
                .unwrap()
                .get("generation")
                .unwrap()
                .as_u64(),
            Some(1),
            "{context}: generation must not advance"
        );
    };
    serving_generation_one("before any reload");

    // A reload pointing at a path that does not exist: 404, old
    // generation keeps serving.
    let missing = temp_path("reload-missing");
    let (status, _, body) = post(
        addr,
        "/admin/reload",
        &format!(r#"{{"path":"{}"}}"#, missing.display()),
    );
    assert_eq!(
        status, 404,
        "missing snapshot must be the client's 404: {body}"
    );
    serving_generation_one("after reload from a missing path");

    // A reload pointing at a corrupt file (bad magic): 400, old
    // generation keeps serving.
    let corrupt = temp_path("reload-corrupt");
    std::fs::write(&corrupt, b"definitely not a serving snapshot").unwrap();
    let (status, _, body) = post(
        addr,
        "/admin/reload",
        &format!(r#"{{"path":"{}"}}"#, corrupt.display()),
    );
    assert_eq!(status, 400, "corrupt snapshot must be a 400: {body}");
    serving_generation_one("after reload from a corrupt file");

    // A truncated file (shorter than the magic) is corrupt too.
    let truncated = temp_path("reload-truncated");
    std::fs::write(&truncated, b"DBS").unwrap();
    let (status, _, body) = post(
        addr,
        "/admin/reload",
        &format!(r#"{{"path":"{}"}}"#, truncated.display()),
    );
    assert_eq!(status, 400, "truncated snapshot must be a 400: {body}");
    serving_generation_one("after reload from a truncated file");

    // And the daemon is still reloadable: the same path that has been
    // serving all along loads fine and bumps the generation.
    let (status, _, body) = post(
        addr,
        "/admin/reload",
        &format!(r#"{{"path":"{}"}}"#, path.display()),
    );
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        Json::parse(&body)
            .unwrap()
            .get("generation")
            .unwrap()
            .as_u64(),
        Some(2),
        "a good reload after failed ones still advances the generation"
    );

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&corrupt).ok();
    std::fs::remove_file(&truncated).ok();
    shutdown(addr, handle);
}

#[test]
fn readyz_reports_generation_and_snapshot_checksum_per_tenant() {
    let path = temp_path("readyz");
    fixture_catalog(1.0).save(&path).unwrap();
    let state = ServingState::load(path.to_str().unwrap(), 0).unwrap();
    let (addr, handle) = start(ServerConfig::default(), state);

    let (status, _, body) = get(addr, "/readyz");
    assert_eq!(
        status, 200,
        "a bound catalog daemon is always ready: {body}"
    );
    let parsed = Json::parse(&body).unwrap();
    assert_eq!(parsed.get("ready"), Some(&Json::Bool(true)));
    let tenants = parsed.get("tenants").and_then(Json::as_array).unwrap();
    assert_eq!(tenants.len(), 1);
    let tenant = &tenants[0];
    assert_eq!(tenant.get("tenant").and_then(Json::as_str), Some("default"));
    assert_eq!(tenant.get("generation").and_then(Json::as_u64), Some(1));
    assert_eq!(tenant.get("databases").and_then(Json::as_u64), Some(6));
    let checksum = tenant
        .get("snapshot_checksum")
        .and_then(Json::as_str)
        .expect("checksum string");
    assert_eq!(checksum.len(), 16, "fixed-width hex: {checksum}");
    assert!(checksum.chars().all(|c| c.is_ascii_hexdigit()));
    assert_ne!(
        checksum, "0000000000000000",
        "a file-loaded snapshot must carry its content checksum"
    );

    // Two daemons serving the same snapshot bytes report the same
    // checksum — the federation bit-identity precondition an operator
    // can check from the outside.
    let twin_state = ServingState::load(path.to_str().unwrap(), 0).unwrap();
    let (twin_addr, twin_handle) = start(ServerConfig::default(), twin_state);
    let (_, _, twin_body) = get(twin_addr, "/readyz");
    let twin = Json::parse(&twin_body).unwrap();
    let twin_checksum = twin.get("tenants").and_then(Json::as_array).unwrap()[0]
        .get("snapshot_checksum")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    assert_eq!(twin_checksum, checksum);
    shutdown(twin_addr, twin_handle);

    // An in-memory (test-fixture) snapshot has no file to checksum and
    // reports the zero sentinel.
    let (mem_addr, mem_handle) = start(
        ServerConfig::default(),
        ServingState::from_frozen(fixture_catalog(1.0), "mem".into(), 0),
    );
    let (_, _, mem_body) = get(mem_addr, "/readyz");
    let mem = Json::parse(&mem_body).unwrap();
    assert_eq!(
        mem.get("tenants").and_then(Json::as_array).unwrap()[0]
            .get("snapshot_checksum")
            .and_then(Json::as_str),
        Some("0000000000000000")
    );
    shutdown(mem_addr, mem_handle);

    std::fs::remove_file(&path).ok();
    shutdown(addr, handle);
}
