//! Multi-tenant federated serving over real sockets.
//!
//! The load-bearing assertions: every tenant routes against its own
//! catalog through `/t/<name>/...`; reloading tenant A never fails an
//! in-flight request on tenant B; a tenant's admission quota answers
//! `503` + `Retry-After` without touching its neighbours; tenant metric
//! families are label-isolated; and sharded serving (`shards > 1`) stays
//! bit-identical to the monolithic engine over HTTP.

mod common;

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use common::{fixture_catalog, start_tenants, temp_path};
use sampling::scheduler::db_rng;
use server::json::Json;
use server::state::{Algo, ServingState, MODES};
use server::ServerConfig;

/// One `Connection: close` HTTP exchange on a fresh connection.
fn exchange(addr: SocketAddr, raw: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("write");
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).expect("read");
    let text = String::from_utf8(bytes).expect("utf-8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("header terminator");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, head.to_string(), body.to_string())
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String, String) {
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    exchange(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

fn shutdown(addr: SocketAddr, handle: JoinHandle<()>) {
    let (status, _, _) = post(addr, "/admin/shutdown", "");
    assert_eq!(status, 200);
    handle.join().expect("accept loop exits cleanly");
}

/// The served ranking as (database, score-bits, shrinkage_used) triples.
fn parse_ranking(ranking: &Json) -> Vec<(String, u64, bool)> {
    ranking
        .as_array()
        .expect("ranking array")
        .iter()
        .map(|entry| {
            (
                entry.get("database").unwrap().as_str().unwrap().to_string(),
                entry.get("score").unwrap().as_f64().unwrap().to_bits(),
                matches!(entry.get("shrinkage_used").unwrap(), Json::Bool(true)),
            )
        })
        .collect()
}

/// The in-process expectation for query `index` of a batch.
fn expected_ranking(
    state: &ServingState,
    words: &[String],
    algo: Algo,
    mode: selection::ShrinkageMode,
    seed: u64,
    index: usize,
) -> Vec<(String, u64, bool)> {
    let (query, _) = state.analyze(words);
    let mut rng = db_rng(seed, index);
    let outcome = state.engine(algo, mode).route(&query, &mut rng);
    outcome
        .ranking
        .iter()
        .map(|r| {
            (
                state.name(r.index).to_string(),
                r.score.to_bits(),
                outcome.used_shrinkage[r.index],
            )
        })
        .collect()
}

fn words(line: &str) -> Vec<String> {
    line.split_whitespace().map(str::to_string).collect()
}

fn two_tenants() -> Vec<(String, ServingState)> {
    vec![
        (
            "alpha".to_string(),
            ServingState::from_frozen(fixture_catalog(1.0), "alpha-mem".into(), 0),
        ),
        (
            "beta".to_string(),
            ServingState::from_frozen(fixture_catalog(0.05), "beta-mem".into(), 0),
        ),
    ]
}

#[test]
fn tenant_paths_route_against_their_own_catalog() {
    let ref_alpha = ServingState::from_frozen(fixture_catalog(1.0), "mem".into(), 0);
    let ref_beta = ServingState::from_frozen(fixture_catalog(0.05), "mem".into(), 0);
    let (addr, handle) = start_tenants(ServerConfig::default(), two_tenants());

    let line = "heart blood surgery goal";
    let expect_alpha = expected_ranking(
        &ref_alpha,
        &words(line),
        Algo::Cori,
        selection::ShrinkageMode::Adaptive,
        42,
        0,
    );
    let expect_beta = expected_ranking(
        &ref_beta,
        &words(line),
        Algo::Cori,
        selection::ShrinkageMode::Adaptive,
        42,
        0,
    );
    assert_ne!(expect_alpha, expect_beta, "fixtures must rank differently");

    let body = format!(r#"{{"query":"{line}"}}"#);
    let (status, _, text) = post(addr, "/t/alpha/route", &body);
    assert_eq!(status, 200, "{text}");
    let ranking = parse_ranking(Json::parse(&text).unwrap().get("ranking").unwrap());
    assert_eq!(ranking, expect_alpha, "alpha must serve alpha's catalog");

    let (status, _, text) = post(addr, "/t/beta/route", &body);
    assert_eq!(status, 200, "{text}");
    let ranking = parse_ranking(Json::parse(&text).unwrap().get("ranking").unwrap());
    assert_eq!(ranking, expect_beta, "beta must serve beta's catalog");

    // Bare paths alias the first tenant in name order (no `default`).
    let (status, _, text) = post(addr, "/route", &body);
    assert_eq!(status, 200, "{text}");
    let ranking = parse_ranking(Json::parse(&text).unwrap().get("ranking").unwrap());
    assert_eq!(ranking, expect_alpha, "bare path must alias the default");

    // `/t/beta/route_batch` routes against beta too.
    let (status, _, text) = post(
        addr,
        "/t/beta/route_batch",
        &format!(r#"{{"queries":["{line}"]}}"#),
    );
    assert_eq!(status, 200, "{text}");
    let parsed = Json::parse(&text).unwrap();
    let first = &parsed.get("results").unwrap().as_array().unwrap()[0];
    assert_eq!(
        parse_ranking(first.get("ranking").unwrap()),
        expect_beta,
        "batch must serve beta's catalog"
    );

    // Unknown tenants and unknown sub-paths are 404; wrong methods 405;
    // process-wide endpoints do not exist under /t/.
    assert_eq!(post(addr, "/t/nobody/route", &body).0, 404);
    assert_eq!(get(addr, "/t/alpha/route").0, 405);
    assert_eq!(get(addr, "/t/alpha/healthz").0, 404);
    assert_eq!(post(addr, "/t/alpha", &body).0, 404);
    assert_eq!(post(addr, "/t/alpha/admin/shutdown", "").0, 404);

    // /healthz reports the tenant count.
    let (_, _, text) = get(addr, "/healthz");
    assert_eq!(
        Json::parse(&text).unwrap().get("tenants").unwrap().as_u64(),
        Some(2)
    );

    shutdown(addr, handle);
}

#[test]
fn sharded_serving_is_bit_identical_over_http() {
    let frozen = fixture_catalog(1.0);
    let reference = ServingState::from_frozen(frozen.clone(), "mem".into(), 0);
    let sharded = ServingState::from_snapshot_sharded(
        store::snapshot::ServingSnapshot::from_stored(&frozen),
        "mem".into(),
        0,
        3,
    );
    assert_eq!(sharded.shard_count(), 3);
    let (addr, handle) = start_tenants(
        ServerConfig {
            shards: 3,
            ..Default::default()
        },
        vec![("default".to_string(), sharded)],
    );

    let queries = [
        "heart blood surgery",
        "soccer goal keeper",
        "stock market yield goal",
        "virus immune protein blood",
    ];
    for (algo_name, algo) in [
        ("bgloss", Algo::BGloss),
        ("cori", Algo::Cori),
        ("lm", Algo::Lm),
    ] {
        for (mode_name, mode) in [
            ("adaptive", MODES[0]),
            ("always", MODES[1]),
            ("never", MODES[2]),
        ] {
            for (index, line) in queries.iter().enumerate() {
                let expect = expected_ranking(&reference, &words(line), algo, mode, 42, index);
                let body = format!(
                    r#"{{"query":"{line}","algo":"{algo_name}","shrinkage":"{mode_name}","index":{index}}}"#
                );
                let (status, _, text) = post(addr, "/route", &body);
                assert_eq!(status, 200, "{text}");
                let ranking = parse_ranking(Json::parse(&text).unwrap().get("ranking").unwrap());
                assert_eq!(
                    ranking, expect,
                    "sharded daemon diverged from monolithic engine \
                     ({algo_name}/{mode_name}, query {index})"
                );
            }
            // And through the batch path (shards sequential per query).
            let batch: Vec<String> = queries.iter().map(|q| format!("\"{q}\"")).collect();
            let body = format!(
                r#"{{"queries":[{}],"algo":"{algo_name}","shrinkage":"{mode_name}"}}"#,
                batch.join(",")
            );
            let (status, _, text) = post(addr, "/route_batch", &body);
            assert_eq!(status, 200, "{text}");
            let parsed = Json::parse(&text).unwrap();
            for (index, result) in parsed
                .get("results")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .enumerate()
            {
                let expect =
                    expected_ranking(&reference, &words(queries[index]), algo, mode, 42, index);
                assert_eq!(
                    parse_ranking(result.get("ranking").unwrap()),
                    expect,
                    "sharded batch diverged ({algo_name}/{mode_name}, query {index})"
                );
            }
        }
    }

    let (_, _, text) = get(addr, "/healthz");
    assert_eq!(
        Json::parse(&text).unwrap().get("shards").unwrap().as_u64(),
        Some(3)
    );

    shutdown(addr, handle);
}

#[test]
fn reloading_one_tenant_never_fails_the_other() {
    let path_a1 = temp_path("tenant-a1");
    let path_a2 = temp_path("tenant-a2");
    fixture_catalog(1.0).save(&path_a1).unwrap();
    fixture_catalog(0.5).save(&path_a2).unwrap();

    let ref_beta = ServingState::from_frozen(fixture_catalog(0.05), "mem".into(), 0);
    let line = "heart blood surgery goal";
    let expect_beta = expected_ranking(
        &ref_beta,
        &words(line),
        Algo::Cori,
        selection::ShrinkageMode::Adaptive,
        42,
        0,
    );

    let tenants = vec![
        (
            "alpha".to_string(),
            ServingState::load(path_a1.to_str().unwrap(), 0).unwrap(),
        ),
        (
            "beta".to_string(),
            ServingState::from_frozen(fixture_catalog(0.05), "beta-mem".into(), 0),
        ),
    ];
    let (addr, handle) = start_tenants(
        ServerConfig {
            workers: 4,
            queue_capacity: 128,
            ..Default::default()
        },
        tenants,
    );

    // Hammer beta from several threads while alpha is reloaded over and
    // over. Every beta response must be 200 with beta's exact ranking —
    // reload isolation means beta never even notices.
    let stop = Arc::new(AtomicBool::new(false));
    let served = Arc::new(AtomicU64::new(0));
    let hammers: Vec<_> = (0..3)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let served = Arc::clone(&served);
            let expect_beta = expect_beta.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let (status, _, body) =
                        post(addr, "/t/beta/route", &format!(r#"{{"query":"{line}"}}"#));
                    assert_eq!(status, 200, "beta failed during alpha reload: {body}");
                    let ranking =
                        parse_ranking(Json::parse(&body).unwrap().get("ranking").unwrap());
                    assert_eq!(ranking, expect_beta, "beta's ranking drifted");
                    served.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    // Alternate alpha between its two generations as fast as reloads go.
    let mut alpha_generation = 1;
    for i in 0..10 {
        let path = if i % 2 == 0 { &path_a2 } else { &path_a1 };
        let (status, _, body) = post(
            addr,
            "/t/alpha/admin/reload",
            &format!(r#"{{"path":"{}"}}"#, path.display()),
        );
        assert_eq!(status, 200, "alpha reload failed: {body}");
        alpha_generation += 1;
        let parsed = Json::parse(&body).unwrap();
        assert_eq!(parsed.get("tenant").unwrap().as_str(), Some("alpha"));
        assert_eq!(
            parsed.get("generation").unwrap().as_u64(),
            Some(alpha_generation)
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    stop.store(true, Ordering::Relaxed);
    for h in hammers {
        h.join().expect("hammer thread");
    }
    assert!(
        served.load(Ordering::Relaxed) > 0,
        "hammers must have exercised beta during the reloads"
    );

    // Beta's generation chain is untouched; alpha's advanced by 10.
    let (_, _, text) = post(addr, "/t/beta/route", &format!(r#"{{"query":"{line}"}}"#));
    assert_eq!(
        Json::parse(&text)
            .unwrap()
            .get("generation")
            .unwrap()
            .as_u64(),
        Some(1),
        "beta's generation must not move when alpha reloads"
    );
    let (_, _, text) = get(addr, "/metrics");
    assert!(
        text.contains("dbselectd_tenant_reload_total{tenant=\"alpha\"} 10"),
        "alpha reload counter missing:\n{text}"
    );
    assert!(
        text.contains("dbselectd_tenant_reload_total{tenant=\"beta\"} 0"),
        "beta reload counter must stay zero:\n{text}"
    );

    shutdown(addr, handle);
    std::fs::remove_file(&path_a1).ok();
    std::fs::remove_file(&path_a2).ok();
}

#[test]
fn tenant_quota_rejects_with_retry_after_without_touching_neighbours() {
    let (addr, handle) = start_tenants(
        ServerConfig {
            workers: 4,
            queue_capacity: 128,
            tenant_quota: 1,
            debug_sleep: true,
            ..Default::default()
        },
        two_tenants(),
    );

    // Hold alpha's single quota slot with a slow request...
    let slow = std::thread::spawn(move || {
        let body = r#"{"query":"heart blood"}"#;
        let raw = format!(
            "POST /t/alpha/route HTTP/1.1\r\nHost: t\r\nConnection: close\r\nX-Debug-Route-Sleep-Ms: 900\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        exchange(addr, &raw)
    });
    std::thread::sleep(Duration::from_millis(250));

    // ...then a second alpha request must bounce with 503 + Retry-After,
    // while beta still serves 200 — quota is per tenant, not per process.
    let (status, head, body) = post(addr, "/t/alpha/route", r#"{"query":"heart blood"}"#);
    assert_eq!(status, 503, "{body}");
    assert!(
        head.contains("Retry-After:"),
        "missing Retry-After:\n{head}"
    );
    let (status, _, body) = post(addr, "/t/beta/route", r#"{"query":"heart blood"}"#);
    assert_eq!(
        status, 200,
        "beta must be unaffected by alpha's quota: {body}"
    );

    let (status, _, _) = slow.join().expect("slow request thread");
    assert_eq!(status, 200, "the quota holder itself must succeed");

    // The slot is free again once the slow request finished.
    let (status, _, body) = post(addr, "/t/alpha/route", r#"{"query":"heart blood"}"#);
    assert_eq!(status, 200, "quota must release after completion: {body}");

    let (_, _, text) = get(addr, "/metrics");
    assert!(
        text.contains("dbselectd_tenant_quota_rejected_total{tenant=\"alpha\"} 1"),
        "alpha quota rejection not counted:\n{text}"
    );
    assert!(
        text.contains("dbselectd_tenant_quota_rejected_total{tenant=\"beta\"} 0"),
        "beta must have no quota rejections:\n{text}"
    );

    shutdown(addr, handle);
}

#[test]
fn tenant_metrics_are_label_isolated() {
    let (addr, handle) = start_tenants(ServerConfig::default(), two_tenants());

    for _ in 0..3 {
        assert_eq!(post(addr, "/t/alpha/route", r#"{"query":"heart"}"#).0, 200);
    }
    assert_eq!(post(addr, "/t/beta/route", r#"{"query":"heart"}"#).0, 200);

    let (_, _, text) = get(addr, "/metrics");
    assert!(
        text.contains(
            "dbselectd_tenant_requests_total{tenant=\"alpha\",endpoint=\"route\",status=\"200\"} 3"
        ),
        "alpha request count wrong:\n{text}"
    );
    assert!(
        text.contains(
            "dbselectd_tenant_requests_total{tenant=\"beta\",endpoint=\"route\",status=\"200\"} 1"
        ),
        "beta request count wrong:\n{text}"
    );
    assert!(
        text.contains("dbselectd_tenant_in_flight{tenant=\"alpha\"} 0"),
        "in-flight gauge must return to zero:\n{text}"
    );

    shutdown(addr, handle);
}

#[test]
fn k_truncates_the_served_ranking_only() {
    let reference = ServingState::from_frozen(fixture_catalog(1.0), "mem".into(), 0);
    let (addr, handle) = start_tenants(
        ServerConfig::default(),
        vec![(
            "default".to_string(),
            ServingState::from_frozen(fixture_catalog(1.0), "mem".into(), 0),
        )],
    );

    let line = "heart blood surgery goal stock virus";
    let full = expected_ranking(
        &reference,
        &words(line),
        Algo::Cori,
        selection::ShrinkageMode::Adaptive,
        42,
        0,
    );
    assert!(full.len() > 2, "fixture must rank more than 2 databases");

    // k truncates the serialized ranking to the top k — the scores and
    // order of the survivors are exactly the full ranking's prefix.
    let (status, _, text) = post(addr, "/route", &format!(r#"{{"query":"{line}","k":2}}"#));
    assert_eq!(status, 200, "{text}");
    let ranking = parse_ranking(Json::parse(&text).unwrap().get("ranking").unwrap());
    assert_eq!(
        ranking,
        full[..2].to_vec(),
        "k=2 must serve the top-2 prefix"
    );

    // `k: 0` (and non-integer / negative k) is a client error, not an
    // empty ranking.
    for bad in [r#""k":0"#, r#""k":-1"#, r#""k":1.5"#, r#""k":"two""#] {
        let (status, _, text) = post(addr, "/route", &format!(r#"{{"query":"{line}",{bad}}}"#));
        assert_eq!(status, 400, "{bad}: {text}");
        assert!(text.contains("`k` must be a positive integer"), "{text}");
    }

    // Oversized and absent k serve the full ranking.
    let (_, _, text) = post(addr, "/route", &format!(r#"{{"query":"{line}","k":999}}"#));
    let ranking = parse_ranking(Json::parse(&text).unwrap().get("ranking").unwrap());
    assert_eq!(ranking, full);

    // And on the batch path.
    let (status, _, text) = post(
        addr,
        "/route_batch",
        &format!(r#"{{"queries":["{line}"],"k":1}}"#),
    );
    assert_eq!(status, 200, "{text}");
    let parsed = Json::parse(&text).unwrap();
    let first = &parsed.get("results").unwrap().as_array().unwrap()[0];
    assert_eq!(
        parse_ranking(first.get("ranking").unwrap()),
        full[..1].to_vec(),
        "batch k=1 must serve the top-1 prefix"
    );

    // A malformed k is a 400, not a panic.
    let (status, _, _) = post(
        addr,
        "/route",
        &format!(r#"{{"query":"{line}","k":"two"}}"#),
    );
    assert_eq!(status, 400);

    shutdown(addr, handle);
}
