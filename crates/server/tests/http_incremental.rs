//! Property tests pinning the reactor's incremental parser to the
//! streaming one: a valid pipelined request stream must parse to the
//! same requests whether it arrives in one buffer, one byte at a time
//! (every split boundary), or in random chunks — and must match what the
//! threaded path's `read_request` reads off the same stream.

use proptest::prelude::*;
use std::io::BufReader;

use server::http::{read_request, try_parse, Limits, ParseStatus, Request};

/// A generated request, pre-serialization.
#[derive(Debug, Clone)]
struct GenRequest {
    method: String,
    target: String,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
    http10: bool,
    bare_lf: bool,
}

impl GenRequest {
    fn serialize(&self) -> Vec<u8> {
        let eol: &[u8] = if self.bare_lf { b"\n" } else { b"\r\n" };
        let version = if self.http10 { "HTTP/1.0" } else { "HTTP/1.1" };
        let mut out = Vec::new();
        out.extend_from_slice(format!("{} {} {}", self.method, self.target, version).as_bytes());
        out.extend_from_slice(eol);
        for (name, value) in &self.headers {
            out.extend_from_slice(format!("{name}: {value}").as_bytes());
            out.extend_from_slice(eol);
        }
        if !self.body.is_empty() {
            out.extend_from_slice(format!("Content-Length: {}", self.body.len()).as_bytes());
            out.extend_from_slice(eol);
        }
        out.extend_from_slice(eol);
        out.extend_from_slice(&self.body);
        out
    }
}

fn gen_request() -> impl Strategy<Value = GenRequest> {
    (
        "[A-Z]{1,7}",
        "/[a-zA-Z0-9_/.-]{0,24}",
        prop::collection::vec(
            (
                // Names that cannot collide with the framing headers the
                // generator itself controls.
                "[Xx][A-Za-z-]{1,11}",
                // Values: printable ASCII; inner whitespace survives the
                // trim, edge whitespace is trimmed identically everywhere.
                "[a-zA-Z0-9 :,;=/-]{0,24}",
            ),
            0..4,
        ),
        prop::collection::vec(any::<u8>(), 0..48),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(method, target, headers, body, http10, bare_lf)| GenRequest {
                method,
                target,
                headers,
                body,
                http10,
                bare_lf,
            },
        )
}

/// Parse the whole stream with `try_parse`, re-invoked on the remaining
/// buffer after each complete request (the "one-shot" reference).
fn parse_one_shot(stream: &[u8], limits: &Limits) -> Vec<Request> {
    let mut buf = stream.to_vec();
    let mut requests = Vec::new();
    loop {
        match try_parse(&buf, limits).expect("generated stream must be valid") {
            ParseStatus::Complete { request, consumed } => {
                buf.drain(..consumed);
                requests.push(request);
            }
            ParseStatus::NeedMore => {
                assert!(buf.is_empty(), "leftover bytes that never complete");
                return requests;
            }
        }
    }
}

/// Parse the stream arriving in `chunks`-sized pieces, re-parsing after
/// every arrival exactly like the reactor's read loop does.
fn parse_incremental(stream: &[u8], chunk_sizes: &[usize], limits: &Limits) -> Vec<Request> {
    let mut requests = Vec::new();
    let mut buf: Vec<u8> = Vec::new();
    let mut fed = 0;
    let mut sizes = chunk_sizes.iter().copied().cycle();
    while fed < stream.len() {
        let n = sizes.next().unwrap_or(1).clamp(1, stream.len() - fed);
        buf.extend_from_slice(&stream[fed..fed + n]);
        fed += n;
        // Drain every request that completed with this chunk (the
        // reactor parses once per chunk, then again after each write —
        // same fixpoint, reached in a loop here).
        while let ParseStatus::Complete { request, consumed } =
            try_parse(&buf, limits).expect("generated stream must be valid")
        {
            buf.drain(..consumed);
            requests.push(request);
        }
    }
    assert!(buf.is_empty(), "incremental parse left unconsumed bytes");
    requests
}

/// Read the same stream with the threaded path's blocking parser.
fn parse_streaming(stream: &[u8], count: usize, limits: &Limits) -> Vec<Request> {
    let mut reader = BufReader::new(stream);
    (0..count)
        .map(|_| read_request(&mut reader, limits).expect("streaming parser must accept stream"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Byte-at-a-time arrival — every possible split boundary — parses
    /// identically to the one-shot and streaming parsers.
    #[test]
    fn every_byte_boundary_parses_identically(
        requests in prop::collection::vec(gen_request(), 1..4),
    ) {
        let limits = Limits::default();
        let stream: Vec<u8> = requests.iter().flat_map(|r| r.serialize()).collect();

        let one_shot = parse_one_shot(&stream, &limits);
        prop_assert_eq!(one_shot.len(), requests.len(), "every request must surface");

        let byte_wise = parse_incremental(&stream, &[1], &limits);
        prop_assert_eq!(&byte_wise, &one_shot, "byte-at-a-time must match one-shot");

        let streaming = parse_streaming(&stream, requests.len(), &limits);
        prop_assert_eq!(&streaming, &one_shot, "streaming parser must match one-shot");

        // Parsed structure matches what was generated.
        for (parsed, generated) in one_shot.iter().zip(&requests) {
            prop_assert_eq!(&parsed.method, &generated.method);
            prop_assert_eq!(&parsed.target, &generated.target);
            prop_assert_eq!(&parsed.body, &generated.body);
            prop_assert_eq!(parsed.version_minor, u8::from(!generated.http10));
        }
    }

    /// Arbitrary chunking (sizes 1..32, cycled) parses identically too —
    /// the parser cannot care where the kernel splits reads.
    #[test]
    fn random_chunk_splits_parse_identically(
        requests in prop::collection::vec(gen_request(), 1..4),
        chunk_sizes in prop::collection::vec(1usize..32, 1..8),
    ) {
        let limits = Limits::default();
        let stream: Vec<u8> = requests.iter().flat_map(|r| r.serialize()).collect();
        let one_shot = parse_one_shot(&stream, &limits);
        let chunked = parse_incremental(&stream, &chunk_sizes, &limits);
        prop_assert_eq!(chunked, one_shot);
    }
}
