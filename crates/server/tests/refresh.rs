//! Live-refresh integration tests: delta-chained catalogs served by the
//! daemon, race-free generation swaps, and provable rollback.
//!
//! The load-bearing assertions: a chain-loaded state routes
//! **bit-identically** to a full freeze of the same post-refresh session
//! across every (algorithm, shrinkage mode, shard count) combination; a
//! reload can never move the chain generation backwards (409, with the
//! serving generation in the body); a broken chain leaves the previous
//! generation serving and only increments the load-failure counter; the
//! background refresher hot-swaps a growing chain without failing a
//! single in-flight request.

mod common;

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use common::{fixture_catalog, start};
use dbselect_core::summary::ContentSummary;
use proptest::prelude::*;
use sampling::scheduler::db_rng;
use server::json::Json;
use server::state::{Algo, ServingState, MODES};
use server::ServerConfig;
use store::delta::{self, ChainWriter, DbPatch};
use store::refresh::RefreshSession;
use textindex::Document;

fn exchange(addr: SocketAddr, raw: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("write");
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).expect("read");
    let text = String::from_utf8(bytes).expect("utf-8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("header terminator");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, head.to_string(), body.to_string())
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String, String) {
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    exchange(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

fn shutdown(addr: SocketAddr, handle: JoinHandle<()>) {
    let (status, _, _) = post(addr, "/admin/shutdown", "");
    assert_eq!(status, 200);
    handle.join().expect("accept loop exits cleanly");
}

fn temp_chain(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dbselectd-refresh-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A synthetic re-probe for `db`: drifts the sample (dropping a rotating
/// prefix of the old vocabulary, adding fresh terms) and perturbs the
/// size estimate, deterministically in `(db, round, seed)`.
fn probe(session: &mut RefreshSession, db: usize, round: u64, seed: u64) -> ContentSummary {
    let fresh = session
        .dict_mut()
        .intern(&format!("drift-{db}-r{round}-s{seed}"));
    let old_terms: Vec<u32> = session.summary(db).iter().map(|(t, _)| t).collect();
    let mut docs = vec![Document::from_tokens(0, vec![fresh, fresh])];
    let skip = (round as usize + seed as usize) % 3;
    for (i, &t) in old_terms.iter().enumerate().skip(skip) {
        docs.push(Document::from_tokens(1 + i as u32, vec![t, fresh, t]));
    }
    let mut summary =
        ContentSummary::from_sample(docs.iter(), 800.0 + 31.0 * round as f64 + seed as f64);
    if (db + seed as usize) % 2 == 0 {
        summary.set_gamma(-1.4 - 0.07 * round as f64);
    }
    summary
}

/// Build a chain in `dir` whose rounds touch the given database sets;
/// returns the session holding the post-refresh reference state.
fn build_chain(dir: &Path, rounds: &[Vec<usize>], seed: u64) -> RefreshSession {
    let mut session = RefreshSession::new(fixture_catalog(1.0));
    let mut writer = ChainWriter::create(dir, &session.freeze_full()).unwrap();
    for (ri, dbs) in rounds.iter().enumerate() {
        let mut touched: Vec<usize> = dbs.clone();
        touched.sort_unstable();
        touched.dedup();
        let mut patches: Vec<DbPatch> = Vec::new();
        for &db in &touched {
            let summary = probe(&mut session, db, ri as u64 + 1, seed);
            patches.push(session.apply_probe(db, summary));
        }
        writer.append_round(session.dict(), patches).unwrap();
    }
    session
}

/// Every (algorithm, shrinkage mode) ranking for a set of queries, as
/// `(db index, score bits)` pairs — the bit-exact routing fingerprint of
/// a serving state.
fn route_fingerprint(state: &ServingState, queries: &[Vec<String>]) -> Vec<(usize, u64)> {
    let mut bits = Vec::new();
    for (qi, words) in queries.iter().enumerate() {
        let (query, _) = state.analyze(words);
        for algo in Algo::all() {
            for mode in MODES {
                let mut rng = db_rng(7, qi);
                let outcome = match state.sharded_engine(algo, mode) {
                    Some(se) => se.route_topk(&query, usize::MAX, &mut rng),
                    None => state
                        .engine(algo, mode)
                        .route_topk(&query, usize::MAX, &mut rng),
                };
                for r in &outcome.ranking {
                    bits.push((r.index, r.score.to_bits()));
                }
            }
        }
    }
    bits
}

fn fingerprint_queries() -> Vec<Vec<String>> {
    ["heart blood surgery", "goal keeper stadium", "stock yield", "virus immune protein blood"]
        .iter()
        .map(|q| q.split_whitespace().map(str::to_string).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Satellite 4, end to end: for random refresh schedules, the state
    /// loaded by replaying `base + deltas` routes bit-identically to a
    /// state built from a full freeze of the equivalent post-refresh
    /// session — across 3 algorithms × 3 shrinkage modes × 1/2/4 shards.
    #[test]
    fn chain_loaded_state_routes_bit_identically_to_full_freeze(
        rounds in proptest::collection::vec(
            proptest::collection::vec(0usize..6, 1..3),
            1..4,
        ),
        seed in 0u64..1000,
    ) {
        let dir = temp_chain("prop");
        let session = build_chain(&dir, &rounds, seed);
        let reference = session.freeze_full();
        let queries = fingerprint_queries();
        for shards in [1usize, 2, 4] {
            let chained = ServingState::load_sharded(
                dir.to_str().unwrap(), 0, shards,
            ).unwrap();
            prop_assert_eq!(chained.catalog_generation(), rounds.len() as u64);
            let full = ServingState::from_snapshot_sharded(
                reference.clone(), "mem".into(), 0, shards,
            );
            prop_assert_eq!(
                route_fingerprint(&chained, &queries),
                route_fingerprint(&full, &queries)
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn stale_chain_reloads_answer_409_and_force_overrides() {
    let newer = temp_chain("stale-newer");
    build_chain(&newer, &[vec![0, 2], vec![1]], 3);
    let older = temp_chain("stale-older");
    build_chain(&older, &[vec![4]], 3);

    let state = ServingState::load_sharded(newer.to_str().unwrap(), 0, 1).unwrap();
    assert_eq!(state.catalog_generation(), 2);
    let (addr, handle) = start(
        ServerConfig {
            workers: 2,
            ..Default::default()
        },
        state,
    );

    // Reloading an older chain generation is refused with the serving
    // generation in the body; nothing swaps.
    let reload_body = format!("{{\"path\": \"{}\"}}", older.display());
    let (status, _, body) = post(addr, "/admin/reload", &reload_body);
    assert_eq!(status, 409, "stale reload must be refused: {body}");
    let refused = Json::parse(&body).expect("409 body is JSON");
    assert_eq!(
        refused.get("catalog_generation").unwrap().as_u64().unwrap(),
        2
    );
    assert_eq!(refused.get("generation").unwrap().as_u64().unwrap(), 1);
    let (_, _, health) = get(addr, "/healthz");
    let health = Json::parse(&health).unwrap();
    assert_eq!(health.get("generation").unwrap().as_u64().unwrap(), 1);

    // `force: true` is the re-basing escape hatch: the same older chain
    // installs, and the serving generation still only goes up.
    let force_body = format!("{{\"path\": \"{}\", \"force\": true}}", older.display());
    let (status, _, body) = post(addr, "/admin/reload", &force_body);
    assert_eq!(status, 200, "forced reload: {body}");
    let ok = Json::parse(&body).unwrap();
    assert_eq!(ok.get("generation").unwrap().as_u64().unwrap(), 2);
    assert_eq!(ok.get("catalog_generation").unwrap().as_u64().unwrap(), 1);

    std::fs::remove_dir_all(&newer).ok();
    std::fs::remove_dir_all(&older).ok();
    shutdown(addr, handle);
}

#[test]
fn broken_chains_keep_the_old_generation_serving_and_count_the_failure() {
    let dir = temp_chain("rollback");
    build_chain(&dir, &[vec![0, 3]], 11);
    let state = ServingState::load_sharded(dir.to_str().unwrap(), 0, 1).unwrap();
    let (addr, handle) = start(
        ServerConfig {
            workers: 2,
            ..Default::default()
        },
        state,
    );

    let route_body = r#"{"query": "heart blood goal", "algo": "cori"}"#;
    let (status, _, before) = post(addr, "/route", route_body);
    assert_eq!(status, 200);

    // Put a corrupt delta-2 at the tip: the reload must reject the whole
    // chain (never half-apply), name the failing file and position, and
    // leave generation 1 serving.
    let delta2 = dir.join(delta::delta_file_name(2));
    let mut corrupt = std::fs::read(dir.join(delta::delta_file_name(1))).unwrap();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x40;
    std::fs::write(&delta2, &corrupt).unwrap();

    let (status, _, body) = post(addr, "/admin/reload", "");
    assert_eq!(status, 400, "corrupt chain must answer 400: {body}");
    assert!(body.contains("delta-000002.snap"), "body names the file: {body}");
    assert!(body.contains("chain delta 2"), "body names the position: {body}");

    // Provable rollback: the old generation still serves, bit for bit.
    let (_, _, health) = get(addr, "/healthz");
    assert_eq!(
        Json::parse(&health).unwrap().get("generation").unwrap().as_u64().unwrap(),
        1
    );
    let (status, _, after) = post(addr, "/route", route_body);
    assert_eq!(status, 200);
    assert_eq!(before, after, "serving state must be untouched");

    // The failure is visible to operators.
    let (_, _, metrics) = get(addr, "/metrics");
    let failures: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("dbselectd_catalog_load_failures_total "))
        .expect("load-failures family present")
        .trim()
        .parse()
        .unwrap();
    assert!(failures >= 1, "failure counter must increment: {failures}");

    // Repairing the chain (removing the broken tip) makes reload succeed
    // again, and the generation advances normally.
    std::fs::remove_file(&delta2).unwrap();
    let (status, _, body) = post(addr, "/admin/reload", "");
    assert_eq!(status, 200, "repaired chain reloads: {body}");
    assert_eq!(
        Json::parse(&body).unwrap().get("generation").unwrap().as_u64().unwrap(),
        2
    );

    // An empty chain directory is a caller error, reported as 404.
    let empty = temp_chain("rollback-empty");
    std::fs::create_dir_all(&empty).unwrap();
    let (status, _, body) = post(
        addr,
        "/admin/reload",
        &format!("{{\"path\": \"{}\"}}", empty.display()),
    );
    assert_eq!(status, 404, "missing base: {body}");

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&empty).ok();
    shutdown(addr, handle);
}

/// Satellite 1's hammer: admin reloads and the background refresher race
/// over a chain that grows concurrently. Generations observed by clients
/// must only ever increase, every reload answer is 200 or 409, and not
/// one in-flight routing request fails across any swap.
#[test]
fn concurrent_reloads_and_refresh_keep_generations_monotone() {
    let dir = temp_chain("hammer");
    let dir_string = dir.to_str().unwrap().to_string();
    // Base only; rounds are appended while the daemon serves.
    let mut session = RefreshSession::new(fixture_catalog(1.0));
    let mut writer = ChainWriter::create(&dir, &session.freeze_full()).unwrap();

    let state = ServingState::load_sharded(&dir_string, 0, 1).unwrap();
    assert_eq!(state.catalog_generation(), 0);
    let (addr, handle) = start(
        ServerConfig {
            workers: 4,
            refresh_interval: Some(Duration::from_millis(10)),
            ..Default::default()
        },
        state,
    );

    const ROUNDS: u64 = 6;
    let stop = Arc::new(AtomicBool::new(false));

    // Client load: continuous routing; any non-200 is a failed in-flight
    // request. Per client, the observed serving generation must never go
    // backwards (requests on one connection thread are sequential, so
    // request N+1's generation read happens after request N's).
    let clients: Vec<_> = (0..2)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut served = 0u64;
                let mut last = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    let (status, _, body) =
                        post(addr, "/route", r#"{"query": "heart goal stock virus"}"#);
                    assert_eq!(status, 200, "in-flight request failed: {body}");
                    let generation = Json::parse(&body)
                        .unwrap()
                        .get("generation")
                        .unwrap()
                        .as_u64()
                        .unwrap();
                    assert!(
                        generation >= last,
                        "generation regressed: saw {generation} after {last}"
                    );
                    last = generation;
                    served += 1;
                }
                served
            })
        })
        .collect();

    // Admin reload hammer, racing the refresher over the same chain.
    let reloader = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut outcomes = (0u64, 0u64);
            while !stop.load(Ordering::SeqCst) {
                let (status, _, body) = post(addr, "/admin/reload", "");
                match status {
                    200 => outcomes.0 += 1,
                    409 => outcomes.1 += 1,
                    other => panic!("reload answered {other}: {body}"),
                }
                std::thread::sleep(Duration::from_millis(3));
            }
            outcomes
        })
    };

    // Grow the chain while everything above is in flight.
    for round in 1..=ROUNDS {
        let db = (round as usize - 1) % session.len();
        let summary = probe(&mut session, db, round, 99);
        let patch = session.apply_probe(db, summary);
        writer.append_round(session.dict(), vec![patch]).unwrap();
        std::thread::sleep(Duration::from_millis(20));
    }

    // The refresher (or a racing reload) must catch up to the tip.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, _, body) = get(addr, "/readyz");
        let ready = Json::parse(&body).unwrap();
        let tenants = ready.get("tenants").unwrap().as_array().unwrap();
        let chain_generation = tenants[0]
            .get("catalog_generation")
            .unwrap()
            .as_u64()
            .unwrap();
        if chain_generation == ROUNDS {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "refresher never reached the chain tip (at {chain_generation}/{ROUNDS})"
        );
        std::thread::sleep(Duration::from_millis(15));
    }

    stop.store(true, Ordering::SeqCst);
    let (reload_ok, reload_stale) = reloader.join().unwrap();
    let served: u64 = clients.into_iter().map(|c| c.join().unwrap()).sum();
    assert!(served > 0, "clients must have routed during the churn");
    assert!(reload_ok + reload_stale > 0, "reloads must have run");

    // The served catalog is the tip, bit-identical to a full freeze.
    let reference = ServingState::from_snapshot_sharded(session.freeze_full(), "mem".into(), 0, 1);
    let tip = ServingState::load_sharded(&dir_string, 0, 1).unwrap();
    let queries = fingerprint_queries();
    assert_eq!(
        route_fingerprint(&tip, &queries),
        route_fingerprint(&reference, &queries)
    );

    std::fs::remove_dir_all(&dir).ok();
    shutdown(addr, handle);
}

/// The refresher alone (no admin reloads): a growing chain is picked up
/// within the polling interval, and a corrupt tip only counts a load
/// failure while the previous generation keeps serving.
#[test]
fn background_refresher_swaps_in_new_deltas_and_survives_corrupt_ones() {
    let dir = temp_chain("refresher");
    let mut session = RefreshSession::new(fixture_catalog(1.0));
    let mut writer = ChainWriter::create(&dir, &session.freeze_full()).unwrap();

    let state = ServingState::load_sharded(dir.to_str().unwrap(), 0, 1).unwrap();
    let (addr, handle) = start(
        ServerConfig {
            workers: 2,
            refresh_interval: Some(Duration::from_millis(15)),
            ..Default::default()
        },
        state,
    );

    let chain_generation = |addr| {
        let (_, _, body) = get(addr, "/readyz");
        let ready = Json::parse(&body).unwrap();
        ready.get("tenants").unwrap().as_array().unwrap()[0]
            .get("catalog_generation")
            .unwrap()
            .as_u64()
            .unwrap()
    };

    // Two refresh rounds land on disk; the daemon must follow without
    // any admin intervention.
    for round in 1..=2u64 {
        let summary = probe(&mut session, round as usize, round, 5);
        let patch = session.apply_probe(round as usize, summary);
        writer.append_round(session.dict(), vec![patch]).unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while chain_generation(addr) < 2 {
        assert!(Instant::now() < deadline, "refresher never caught up");
        std::thread::sleep(Duration::from_millis(10));
    }

    // A corrupt tip: the refresher sees a higher generation on disk,
    // fails to load it, counts the failure, and keeps serving tip 2.
    let bad = dir.join(delta::delta_file_name(3));
    let mut bytes = std::fs::read(dir.join(delta::delta_file_name(2))).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x08;
    std::fs::write(&bad, &bytes).unwrap();

    let deadline = Instant::now() + Duration::from_secs(10);
    let failures = loop {
        let (_, _, metrics) = get(addr, "/metrics");
        let failures: u64 = metrics
            .lines()
            .find_map(|l| l.strip_prefix("dbselectd_catalog_load_failures_total "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        if failures >= 1 {
            break failures;
        }
        assert!(Instant::now() < deadline, "failure never counted");
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(failures >= 1);
    assert_eq!(chain_generation(addr), 2, "corrupt tip must not serve");
    let (status, _, _) = post(addr, "/route", r#"{"query": "heart goal"}"#);
    assert_eq!(status, 200);

    std::fs::remove_dir_all(&dir).ok();
    shutdown(addr, handle);
}
