//! Deterministic fault injection against a one-worker daemon.
//!
//! Every test runs `workers: 1`, so a single wedged connection stalls the
//! whole pool — the "worker was freed" assertion is simply that a fresh
//! health probe gets answered shortly after the fault, and the "never
//! panicked" assertion reads `dbselectd_worker_panics_total` off
//! `/metrics`. The faults are the classic slow-client pathologies:
//! dribbling request bytes, stalling after headers, closing mid-body, and
//! never reading the response.

mod common;

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use common::{fixture_catalog, start};
use server::state::ServingState;
use server::ServerConfig;

/// The daemon under fault: one worker, a short request deadline, a short
/// idle timeout, debug headers enabled.
fn faultable() -> ServerConfig {
    ServerConfig {
        workers: 1,
        deadline: Duration::from_millis(400),
        idle_timeout: Duration::from_millis(300),
        debug_sleep: true,
        ..Default::default()
    }
}

/// Matches `ERROR_WRITE_GRACE` in `lib.rs`: the bounded extra budget the
/// daemon grants itself to flush a 408/504 after the deadline passed.
const WRITE_GRACE: Duration = Duration::from_secs(2);

/// One close-mode exchange; `Err` when the connection was torn down
/// before a response could be read (e.g. an RST racing the probe).
fn try_close_mode_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes)?;
    let text = String::from_utf8(bytes)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-utf8"))?;
    let status = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no status"))?;
    Ok((status, text))
}

fn close_mode_get(addr: SocketAddr, path: &str) -> (u16, String) {
    try_close_mode_get(addr, path).expect("exchange")
}

/// Assert the single worker is free again: a health probe succeeds within
/// `bound`. Retries because a probe racing the still-wedged worker may be
/// answered 504 from the queue or see its teardown — any response at all
/// already proves the worker is alive, but we insist on a clean 200.
fn assert_worker_freed_within(addr: SocketAddr, bound: Duration) {
    let started = Instant::now();
    loop {
        match try_close_mode_get(addr, "/healthz") {
            Ok((200, _)) => return,
            other => assert!(
                started.elapsed() < bound,
                "worker still wedged after {:?} (last probe: {other:?})",
                started.elapsed()
            ),
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn assert_zero_panics(addr: SocketAddr) {
    let (status, metrics) = close_mode_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("dbselectd_worker_panics_total 0"),
        "a fault must never panic a worker:\n{metrics}"
    );
}

fn shutdown(addr: SocketAddr, handle: std::thread::JoinHandle<()>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"POST /admin/shutdown HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .expect("write");
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).expect("read");
    handle.join().expect("accept loop exits cleanly");
}

#[test]
fn dribbling_client_gets_408_within_the_deadline() {
    let config = faultable();
    let deadline = config.deadline;
    let (addr, handle) = start(
        config,
        ServingState::from_frozen(fixture_catalog(1.0), "mem".into(), 0),
    );

    // Feed the request one byte every 25ms: per-syscall OS timeouts would
    // reset on every byte and never fire; the deadline must not.
    let started = Instant::now();
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let dribbler = std::thread::spawn(move || {
        for byte in "GET /healthz HTTP/1.1\r\nHost: dribble\r\n\r\n".bytes() {
            if writer.write_all(&[byte]).is_err() {
                return; // daemon gave up on us — exactly the point
            }
            let _ = writer.flush();
            std::thread::sleep(Duration::from_millis(25));
        }
        // Headers complete? Keep pretending to send another request.
        loop {
            if writer.write_all(b"G").is_err() {
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    });

    let mut response = String::new();
    let mut reader = stream;
    reader.read_to_string(&mut response).expect("read");
    let elapsed = started.elapsed();
    dribbler.join().expect("dribbler");

    // 43 bytes * 25ms > 1s of dribbling, but the 400ms deadline cut the
    // read short; the grace bounds how late the 408 may arrive.
    assert!(
        response.starts_with("HTTP/1.1 408 "),
        "dribbled request must time out, got: {response}"
    );
    assert!(
        elapsed < deadline + WRITE_GRACE,
        "408 took {elapsed:?}, beyond deadline + grace"
    );

    assert_worker_freed_within(addr, deadline + WRITE_GRACE);
    assert_zero_panics(addr);
    shutdown(addr, handle);
}

#[test]
fn stalling_after_headers_gets_408() {
    let config = faultable();
    let deadline = config.deadline;
    let (addr, handle) = start(
        config,
        ServingState::from_frozen(fixture_catalog(1.0), "mem".into(), 0),
    );

    // Promise a body and never send it: the worker must not wait on
    // `read_exact` past the deadline.
    let started = Instant::now();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"POST /route HTTP/1.1\r\nHost: t\r\nContent-Length: 64\r\n\r\n")
        .expect("write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");

    assert!(
        response.starts_with("HTTP/1.1 408 "),
        "stalled body must time out, got: {response}"
    );
    assert!(started.elapsed() < deadline + WRITE_GRACE);

    assert_worker_freed_within(addr, deadline + WRITE_GRACE);
    assert_zero_panics(addr);
    shutdown(addr, handle);
}

#[test]
fn closing_mid_body_frees_the_worker_without_panicking() {
    let config = faultable();
    let deadline = config.deadline;
    let (addr, handle) = start(
        config,
        ServingState::from_frozen(fixture_catalog(1.0), "mem".into(), 0),
    );

    // Send half the promised body, then vanish.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"POST /route HTTP/1.1\r\nHost: t\r\nContent-Length: 64\r\n\r\n{\"query\":")
        .expect("write");
    drop(stream);

    assert_worker_freed_within(addr, deadline + WRITE_GRACE);
    assert_zero_panics(addr);
    shutdown(addr, handle);
}

#[test]
fn client_that_never_reads_cannot_pin_the_worker() {
    let config = ServerConfig {
        workers: 1,
        deadline: Duration::from_secs(3),
        debug_sleep: true,
        ..Default::default()
    };
    let deadline = config.deadline;
    let (addr, handle) = start(
        config,
        ServingState::from_frozen(fixture_catalog(1.0), "mem".into(), 0),
    );

    // Pipeline batch requests whose responses total well past any
    // plausible kernel buffering (~12 MB per response, 5 responses ≈
    // 60 MB), never reading a byte: once the socket buffers fill, the
    // response write blocks and only the write deadline can free the
    // worker. The responses are byte-heavy but compute-cheap: every
    // query is identical (one known word, so repeats hit the posterior
    // cache) and padded with unknown words, which are echoed into the
    // response without costing routing work.
    let pad: Vec<String> = (0..30).map(|i| format!("zzzunknownpad{i:03}")).collect();
    let query = format!("\"heart {}\"", pad.join(" "));
    let body = format!(
        r#"{{"queries":[{}],"seed":7}}"#,
        vec![query; 10_000].join(",")
    );
    let request = format!(
        "POST /route_batch HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let mut stream = TcpStream::connect(addr).expect("connect");
    for _ in 0..5 {
        if stream.write_all(request.as_bytes()).is_err() {
            break; // daemon already closed on us — also a pass
        }
    }

    // Never read. The worker must free itself within one write deadline
    // of the response that hit the full buffer (the slack on top covers
    // the earlier responses' compute on a busy single-CPU box).
    assert_worker_freed_within(addr, 6 * deadline);
    drop(stream);
    assert_zero_panics(addr);
    shutdown(addr, handle);
}

#[test]
fn injected_panic_is_contained_and_counted() {
    let (addr, handle) = start(
        faultable(),
        ServingState::from_frozen(fixture_catalog(1.0), "mem".into(), 0),
    );

    // The handler panics mid-connection: no response, connection dropped,
    // pool intact.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nX-Debug-Panic: 1\r\n\r\n")
        .expect("write");
    let mut bytes = Vec::new();
    let _ = stream.read_to_end(&mut bytes); // RST is acceptable
    assert!(
        bytes.is_empty(),
        "a panicked connection must not produce a response: {:?}",
        String::from_utf8_lossy(&bytes)
    );

    // The (single) worker survived and serves again.
    assert_worker_freed_within(addr, Duration::from_secs(2));
    let (status, metrics) = close_mode_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("dbselectd_worker_panics_total 1"),
        "the panic must be counted:\n{metrics}"
    );
    shutdown(addr, handle);
}

#[test]
fn fault_barrage_leaves_a_healthy_pool() {
    // All faults in sequence against one daemon, then a real request: the
    // pool must come out the other side fully functional.
    let config = faultable();
    let deadline = config.deadline;
    let (addr, handle) = start(
        config,
        ServingState::from_frozen(fixture_catalog(1.0), "mem".into(), 0),
    );

    for _ in 0..3 {
        // Mid-body close.
        let mut s = TcpStream::connect(addr).expect("connect");
        let _ = s.write_all(b"POST /route HTTP/1.1\r\nContent-Length: 32\r\n\r\n{\"qu");
        drop(s);
        // Stall after headers (don't read the 408 either).
        let mut s = TcpStream::connect(addr).expect("connect");
        let _ = s.write_all(b"POST /route HTTP/1.1\r\nContent-Length: 32\r\n\r\n");
        drop(s);
        // Garbage request line.
        let mut s = TcpStream::connect(addr).expect("connect");
        let _ = s.write_all(b"\xff\xfe garbage\r\n\r\n");
        drop(s);
    }

    assert_worker_freed_within(addr, 2 * (deadline + WRITE_GRACE));
    let (status, body) = {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let payload = r#"{"query":"heart blood","seed":42}"#;
        stream
            .write_all(
                format!(
                    "POST /route HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{payload}",
                    payload.len()
                )
                .as_bytes(),
            )
            .expect("write");
        let mut bytes = Vec::new();
        stream.read_to_end(&mut bytes).expect("read");
        let text = String::from_utf8(bytes).expect("utf-8");
        let status: u16 = text.split_whitespace().nth(1).unwrap().parse().unwrap();
        (status, text)
    };
    assert_eq!(status, 200, "pool unhealthy after fault barrage: {body}");
    assert!(body.contains("\"ranking\""));
    assert_zero_panics(addr);
    shutdown(addr, handle);
}
