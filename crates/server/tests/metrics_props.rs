//! Property tests for `Histogram::percentile` against a sorted-vec
//! reference: monotone in `p`, bounded by the highest recorded bucket,
//! and never further than one bucket width from the exact order
//! statistic.

use proptest::prelude::*;

use server::metrics::Histogram;

/// The highest finite bucket bound of `Histogram::latency()` (~67s in
/// nanoseconds); observations at or below it land in bounded buckets.
const LAST_BOUND: u64 = 1_000u64 << 26;

/// `(lower, upper]` of the latency bucket an observation falls into,
/// mirroring the exponential layout (`bound[i] = 1µs · 2^i`), with the
/// overflow bucket spanning one more doubling.
fn bucket_edges(nanos: u64) -> (u64, u64) {
    let bounds: Vec<u64> = (0..27).map(|i| 1_000u64 << i).collect();
    let i = bounds.partition_point(|&bound| bound < nanos);
    let lower = if i == 0 { 0 } else { bounds[i - 1] };
    let upper = bounds.get(i).copied().unwrap_or(LAST_BOUND * 2);
    (lower, upper)
}

/// The exact `p`-th percentile of a sorted sample, using the same
/// ceil-rank convention the histogram targets.
fn reference_percentile(sorted: &[u64], p: f64) -> u64 {
    let total = sorted.len() as u64;
    let target = (p.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
    sorted[(target - 1) as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Percentile is monotone in `p`.
    #[test]
    fn percentile_is_monotone_in_p(
        observations in prop::collection::vec(0u64..=LAST_BOUND, 1..200),
        p_a in 0.0f64..=1.0,
        p_b in 0.0f64..=1.0,
    ) {
        let h = Histogram::latency();
        for &nanos in &observations {
            h.observe(nanos);
        }
        let (lo, hi) = if p_a <= p_b { (p_a, p_b) } else { (p_b, p_a) };
        prop_assert!(
            h.percentile(lo) <= h.percentile(hi),
            "percentile({lo}) > percentile({hi})"
        );
    }

    /// Every percentile stays within the bucket span of the recorded
    /// extremes: at most the upper edge of the maximum observation's
    /// bucket, at least the lower edge of the minimum's.
    #[test]
    fn percentile_is_bounded_by_recorded_buckets(
        observations in prop::collection::vec(0u64..=LAST_BOUND, 1..200),
        p in 0.0f64..=1.0,
    ) {
        let h = Histogram::latency();
        for &nanos in &observations {
            h.observe(nanos);
        }
        let (_, max_upper) = bucket_edges(*observations.iter().max().unwrap());
        let (min_lower, _) = bucket_edges(*observations.iter().min().unwrap());
        let value = h.percentile(p);
        prop_assert!(value <= max_upper, "{value} above max bucket {max_upper}");
        prop_assert!(value >= min_lower, "{value} below min bucket {min_lower}");
    }

    /// The interpolated percentile lands in the same bucket as the exact
    /// order statistic, so it is within one bucket width of it.
    #[test]
    fn percentile_matches_sorted_reference_within_a_bucket(
        observations in prop::collection::vec(0u64..=LAST_BOUND, 1..200),
        p in 0.0f64..=1.0,
    ) {
        let h = Histogram::latency();
        for &nanos in &observations {
            h.observe(nanos);
        }
        let mut sorted = observations.clone();
        sorted.sort_unstable();
        let exact = reference_percentile(&sorted, p);
        let (lower, upper) = bucket_edges(exact);
        let value = h.percentile(p);
        prop_assert!(
            value >= lower && value <= upper,
            "percentile({p}) = {value} outside the exact value's bucket \
             ({exact} in ({lower}, {upper}])"
        );
        prop_assert!(
            value.abs_diff(exact) <= upper - lower,
            "percentile({p}) = {value} further than one bucket width from {exact}"
        );
    }
}
