//! Property tests: the hand-rolled HTTP/1.1 and JSON parsers never panic,
//! whatever bytes arrive on the socket — they return structured errors
//! that map to 4xx responses instead.

use proptest::prelude::*;
use std::io::BufReader;

use server::http::{read_request, Limits};
use server::json::Json;

/// Tight limits so the generators can exceed them cheaply.
fn small_limits() -> Limits {
    Limits {
        max_request_line: 128,
        max_headers: 8,
        max_header_line: 64,
        max_body: 256,
    }
}

const METHODS: [&str; 6] = ["GET", "POST", "PUT", "DELETE", "gEt", "FROB"];
const VERSIONS: [&str; 4] = ["HTTP/1.1", "HTTP/1.0", "HTTP/9000", ""];

/// Alphabet for JSON-shaped soup: structure characters, digits, letters,
/// escapes, and whitespace.
const JSON_SOUP: [char; 24] = [
    '[', ']', '{', '}', '"', ',', ':', '0', '9', '1', 'a', 'e', 'E', 'l', 'n', 't', 'r', 'u', '+',
    '-', '.', '\\', ' ', '\n',
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes: garbage, truncations, binary — never a panic.
    #[test]
    fn http_parser_survives_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut reader = BufReader::new(bytes.as_slice());
        let _ = read_request(&mut reader, &small_limits());
        let mut reader = BufReader::new(bytes.as_slice());
        let _ = read_request(&mut reader, &Limits::default());
    }

    /// Request-shaped input (plausible method/target/headers/body in any
    /// state of disrepair) — never a panic, and whatever parses obeys the
    /// declared body length.
    #[test]
    fn http_parser_survives_requestish_input(
        method_ix in 0usize..METHODS.len(),
        target in "[ -~]{0,40}",
        version_ix in 0usize..VERSIONS.len(),
        headers in prop::collection::vec(("[A-Za-z-]{1,16}", "[ -~]{0,30}"), 0..10),
        declared_len in prop::option::of(0usize..300),
        body in prop::collection::vec(any::<u8>(), 0..300),
        truncate_at in prop::option::of(0usize..600),
    ) {
        let mut raw = format!("{} {target} {}\r\n", METHODS[method_ix], VERSIONS[version_ix])
            .into_bytes();
        for (name, value) in &headers {
            raw.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        if let Some(len) = declared_len {
            raw.extend_from_slice(format!("Content-Length: {len}\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        raw.extend_from_slice(&body);
        if let Some(cut) = truncate_at {
            raw.truncate(cut);
        }

        let mut reader = BufReader::new(raw.as_slice());
        if let Ok(request) = read_request(&mut reader, &small_limits()) {
            // A request only parses when the declared body arrived whole.
            if let Some(len) = declared_len {
                prop_assert_eq!(request.body.len(), len);
            }
        }
    }

    /// The JSON parser never panics on printable soup, and rendering
    /// whatever it accepted re-parses to the same value.
    #[test]
    fn json_parser_survives_and_round_trips(text in "\\PC{0,200}") {
        if let Ok(value) = Json::parse(&text) {
            let rendered = value.render();
            let reparsed = Json::parse(&rendered);
            prop_assert_eq!(reparsed.ok(), Some(value));
        }
    }

    /// Structure-heavy soup aimed at the recursive descent and the depth
    /// limit: picks from a JSON-flavored alphabet so brackets, quotes, and
    /// escapes collide often.
    #[test]
    fn json_parser_survives_bracket_soup(picks in prop::collection::vec(0usize..JSON_SOUP.len(), 0..300)) {
        let text: String = picks.iter().map(|&ix| JSON_SOUP[ix]).collect();
        let _ = Json::parse(&text);
        let deep: String = std::iter::repeat_n('[', 200).chain(text.chars()).collect();
        let _ = Json::parse(&deep);
    }
}
