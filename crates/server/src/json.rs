//! A minimal JSON value — parser and serializer — for the daemon's
//! request/response bodies (std-only; no serde).
//!
//! Numbers are held as `f64`. Serialization uses Rust's shortest-roundtrip
//! `Display` for `f64`, so a score formatted here parses back to the exact
//! same bits — which is what lets the integration tests assert that
//! rankings served over HTTP are *bit-identical* to in-process routing.
//! Parsing is recursive descent with a depth limit; it never panics on
//! malformed input.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Json)>),
}

/// Maximum nesting depth accepted by the parser.
const MAX_DEPTH: usize = 64;

impl Json {
    /// Convenience object constructor.
    pub fn obj(fields: Vec<(String, Json)>) -> Json {
        Json::Obj(fields)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as a non-negative integer, if integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parse a JSON document (rejecting trailing non-whitespace).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }

    /// Serialize to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while bytes
        .get(*pos)
        .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
    {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at offset {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".to_string());
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at offset {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at offset {}", *pos));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at offset {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "non-ascii \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")?;
                        // Surrogates are replaced rather than combined; the
                        // daemon's payloads are ASCII-dominated term lists.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("invalid escape".to_string()),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => {
                return Err("unescaped control character".to_string());
            }
            Some(_) => {
                // Copy the whole run up to the next quote, escape, or
                // control byte in one go — per-character validation made
                // large request bodies quadratic. UTF-8 boundaries are
                // safe: the input is a `&str` and the run delimiters are
                // all ASCII.
                let rest = &bytes[*pos..];
                let run = rest
                    .iter()
                    .position(|&b| b == b'"' || b == b'\\' || b < 0x20)
                    .unwrap_or(rest.len());
                let text = std::str::from_utf8(&rest[..run]).map_err(|_| "invalid utf-8")?;
                out.push_str(text);
                *pos += run;
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while bytes
        .get(*pos)
        .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid number")?;
    let n: f64 = text
        .parse()
        .map_err(|_| format!("invalid number `{text}`"))?;
    if !n.is_finite() {
        return Err(format!("non-finite number `{text}`"));
    }
    Ok(Json::Num(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let text = r#"{"query":"heart blood","k":5,"seed":42,"algo":"cori","nested":[1,2.5,-3e2,true,false,null,"x"]}"#;
        let parsed = Json::parse(text).unwrap();
        assert_eq!(parsed.get("query").unwrap().as_str(), Some("heart blood"));
        assert_eq!(parsed.get("k").unwrap().as_u64(), Some(5));
        let rendered = parsed.render();
        assert_eq!(Json::parse(&rendered).unwrap(), parsed);
    }

    #[test]
    fn f64_round_trip_is_bit_exact() {
        for bits in [
            0x3FF0_0000_0000_0001u64,
            0x4037_0000_0000_0000,
            0xBFE5_5555_5555_5555,
            0x0010_0000_0000_0000,
        ] {
            let x = f64::from_bits(bits);
            let rendered = Json::Num(x).render();
            let back = Json::parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), bits, "{rendered}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a\"b\\c\nd\te\u{1}f — μ";
        let rendered = Json::Str(s.to_string()).render();
        assert_eq!(Json::parse(&rendered).unwrap().as_str(), Some(s));
    }

    #[test]
    fn malformed_documents_are_errors() {
        for text in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "nul",
            "tru",
            "01a",
            "\"",
            "\"\\q\"",
            "{\"a\":1} trailing",
            "--1",
            "1e999",
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }
}
