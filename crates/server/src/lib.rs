//! `dbselectd` — a networked metasearch daemon.
//!
//! A std-only TCP server with a hand-rolled HTTP/1.1 layer ([`http`])
//! serving database-selection requests against a loaded
//! [`store::catalog::StoredCatalog`]. Since the reactor refactor the
//! daemon separates **connection I/O** from **request execution**:
//!
//! - The **reactor** ([`reactor`], the default serve mode) runs a
//!   single-threaded readiness loop ([`poller`]: epoll on Linux,
//!   `poll(2)` fallback elsewhere) over the nonblocking listener and all
//!   accepted sockets. It owns every connection's state machine
//!   (reading → executing → writing → idle / draining), parses requests
//!   incrementally ([`http::try_parse`]), resumes writes on `EAGAIN`,
//!   and enforces every deadline — request, idle, write grace, linger —
//!   through a coarse [`timer::TimerWheel`] instead of per-syscall OS
//!   timeouts. Thousands of idle keep-alive connections cost one fd and
//!   a few hundred bytes each; no thread is pinned by an open socket.
//! - **Workers** only execute parsed requests: the reactor offers each
//!   complete request to a [`queue::BoundedQueue`] (a full queue is
//!   answered `503` + `Retry-After` — admission control at the parse
//!   boundary), a worker dispatches it against the catalog, serializes
//!   the response, and posts it to a [`queue::CompletionQueue`], ringing
//!   the reactor's wakeup pipe. A handler panic is caught per-request,
//!   counted in `dbselectd_worker_panics_total`, aborts only that
//!   connection, and never shrinks the pool.
//! - The **legacy threaded path** (`ServeMode::Threaded`,
//!   `--legacy-threaded`) keeps the previous architecture — accept loop,
//!   thread-per-connection workers popping whole connections, per-syscall
//!   deadline re-arming via [`DeadlineStream`] — as a one-release escape
//!   hatch while the reactor soaks.
//! - Routing endpoints resolve the current [`state::ServingState`]
//!   through an `RwLock<Arc<_>>`. `/admin/reload` builds the *next*
//!   state off to the side and swaps the `Arc`, so in-flight requests
//!   finish against the generation they started with and a reload never
//!   fails a request.
//!
//! Rankings served over HTTP are bit-identical to
//! `broker::SelectionEngine::route` in both modes: `/route` draws its
//! RNG from `db_rng(seed, index)` exactly like `dbselect route` does for
//! the query at `index` of a batch, and scores are serialized with
//! shortest-roundtrip `f64` formatting ([`json`]).

pub mod client;
pub mod http;
pub mod json;
pub mod metrics;
pub mod poller;
pub mod proxy;
pub mod queue;
pub mod reactor;
pub mod state;
pub mod timer;

pub use proxy::{HedgePolicy, ProxyConfig};

use std::io::{self, BufRead as _, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use sampling::scheduler::{db_rng, fan_out_chunks};
use selection::ShrinkageMode;

use crate::http::{read_request, write_response, HttpError, Limits, Request, Response};
use crate::json::Json;
use crate::metrics::{Metrics, TenantMetrics};
use crate::poller::Wakeup;
use crate::queue::{BoundedQueue, CompletionQueue};
use crate::state::{parse_shrinkage, Algo, ServingState};

/// How the daemon maps connections onto threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServeMode {
    /// Event-driven: one reactor thread owns all connection I/O, a fixed
    /// worker pool executes requests (the default).
    #[default]
    Reactor,
    /// Thread-per-connection escape hatch (`--legacy-threaded`): workers
    /// pop whole connections and serve them with blocking I/O.
    Threaded,
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7700` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads serving requests.
    pub workers: usize,
    /// Admission-queue capacity; connections beyond it get `503`.
    pub queue_capacity: usize,
    /// Per-request deadline: measured from accept for a connection's
    /// first request, re-stamped when a later request's first byte
    /// arrives on a kept-alive connection.
    pub deadline: Duration,
    /// Maximum requests served per connection before it is closed
    /// (`Connection: close` on the final response; minimum 1).
    pub keep_alive_requests: usize,
    /// How long a kept-alive connection may sit idle between requests
    /// before the daemon closes it.
    pub idle_timeout: Duration,
    /// Posterior-cache capacity per engine (0 = unbounded).
    pub cache_capacity: usize,
    /// Honor the `X-Debug-Sleep-Ms` request header (tests and load
    /// generators only — lets a client hold a worker deterministically).
    pub debug_sleep: bool,
    /// Connection handling: event-driven reactor (default) or the legacy
    /// thread-per-connection path.
    pub mode: ServeMode,
    /// Catalog shards per tenant: `> 1` scatters each `/route` query's
    /// scoring phase across this many contiguous catalog shards
    /// ([`broker::ShardedEngine`]); `<= 1` serves monolithically. Either
    /// way the served ranking is bit-identical.
    pub shards: usize,
    /// Per-tenant admission quota: maximum in-flight routing requests per
    /// tenant before the daemon answers `503` + `Retry-After` (0 =
    /// unlimited). One hot tenant exhausting the worker pool cannot take
    /// quota from the others.
    pub tenant_quota: usize,
    /// The `Retry-After` hint on every 503 this daemon originates
    /// (admission rejections, quota rejections, proxy all-shards-down).
    /// Serialized in whole seconds, rounded up, minimum 1.
    pub retry_after: Duration,
    /// Federated proxy mode: scatter-gather over these remote shard
    /// backends instead of serving a local catalog
    /// ([`Server::bind_proxy`]).
    pub proxy: Option<ProxyConfig>,
    /// Background refresh polling: every interval, re-scan each tenant
    /// whose source is a delta-chain directory and hot-swap in any new
    /// chain tip through the same guarded reload path `/admin/reload`
    /// uses. `None` (the default) disables the refresher thread.
    pub refresh_interval: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 64,
            deadline: Duration::from_secs(10),
            keep_alive_requests: 100,
            idle_timeout: Duration::from_secs(5),
            cache_capacity: broker::DEFAULT_CACHE_CAPACITY,
            debug_sleep: false,
            mode: ServeMode::Reactor,
            shards: 1,
            tenant_quota: 0,
            retry_after: Duration::from_secs(1),
            proxy: None,
            refresh_interval: None,
        }
    }
}

/// Maximum queries accepted in one `/route_batch` request.
pub(crate) const MAX_BATCH: usize = 10_000;

/// The configured `Retry-After` value as a header string: whole seconds,
/// rounded up, never below 1 (a `Retry-After: 0` invites an immediate
/// retry storm).
pub(crate) fn retry_after_value(config: &ServerConfig) -> String {
    config
        .retry_after
        .as_millis()
        .div_ceil(1000)
        .max(1)
        .to_string()
}

/// Write-timeout bound on the accept thread's `503` rejection: the
/// response fits any socket buffer, so this only stops a pathological
/// client from head-of-line-blocking `accept()`.
const REJECT_WRITE_TIMEOUT: Duration = Duration::from_millis(250);

/// Floor on the write budget for a response reporting a deadline or
/// parse error after the request deadline already passed — without it the
/// `504`/`408` body could never be flushed.
const ERROR_WRITE_GRACE: Duration = Duration::from_secs(2);

/// Bounds on the lingering close's drain phase (see [`lingering_close`]).
const LINGER_DRAIN: Duration = Duration::from_millis(500);
const LINGER_DRAIN_MAX: usize = 64 * 1024;

/// One admitted connection, carrying its first request's deadline
/// (legacy threaded mode).
struct Job {
    stream: TcpStream,
    deadline: Instant,
}

/// One parsed request handed from the reactor to the worker pool.
pub(crate) struct Task {
    /// The owning connection's reactor token (slot | generation).
    pub(crate) token: u64,
    pub(crate) request: Request,
    /// Absolute deadline stamped by the reactor when the request's first
    /// byte arrived (or at accept for a connection's first request).
    pub(crate) deadline: Instant,
    /// The reactor already knows this response must close the connection
    /// (keep-alive request cap reached) regardless of what the client
    /// asked for.
    pub(crate) force_close: bool,
}

/// A worker's answer, routed back to the connection by token.
pub(crate) struct Completion {
    pub(crate) token: u64,
    /// The fully serialized response, or `None` when the handler
    /// panicked — the connection is dropped without a response.
    pub(crate) bytes: Option<Vec<u8>>,
    /// Close the connection after flushing (mirrors the serialized
    /// `Connection: close` header).
    pub(crate) close: bool,
}

/// A `TcpStream` wrapper that re-arms the socket timeout against a
/// deadline before **every** read and write. `set_read_timeout` alone
/// bounds each `recv` syscall, not the total: a slowloris client feeding
/// one byte per poll (or draining its response equally slowly) resets the
/// clock forever. Going through this wrapper, the total time a worker can
/// spend on one request's socket I/O is bounded by the deadline.
struct DeadlineStream {
    stream: TcpStream,
    deadline: Instant,
}

impl DeadlineStream {
    /// Time left until the deadline, as a non-zero duration
    /// (`set_read_timeout` rejects zero), or `TimedOut`.
    fn remaining(&self) -> io::Result<Duration> {
        let now = Instant::now();
        if now >= self.deadline {
            return Err(io::Error::new(io::ErrorKind::TimedOut, "deadline exceeded"));
        }
        Ok(self.deadline - now)
    }
}

impl Read for DeadlineStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.stream.set_read_timeout(Some(self.remaining()?))?;
        self.stream.read(buf)
    }
}

impl Write for DeadlineStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.stream.set_write_timeout(Some(self.remaining()?))?;
        self.stream.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.stream.flush()
    }
}

/// One named catalog hosted by the daemon: its own serving state,
/// generation chain, in-flight gauge, and label-isolated metrics.
///
/// Reloads swap only this tenant's `Arc` — in-flight requests on *any*
/// tenant keep the state they resolved, so reloading tenant A can never
/// fail a request on tenant B (or on A itself). The metrics live here
/// rather than in [`ServingState`] so they survive the tenant's reloads.
pub(crate) struct Tenant {
    pub(crate) name: String,
    pub(crate) state: RwLock<Arc<ServingState>>,
    pub(crate) generation: AtomicU64,
    /// Routing requests currently executing against this tenant
    /// (admission quota gauge).
    pub(crate) in_flight: AtomicU64,
    pub(crate) metrics: TenantMetrics,
}

impl Tenant {
    fn new(name: String, state: ServingState) -> Tenant {
        Tenant {
            name,
            state: RwLock::new(Arc::new(state)),
            generation: AtomicU64::new(1),
            in_flight: AtomicU64::new(0),
            metrics: TenantMetrics::default(),
        }
    }

    pub(crate) fn current(&self) -> Arc<ServingState> {
        Arc::clone(&self.state.read().expect("tenant state lock poisoned"))
    }
}

/// RAII decrement of a tenant's in-flight gauge: the count drops on every
/// exit path, including a handler panic (the unwind runs this drop before
/// the worker's `catch_unwind` sees it).
struct InFlightGuard<'a>(&'a Tenant);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Admit one routing request against `tenant`, or answer `503` +
/// `Retry-After` when its quota is exhausted.
fn admit<'a>(shared: &Shared, tenant: &'a Tenant) -> Result<InFlightGuard<'a>, Response> {
    let quota = shared.config.tenant_quota;
    let previous = tenant.in_flight.fetch_add(1, Ordering::SeqCst);
    if quota > 0 && previous as usize >= quota {
        tenant.in_flight.fetch_sub(1, Ordering::SeqCst);
        tenant
            .metrics
            .quota_rejected_total
            .fetch_add(1, Ordering::Relaxed);
        shared
            .metrics
            .rejected_total
            .fetch_add(1, Ordering::Relaxed);
        return Err(
            Response::error(503, &format!("tenant `{}` quota exhausted", tenant.name))
                .with_header("Retry-After", retry_after_value(&shared.config)),
        );
    }
    Ok(InFlightGuard(tenant))
}

/// State shared between the I/O side (reactor or accept loop) and the
/// workers.
pub(crate) struct Shared {
    /// Hosted tenants, ascending by name (binary-searchable).
    pub(crate) tenants: Vec<Arc<Tenant>>,
    /// Index of the tenant bare paths (`/route`, …) alias: the tenant
    /// named `default` when present, else the first.
    pub(crate) default_tenant: usize,
    pub(crate) metrics: Metrics,
    /// Legacy threaded mode: admitted connections awaiting a worker.
    queue: BoundedQueue<Job>,
    /// Reactor mode: parsed requests awaiting execution.
    pub(crate) tasks: BoundedQueue<Task>,
    /// Reactor mode: finished responses awaiting the reactor.
    pub(crate) completions: CompletionQueue<Completion>,
    /// Reactor mode: the doorbell workers ring after posting a
    /// completion.
    pub(crate) wakeup: Wakeup,
    pub(crate) stop: AtomicBool,
    pub(crate) config: ServerConfig,
    pub(crate) limits: Limits,
    pub(crate) addr: SocketAddr,
    /// The federated proxy tier; `Some` iff this daemon was bound with
    /// [`Server::bind_proxy`] (in which case `tenants` is empty and
    /// every request is dispatched by [`proxy::dispatch`]).
    pub(crate) proxy: Option<proxy::ProxyTier>,
}

impl Shared {
    /// The default tenant (what the bare, pre-multi-tenant paths serve).
    pub(crate) fn default_tenant(&self) -> &Tenant {
        &self.tenants[self.default_tenant]
    }

    /// Look up a tenant by name.
    pub(crate) fn tenant(&self, name: &str) -> Option<&Arc<Tenant>> {
        self.tenants
            .binary_search_by(|t| t.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.tenants[i])
    }
}

/// The bound-but-not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the listener and freeze the initial serving state as the
    /// single tenant `default` (served on the bare paths and on
    /// `/t/default/...` alike).
    pub fn bind(config: ServerConfig, state: ServingState) -> io::Result<Server> {
        Server::bind_tenants(config, vec![("default".to_string(), state)])
    }

    /// Bind the listener hosting one named tenant per entry. Bare paths
    /// (`/route`, `/route_batch`, `/admin/reload`) alias the tenant named
    /// `default` when present, else the first tenant in name order;
    /// every tenant is addressable at `/t/<name>/...`.
    pub fn bind_tenants(
        config: ServerConfig,
        states: Vec<(String, ServingState)>,
    ) -> io::Result<Server> {
        if states.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "at least one tenant is required",
            ));
        }
        Server::bind_with(config, states, None)
    }

    /// Bind the federated proxy tier: no local catalog, every routing
    /// request scatter-gathered over `config.proxy`'s backends
    /// ([`proxy`]). The health checker starts with [`run`](Self::run).
    pub fn bind_proxy(config: ServerConfig) -> io::Result<Server> {
        let invalid = |detail: &str| io::Error::new(io::ErrorKind::InvalidInput, detail);
        let proxy_config = config
            .proxy
            .clone()
            .ok_or_else(|| invalid("bind_proxy requires `config.proxy`"))?;
        if proxy_config.backends.is_empty() {
            return Err(invalid("proxy mode requires at least one backend"));
        }
        Server::bind_with(
            config,
            Vec::new(),
            Some(proxy::ProxyTier::new(proxy_config)),
        )
    }

    fn bind_with(
        config: ServerConfig,
        states: Vec<(String, ServingState)>,
        proxy: Option<proxy::ProxyTier>,
    ) -> io::Result<Server> {
        let invalid = |detail: String| io::Error::new(io::ErrorKind::InvalidInput, detail);
        let mut tenants: Vec<Arc<Tenant>> = states
            .into_iter()
            .map(|(name, state)| {
                store::manifest::validate_tenant_name(&name).map_err(invalid)?;
                Ok(Arc::new(Tenant::new(name, state)))
            })
            .collect::<io::Result<_>>()?;
        tenants.sort_by(|a, b| a.name.cmp(&b.name));
        if let Some(w) = tenants.windows(2).find(|w| w[0].name == w[1].name) {
            return Err(invalid(format!("duplicate tenant `{}`", w[0].name)));
        }
        let default_tenant = tenants
            .iter()
            .position(|t| t.name == "default")
            .unwrap_or(0);

        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let queue = BoundedQueue::new(config.queue_capacity);
        let tasks = BoundedQueue::new(config.queue_capacity);
        let shared = Arc::new(Shared {
            tenants,
            default_tenant,
            metrics: Metrics::new(),
            queue,
            tasks,
            completions: CompletionQueue::new(),
            wakeup: Wakeup::new()?,
            stop: AtomicBool::new(false),
            config,
            limits: Limits::default(),
            addr,
            proxy,
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Run the daemon on the calling thread until `/admin/shutdown`.
    /// Spawns the worker pool (and, in proxy mode, the backend health
    /// checker); joins them before returning, so when `run` returns every
    /// admitted request has been answered.
    pub fn run(self) -> io::Result<()> {
        let shared = Arc::clone(&self.shared);
        let health = shared.proxy.as_ref().map(|_| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || proxy::health_loop(&shared))
        });
        // The background refresher only makes sense over local catalogs
        // (a proxy holds no tenants to refresh).
        let refresher = match shared.config.refresh_interval {
            Some(interval) if shared.proxy.is_none() => {
                let shared = Arc::clone(&shared);
                Some(std::thread::spawn(move || refresh_loop(&shared, interval)))
            }
            _ => None,
        };
        let result = match self.shared.config.mode {
            ServeMode::Reactor => self.run_reactor(),
            ServeMode::Threaded => self.run_threaded(),
        };
        // `stop` is already set on the shutdown path; set it on error
        // exits too so no helper thread outlives the listener.
        shared.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = health {
            let _ = handle.join();
        }
        if let Some(handle) = refresher {
            let _ = handle.join();
        }
        result
    }

    /// Reactor mode: connection I/O on this thread, execution on the
    /// worker pool, completions routed back through the wakeup pipe.
    fn run_reactor(self) -> io::Result<()> {
        let workers: Vec<_> = (0..self.shared.config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&self.shared);
                // Belt and braces as in threaded mode: `execute_loop`
                // catches panics per task, but if one ever escapes the
                // plumbing, count it and re-enter — the pool never
                // shrinks.
                std::thread::spawn(move || loop {
                    match std::panic::catch_unwind(AssertUnwindSafe(|| execute_loop(&shared))) {
                        Ok(()) => break,
                        Err(_) => {
                            shared
                                .metrics
                                .worker_panics_total
                                .fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();

        let result = reactor::run(self.listener, &self.shared);

        // The reactor only returns once every connection is closed; any
        // queued task belongs to a connection it already dropped, so
        // closing the queue and joining loses no answered request.
        self.shared.tasks.close();
        self.shared.queue.close();
        for worker in workers {
            let _ = worker.join();
        }
        result
    }

    /// Legacy threaded mode: the accept loop on this thread, whole
    /// connections popped and served by the worker pool.
    fn run_threaded(self) -> io::Result<()> {
        let workers: Vec<_> = (0..self.shared.config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&self.shared);
                // Belt and braces: `worker_loop` already catches panics
                // per connection, but if one ever escapes (queue or
                // metrics plumbing), count it and re-enter the loop — the
                // pool never shrinks.
                std::thread::spawn(move || loop {
                    match std::panic::catch_unwind(AssertUnwindSafe(|| worker_loop(&shared))) {
                        Ok(()) => break,
                        Err(_) => {
                            shared
                                .metrics
                                .worker_panics_total
                                .fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();

        for accepted in self.listener.incoming() {
            if self.shared.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match accepted {
                Ok(stream) => stream,
                Err(_) => continue,
            };
            // Nagle + the peer's delayed ACK would add ~40ms to every
            // response on a kept-alive connection (the body segment sits
            // behind the header segment waiting for an ACK that the
            // client delays). Closing the socket flushed it before;
            // persistent connections need the explicit opt-out.
            let _ = stream.set_nodelay(true);
            let job = Job {
                stream,
                deadline: Instant::now() + self.shared.config.deadline,
            };
            // The gauge is one atomic incremented here and decremented at
            // pop: publishing `try_push`'s depth (or re-reading `len()`
            // after pop) lets concurrent updates land out of order and
            // leave the gauge stale. Incrementing *before* the push and
            // undoing on rejection means a pop can never decrement ahead
            // of its push's increment.
            self.shared
                .metrics
                .queue_depth
                .fetch_add(1, Ordering::Relaxed);
            if let Err(job) = self.shared.queue.try_push(job) {
                self.shared
                    .metrics
                    .queue_depth
                    .fetch_sub(1, Ordering::Relaxed);
                // Admission control: reject at the door, before reading a
                // single request byte. The write is bounded so a client
                // that stalls its receive window cannot block `accept()`
                // for everyone else.
                self.shared
                    .metrics
                    .rejected_total
                    .fetch_add(1, Ordering::Relaxed);
                self.shared.metrics.record("admission", 503);
                let mut stream = job.stream;
                let _ = stream.set_write_timeout(Some(REJECT_WRITE_TIMEOUT));
                let response = Response::error(503, "queue full")
                    .with_header("Retry-After", retry_after_value(&self.shared.config));
                let _ = write_response(&mut stream, &response, true);
            }
        }

        self.shared.queue.close();
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// Close a connection whose request was **not** fully read without
/// destroying the response we just wrote: dropping a socket with unread
/// bytes in its receive buffer makes the kernel send `RST`, and an `RST`
/// discards any response data the client has not consumed yet — the
/// client sees `ECONNRESET` instead of its `504`/`408`. So: shut down the
/// write side (the `FIN` delivers the response), then drain what the
/// client keeps sending, bounded in both time and bytes so a hostile
/// sender cannot pin the worker here.
fn lingering_close(stream: TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut drain = DeadlineStream {
        stream,
        deadline: Instant::now() + LINGER_DRAIN,
    };
    let mut scratch = [0u8; 4096];
    let mut drained = 0usize;
    loop {
        match drain.read(&mut scratch) {
            Ok(0) | Err(_) => return,
            Ok(n) => {
                drained += n;
                if drained >= LINGER_DRAIN_MAX {
                    return;
                }
            }
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        shared.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
        shared
            .metrics
            .open_connections
            .fetch_add(1, Ordering::Relaxed);
        // A panic anywhere in the connection (handler bugs, injected via
        // `X-Debug-Panic` in tests) drops that connection only: it is
        // counted, the socket closes by drop, and this worker moves on to
        // the next job.
        if std::panic::catch_unwind(AssertUnwindSafe(|| serve_connection(shared, job))).is_err() {
            shared
                .metrics
                .worker_panics_total
                .fetch_add(1, Ordering::Relaxed);
        }
        shared
            .metrics
            .open_connections
            .fetch_sub(1, Ordering::Relaxed);
    }
}

/// Reactor-mode worker loop: execute parsed requests, post serialized
/// responses back, ring the doorbell. A panic in the handler is caught
/// per-task; the connection gets an abort completion (dropped without a
/// response) and the worker lives on.
fn execute_loop(shared: &Shared) {
    while let Some(task) = shared.tasks.pop() {
        shared.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
        let token = task.token;
        let completion =
            match std::panic::catch_unwind(AssertUnwindSafe(|| execute_task(shared, &task))) {
                Ok(completion) => completion,
                Err(_) => {
                    shared
                        .metrics
                        .worker_panics_total
                        .fetch_add(1, Ordering::Relaxed);
                    Completion {
                        token,
                        bytes: None,
                        close: true,
                    }
                }
            };
        shared.completions.push(completion);
        shared.wakeup.notify();
    }
}

/// Execute one parsed request: debug hooks, dispatch, metrics, response
/// serialization, and the keep-alive-vs-close decision — everything the
/// threaded path does between `read_request` and `write_response`, minus
/// the socket.
fn execute_task(shared: &Shared, task: &Task) -> Completion {
    let request = &task.request;
    if shared.config.debug_sleep {
        if request.header("x-debug-panic").is_some() {
            panic!("panic injected by X-Debug-Panic");
        }
        if let Some(ms) = request
            .header("x-debug-sleep-ms")
            .and_then(|v| v.parse::<u64>().ok())
        {
            std::thread::sleep(Duration::from_millis(ms.min(60_000)));
        }
    }

    let started = Instant::now();
    let (endpoint, response) = dispatch(shared, request, task.deadline);
    let elapsed = started.elapsed().as_nanos() as u64;
    match endpoint {
        "route" => shared.metrics.route_latency.observe(elapsed),
        "route_batch" => shared.metrics.batch_latency.observe(elapsed),
        _ => {}
    }
    shared.metrics.record(endpoint, response.status);

    let shutting_down = endpoint == "shutdown" && response.status == 200;
    if shutting_down {
        // The wakeup rung for this completion also pops the reactor out
        // of its wait to observe the flag.
        shared.stop.store(true, Ordering::SeqCst);
    }
    let close = task.force_close
        || !request.wants_keep_alive()
        || shutting_down
        || shared.stop.load(Ordering::SeqCst);
    let mut bytes = Vec::new();
    write_response(&mut bytes, &response, close).expect("serializing into a Vec cannot fail");
    Completion {
        token: task.token,
        bytes: Some(bytes),
        close,
    }
}

/// Serve one connection: the HTTP/1.1 keep-alive loop.
///
/// State machine per connection: `idle-wait → read → dispatch → write`,
/// repeated until the client asks to close (`Connection: close`, or
/// HTTP/1.0 without opt-in), the per-connection request cap is reached,
/// the idle wait times out, the daemon is draining for shutdown, or any
/// read/write fails its deadline. The final response always carries
/// `Connection: close`; all I/O goes through [`DeadlineStream`], so every
/// exit path frees the worker within one request deadline (plus the
/// bounded error-write grace).
fn serve_connection(shared: &Shared, job: Job) {
    let Job { stream, deadline } = job;
    shared
        .metrics
        .connections_total
        .fetch_add(1, Ordering::Relaxed);

    let reader_stream = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut reader = BufReader::new(DeadlineStream {
        stream: reader_stream,
        deadline,
    });
    let mut writer = DeadlineStream { stream, deadline };
    let max_requests = shared.config.keep_alive_requests.max(1);
    let mut deadline = deadline;
    let mut served = 0usize;

    loop {
        if served == 0 {
            // The first deadline was stamped at accept: a connection that
            // waited out its whole deadline in the queue is answered 504
            // without reading the request.
            if Instant::now() >= deadline {
                shared.metrics.timeout_total.fetch_add(1, Ordering::Relaxed);
                shared.metrics.record("queue", 504);
                writer.deadline = Instant::now() + ERROR_WRITE_GRACE;
                let _ = write_response(
                    &mut writer,
                    &Response::error(504, "deadline exceeded"),
                    true,
                );
                // The request was never read; close gently or the RST
                // eats the 504.
                lingering_close(writer.stream);
                return;
            }
        } else {
            // Between requests on a kept-alive connection: stop reusing
            // when draining for shutdown, otherwise wait at most
            // `idle_timeout` for the next request's first byte, then
            // stamp a fresh deadline for it. An idle timeout or client
            // close here ends the connection silently — there is no
            // request to answer.
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            reader.get_mut().deadline = Instant::now() + shared.config.idle_timeout;
            match reader.fill_buf() {
                Ok([]) | Err(_) => return,
                Ok(_) => {}
            }
            deadline = Instant::now() + shared.config.deadline;
            writer.deadline = deadline;
        }
        reader.get_mut().deadline = deadline;

        let request = match read_request(&mut reader, &shared.limits) {
            Ok(request) => request,
            Err(HttpError::Closed) => return,
            Err(err) => {
                let Some(status) = err.status() else { return };
                if status == 408 {
                    shared.metrics.timeout_total.fetch_add(1, Ordering::Relaxed);
                }
                shared.metrics.record("parse", status);
                // After a read timeout the write deadline has passed too;
                // grant the bounded grace so the error body can flush.
                writer.deadline = writer.deadline.max(Instant::now() + ERROR_WRITE_GRACE);
                let _ = write_response(&mut writer, &Response::error(status, &err.detail()), true);
                // The request was only partially read (that is why it
                // failed); close gently or the RST eats the error body.
                lingering_close(writer.stream);
                return;
            }
        };
        served += 1;

        if shared.config.debug_sleep {
            if request.header("x-debug-panic").is_some() {
                panic!("panic injected by X-Debug-Panic");
            }
            if let Some(ms) = request
                .header("x-debug-sleep-ms")
                .and_then(|v| v.parse::<u64>().ok())
            {
                std::thread::sleep(Duration::from_millis(ms.min(60_000)));
            }
        }

        let started = Instant::now();
        let (endpoint, response) = dispatch(shared, &request, deadline);
        let elapsed = started.elapsed().as_nanos() as u64;
        match endpoint {
            "route" => shared.metrics.route_latency.observe(elapsed),
            "route_batch" => shared.metrics.batch_latency.observe(elapsed),
            _ => {}
        }
        shared.metrics.record(endpoint, response.status);

        let shutting_down = endpoint == "shutdown" && response.status == 200;
        let close = !request.wants_keep_alive()
            || served >= max_requests
            || shutting_down
            || shared.stop.load(Ordering::SeqCst);
        // The dispatch may have consumed the whole deadline (a handler
        // 504); keep at least the grace so the response still flushes.
        writer.deadline = writer.deadline.max(Instant::now() + ERROR_WRITE_GRACE);
        let write_ok = write_response(&mut writer, &response, close).is_ok();

        if shutting_down {
            shared.stop.store(true, Ordering::SeqCst);
            // The accept loop is blocked in `accept`; a throwaway
            // connection wakes it so it can observe the stop flag.
            let _ = TcpStream::connect(shared.addr);
        }
        if close || !write_ok {
            return;
        }
    }
}

/// The `/admin/shutdown` success body, shared between catalog and proxy
/// dispatch (`execute_task` keys the stop flag off endpoint + status).
pub(crate) fn shutdown_response() -> Response {
    Response::json(
        200,
        Json::obj(vec![(
            "status".to_string(),
            Json::Str("shutting down".to_string()),
        )])
        .render(),
    )
}

fn dispatch(shared: &Shared, request: &Request, deadline: Instant) -> (&'static str, Response) {
    // Proxy mode replaces the catalog API wholesale — it must run before
    // any tenant lookup, because a proxy hosts no tenants at all.
    if shared.proxy.is_some() {
        return proxy::dispatch(shared, request, deadline);
    }
    if let Some(rest) = request.path().strip_prefix("/t/") {
        return dispatch_tenant(shared, request, deadline, rest);
    }
    // Bare paths alias the default tenant — the single-catalog API is a
    // special case of the multi-tenant one, not a separate code path.
    let tenant = shared.default_tenant();
    match (request.method.as_str(), request.path()) {
        ("GET", "/healthz") => ("healthz", handle_healthz(shared)),
        ("GET", "/readyz") => ("readyz", handle_readyz(shared)),
        ("GET", "/metrics") => ("metrics", handle_metrics(shared)),
        ("POST", "/route") => (
            "route",
            tenant_timed(tenant, "route", || {
                handle_route(shared, tenant, request, deadline)
            }),
        ),
        ("POST", "/route_batch") => (
            "route_batch",
            tenant_timed(tenant, "route_batch", || {
                handle_route_batch(shared, tenant, request, deadline)
            }),
        ),
        ("POST", "/admin/reload") => ("reload", handle_reload(shared, tenant, request)),
        ("POST", "/admin/shutdown") => ("shutdown", shutdown_response()),
        (
            _,
            "/healthz" | "/readyz" | "/metrics" | "/route" | "/route_batch" | "/admin/reload"
            | "/admin/shutdown",
        ) => (
            "other",
            Response::error(405, "method not allowed").with_header("Allow", "GET, POST".into()),
        ),
        _ => ("other", Response::error(404, "no such endpoint")),
    }
}

/// Route `/t/<tenant>/<endpoint>` to the named tenant. Only the
/// per-catalog endpoints exist under `/t/` — process-wide ones
/// (`/healthz`, `/metrics`, `/admin/shutdown`) stay at the root.
fn dispatch_tenant(
    shared: &Shared,
    request: &Request,
    deadline: Instant,
    rest: &str,
) -> (&'static str, Response) {
    let Some((name, _)) = rest.split_once('/') else {
        return ("other", Response::error(404, "no such endpoint"));
    };
    let sub = &rest[name.len()..];
    let Some(tenant) = shared.tenant(name) else {
        return ("other", Response::error(404, "unknown tenant"));
    };
    match (request.method.as_str(), sub) {
        ("POST", "/route") => (
            "route",
            tenant_timed(tenant, "route", || {
                handle_route(shared, tenant, request, deadline)
            }),
        ),
        ("POST", "/route_batch") => (
            "route_batch",
            tenant_timed(tenant, "route_batch", || {
                handle_route_batch(shared, tenant, request, deadline)
            }),
        ),
        ("POST", "/admin/reload") => ("reload", handle_reload(shared, tenant, request)),
        (_, "/route" | "/route_batch" | "/admin/reload") => (
            "other",
            Response::error(405, "method not allowed").with_header("Allow", "POST".into()),
        ),
        _ => ("other", Response::error(404, "no such endpoint")),
    }
}

/// Run a routing handler, recording its latency and status in the
/// tenant's label-isolated metrics (global metrics are recorded by the
/// caller as before).
fn tenant_timed(
    tenant: &Tenant,
    endpoint: &'static str,
    handler: impl FnOnce() -> Response,
) -> Response {
    let started = Instant::now();
    let response = handler();
    let elapsed = started.elapsed().as_nanos() as u64;
    match endpoint {
        "route" => tenant.metrics.route_latency.observe(elapsed),
        "route_batch" => tenant.metrics.batch_latency.observe(elapsed),
        _ => {}
    }
    tenant.metrics.record(endpoint, response.status);
    response
}

fn handle_healthz(shared: &Shared) -> Response {
    let tenant = shared.default_tenant();
    let state = tenant.current();
    Response::json(
        200,
        Json::obj(vec![
            ("status".to_string(), Json::Str("ok".to_string())),
            (
                "generation".to_string(),
                Json::Num(tenant.generation.load(Ordering::SeqCst) as f64),
            ),
            ("databases".to_string(), Json::Num(state.databases() as f64)),
            ("terms".to_string(), Json::Num(state.terms() as f64)),
            (
                "tenants".to_string(),
                Json::Num(shared.tenants.len() as f64),
            ),
            ("shards".to_string(), Json::Num(state.shard_count() as f64)),
        ])
        .render(),
    )
}

/// Readiness, as distinct from liveness (`/healthz`): are the catalogs
/// loaded and serving? In catalog mode every tenant's first generation is
/// frozen *before* the listener binds, so by the time a probe can reach
/// this endpoint readiness is unconditional — the answer is always 200,
/// and the value is in the body: per-tenant generation plus the snapshot
/// content checksum, which lets an operator (or the proxy's bit-identity
/// check) confirm that two daemons serve the same catalog bytes. The
/// proxy tier overrides this with a genuinely asynchronous answer
/// ([`proxy`]): 503 until its first full healthy backend sweep.
fn handle_readyz(shared: &Shared) -> Response {
    let tenants = Json::Arr(
        shared
            .tenants
            .iter()
            .map(|tenant| {
                let state = tenant.current();
                Json::obj(vec![
                    ("tenant".to_string(), Json::Str(tenant.name.clone())),
                    (
                        "generation".to_string(),
                        Json::Num(tenant.generation.load(Ordering::SeqCst) as f64),
                    ),
                    (
                        "catalog_generation".to_string(),
                        Json::Num(state.catalog_generation() as f64),
                    ),
                    ("databases".to_string(), Json::Num(state.databases() as f64)),
                    (
                        "snapshot_checksum".to_string(),
                        Json::Str(format!("{:016x}", state.checksum())),
                    ),
                ])
            })
            .collect(),
    );
    Response::json(
        200,
        Json::obj(vec![
            ("ready".to_string(), Json::Bool(true)),
            ("tenants".to_string(), tenants),
        ])
        .render(),
    )
}

fn handle_metrics(shared: &Shared) -> Response {
    let tenant = shared.default_tenant();
    let state = tenant.current();
    let mut body = shared.metrics.render(
        state.cache_stats(),
        tenant.generation.load(Ordering::SeqCst),
        state.databases(),
        state.load_seconds(),
        state.snapshot_bytes(),
    );
    // Per-tenant families after the process-wide ones; tenant names are
    // user input (file stems), so their label values are escaped.
    body.push_str(metrics::TENANT_TYPE_HEADERS);
    for tenant in &shared.tenants {
        let state = tenant.current();
        body.push_str(&metrics::render_tenant(
            &tenant.name,
            &tenant.metrics,
            tenant.generation.load(Ordering::SeqCst),
            state.databases(),
            tenant.in_flight.load(Ordering::SeqCst),
            state.cache_stats(),
        ));
    }
    Response::text(200, body)
}

/// Common fields of `/route` and `/route_batch` requests (shared with
/// the proxy tier, which validates them before scattering).
pub(crate) struct RouteParams {
    pub(crate) algo: Algo,
    pub(crate) mode: ShrinkageMode,
    pub(crate) seed: u64,
    pub(crate) k: usize,
}

pub(crate) fn parse_route_params(body: &Json) -> Result<RouteParams, Response> {
    let algo = match body.get("algo").map(|v| (v, v.as_str())) {
        None => Algo::default(),
        Some((_, Some(name))) => Algo::parse(name).map_err(|e| Response::error(400, &e))?,
        Some((_, None)) => return Err(Response::error(400, "`algo` must be a string")),
    };
    let mode = match body.get("shrinkage").map(|v| (v, v.as_str())) {
        None => ShrinkageMode::Adaptive,
        Some((_, Some(name))) => parse_shrinkage(name).map_err(|e| Response::error(400, &e))?,
        Some((_, None)) => return Err(Response::error(400, "`shrinkage` must be a string")),
    };
    let seed = match body.get("seed") {
        None => 42,
        Some(v) => v
            .as_u64()
            .ok_or_else(|| Response::error(400, "`seed` must be a non-negative integer"))?,
    };
    // `k` drives the engines' pruned top-k path, not just response
    // truncation; `k: 0` is rejected rather than silently coerced into
    // "no results" (almost always a client bug).
    let k = match body.get("k") {
        None => usize::MAX,
        Some(v) => match v.as_u64() {
            Some(k) if k >= 1 => k as usize,
            _ => return Err(Response::error(400, "`k` must be a positive integer")),
        },
    };
    Ok(RouteParams {
        algo,
        mode,
        seed,
        k,
    })
}

/// A query is either a string (split on whitespace) or an array of words.
fn parse_query_words(value: &Json) -> Result<Vec<String>, String> {
    match value {
        Json::Str(line) => Ok(line.split_whitespace().map(str::to_string).collect()),
        Json::Arr(items) => items
            .iter()
            .map(|w| {
                w.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "query words must be strings".to_string())
            })
            .collect(),
        _ => Err("`query` must be a string or an array of strings".to_string()),
    }
}

pub(crate) fn parse_body(request: &Request) -> Result<Json, Response> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| Response::error(400, "body is not UTF-8"))?;
    Json::parse(text).map_err(|e| Response::error(400, &format!("invalid JSON: {e}")))
}

fn ranking_json(state: &ServingState, outcome: &selection::AdaptiveOutcome, k: usize) -> Json {
    Json::Arr(
        outcome
            .ranking
            .iter()
            .take(k)
            .enumerate()
            .map(|(rank, r)| {
                Json::obj(vec![
                    ("rank".to_string(), Json::Num((rank + 1) as f64)),
                    (
                        "database".to_string(),
                        Json::Str(state.name(r.index).to_string()),
                    ),
                    ("category".to_string(), Json::Str(state.category(r.index))),
                    ("score".to_string(), Json::Num(r.score)),
                    (
                        "shrinkage_used".to_string(),
                        Json::Bool(outcome.used_shrinkage[r.index]),
                    ),
                ])
            })
            .collect(),
    )
}

/// Render one shard's partial ranking for a proxy (`"shard": i`
/// requests): entries carry the **global** catalog `index` instead of a
/// rank, so the proxy can k-way-merge partial rankings from different
/// backends and re-derive ranks. Truncation to `k` is per shard — the
/// global top-k of the merged ranking is contained in the per-shard
/// top-k lists.
fn partial_ranking_json(
    state: &ServingState,
    outcome: &selection::AdaptiveOutcome,
    k: usize,
) -> Json {
    Json::Arr(
        outcome
            .ranking
            .iter()
            .take(k)
            .map(|r| {
                Json::obj(vec![
                    ("index".to_string(), Json::Num(r.index as f64)),
                    (
                        "database".to_string(),
                        Json::Str(state.name(r.index).to_string()),
                    ),
                    ("category".to_string(), Json::Str(state.category(r.index))),
                    ("score".to_string(), Json::Num(r.score)),
                    (
                        "shrinkage_used".to_string(),
                        Json::Bool(outcome.used_shrinkage[r.index]),
                    ),
                ])
            })
            .collect(),
    )
}

/// Parse the optional `shard` field (proxy-to-backend requests only).
fn parse_shard(body: &Json) -> Result<Option<usize>, Response> {
    match body.get("shard") {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(|s| Some(s as usize))
            .ok_or_else(|| Response::error(400, "`shard` must be a non-negative integer")),
    }
}

/// Validate a requested shard id against the serving state. A
/// single-shard state accepts shard 0 (the whole catalog is shard 0 of
/// 1), so a proxy with one backend works against an unsharded daemon.
fn check_shard(state: &ServingState, shard: usize) -> Result<(), Response> {
    let shard_count = state.shard_count();
    if shard >= shard_count {
        return Err(Response::error(
            400,
            &format!("`shard` {shard} out of range (catalog has {shard_count} shards)"),
        ));
    }
    Ok(())
}

fn handle_route(
    shared: &Shared,
    tenant: &Tenant,
    request: &Request,
    deadline: Instant,
) -> Response {
    let _guard = match admit(shared, tenant) {
        Ok(guard) => guard,
        Err(response) => return response,
    };
    // Post-admission sleep hook (tests only): unlike `X-Debug-Sleep-Ms`,
    // which runs before dispatch, this holds the tenant's quota slot.
    if shared.config.debug_sleep {
        if let Some(ms) = request
            .header("x-debug-route-sleep-ms")
            .and_then(|v| v.parse::<u64>().ok())
        {
            std::thread::sleep(Duration::from_millis(ms.min(60_000)));
        }
    }
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(response) => return response,
    };
    let params = match parse_route_params(&body) {
        Ok(params) => params,
        Err(response) => return response,
    };
    let Some(query_value) = body.get("query") else {
        return Response::error(400, "missing `query`");
    };
    let words = match parse_query_words(query_value) {
        Ok(words) => words,
        Err(e) => return Response::error(400, &e),
    };
    // `index` lets a client reproduce query i of a CLI batch; the CLI's
    // single-query case is index 0.
    let index = match body.get("index") {
        None => 0,
        Some(v) => match v.as_u64() {
            Some(i) => i as usize,
            None => return Response::error(400, "`index` must be a non-negative integer"),
        },
    };
    let shard = match parse_shard(&body) {
        Ok(shard) => shard,
        Err(response) => return response,
    };

    let state = tenant.current();
    let (query, unknown) = state.analyze(&words);
    if Instant::now() >= deadline {
        shared.metrics.timeout_total.fetch_add(1, Ordering::Relaxed);
        return Response::error(504, "deadline exceeded");
    }
    let mut rng = db_rng(params.seed, index);

    // Shard-partial serving (proxy-to-backend): route only the requested
    // shard, but with the choose phase and scoring context computed over
    // the full catalog — merging every shard's partial ranking
    // reconstructs the monolithic ranking bit-for-bit.
    if let Some(s) = shard {
        if let Err(response) = check_shard(&state, s) {
            return response;
        }
        let outcome = match state.sharded_engine(params.algo, params.mode) {
            Some(sharded) => sharded.route_shard_topk(
                &query,
                params.k,
                &mut rng,
                s,
                &mut broker::RouteScratch::default(),
            ),
            // shards == 1: shard 0 *is* the whole catalog.
            None => state
                .engine(params.algo, params.mode)
                .route_topk(&query, params.k, &mut rng),
        };
        return Response::json(
            200,
            Json::obj(vec![
                (
                    "generation".to_string(),
                    Json::Num(tenant.generation.load(Ordering::SeqCst) as f64),
                ),
                ("shards".to_string(), Json::Num(state.shard_count() as f64)),
                ("shard".to_string(), Json::Num(s as f64)),
                (
                    "unknown".to_string(),
                    Json::Arr(unknown.into_iter().map(Json::Str).collect()),
                ),
                (
                    "ranking".to_string(),
                    partial_ranking_json(&state, &outcome, params.k),
                ),
            ])
            .render(),
        );
    }

    // Prefer the scatter-gather engine when this state is sharded: the
    // ranking is bit-identical, only the scoring parallelism differs.
    // `k` reaches the engines' pruned top-k path here — truncation is no
    // longer a serialization detail.
    let outcome = match state.sharded_engine(params.algo, params.mode) {
        Some(sharded) => sharded.route_topk(&query, params.k, &mut rng),
        None => state
            .engine(params.algo, params.mode)
            .route_topk(&query, params.k, &mut rng),
    };

    Response::json(
        200,
        Json::obj(vec![
            (
                "generation".to_string(),
                Json::Num(tenant.generation.load(Ordering::SeqCst) as f64),
            ),
            (
                "unknown".to_string(),
                Json::Arr(unknown.into_iter().map(Json::Str).collect()),
            ),
            (
                "ranking".to_string(),
                ranking_json(&state, &outcome, params.k),
            ),
        ])
        .render(),
    )
}

fn handle_route_batch(
    shared: &Shared,
    tenant: &Tenant,
    request: &Request,
    deadline: Instant,
) -> Response {
    let _guard = match admit(shared, tenant) {
        Ok(guard) => guard,
        Err(response) => return response,
    };
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(response) => return response,
    };
    let params = match parse_route_params(&body) {
        Ok(params) => params,
        Err(response) => return response,
    };
    let Some(queries_value) = body.get("queries").and_then(Json::as_array) else {
        return Response::error(400, "missing `queries` array");
    };
    if queries_value.len() > MAX_BATCH {
        return Response::error(413, &format!("batch exceeds {MAX_BATCH} queries"));
    }
    let threads = match body.get("threads") {
        None => shared.config.workers.max(1),
        Some(v) => match v.as_u64() {
            Some(t) if t >= 1 => (t as usize).min(64),
            _ => return Response::error(400, "`threads` must be a positive integer"),
        },
    };
    let shard = match parse_shard(&body) {
        Ok(shard) => shard,
        Err(response) => return response,
    };

    let state = tenant.current();
    if let Some(s) = shard {
        if let Err(response) = check_shard(&state, s) {
            return response;
        }
    }
    let mut analyzed = Vec::with_capacity(queries_value.len());
    for value in queries_value {
        let words = match parse_query_words(value) {
            Ok(words) => words,
            Err(e) => return Response::error(400, &e),
        };
        analyzed.push(state.analyze(&words));
    }
    let queries: Vec<Vec<textindex::TermId>> = analyzed.iter().map(|(q, _)| q.clone()).collect();

    let engine = state.engine(params.algo, params.mode);
    let sharded = state.sharded_engine(params.algo, params.mode);
    // Chunked fan-out, deadline-checked per query: query `i` draws from
    // `db_rng(seed, i)` regardless of chunking, so results match
    // `route_batch` (and the CLI) for every thread count. With a sharded
    // state, shards score sequentially *inside* each query — the batch
    // fan-out already owns the cores.
    let expired = AtomicBool::new(false);
    let outcomes = fan_out_chunks(queries.len(), threads, |qi| {
        if expired.load(Ordering::Relaxed) || Instant::now() >= deadline {
            expired.store(true, Ordering::Relaxed);
            return None;
        }
        let mut rng = db_rng(params.seed, qi);
        Some(match (shard, sharded) {
            // Shard-partial serving for a proxy: same choose phase, only
            // the requested shard scored (to its shard-local top k).
            (Some(s), Some(se)) => se.route_shard_topk(
                &queries[qi],
                params.k,
                &mut rng,
                s,
                &mut broker::RouteScratch::default(),
            ),
            // shards == 1: shard 0 is the whole catalog.
            (Some(_), None) => engine.route_topk(&queries[qi], params.k, &mut rng),
            (None, Some(se)) => se.route_sequential_topk(
                &queries[qi],
                params.k,
                &mut rng,
                &mut broker::RouteScratch::default(),
            ),
            (None, None) => engine.route_topk(&queries[qi], params.k, &mut rng),
        })
    });
    if expired.load(Ordering::Relaxed) {
        shared.metrics.timeout_total.fetch_add(1, Ordering::Relaxed);
        return Response::error(504, "deadline exceeded mid-batch");
    }

    let results = Json::Arr(
        outcomes
            .iter()
            .zip(&analyzed)
            .map(|(outcome, (_, unknown))| {
                let outcome = outcome.as_ref().expect("non-expired batch is complete");
                let ranking = match shard {
                    Some(_) => partial_ranking_json(&state, outcome, params.k),
                    None => ranking_json(&state, outcome, params.k),
                };
                Json::obj(vec![
                    (
                        "unknown".to_string(),
                        Json::Arr(unknown.iter().cloned().map(Json::Str).collect()),
                    ),
                    ("ranking".to_string(), ranking),
                ])
            })
            .collect(),
    );
    let mut fields = vec![(
        "generation".to_string(),
        Json::Num(tenant.generation.load(Ordering::SeqCst) as f64),
    )];
    if let Some(s) = shard {
        fields.push(("shards".to_string(), Json::Num(state.shard_count() as f64)));
        fields.push(("shard".to_string(), Json::Num(s as f64)));
    }
    fields.push(("results".to_string(), results));
    Response::json(200, Json::obj(fields).render())
}

/// Install `next` as `tenant`'s serving state — unless doing so would
/// move the delta-chain generation *backwards*, in which case the current
/// state keeps serving and `Err` carries its chain generation.
///
/// The staleness check, the `Arc` swap, and the serving-generation bump
/// all happen inside one write-lock critical section. Two concurrent
/// installs (overlapping `/admin/reload`s, or a reload racing the
/// background refresher) therefore serialize completely: whichever loses
/// the lock race re-checks against the state the winner installed, so
/// generations observed by readers only ever increase. `force` bypasses
/// the staleness check (re-basing a chain legitimately resets its
/// numbering).
fn install_state(
    tenant: &Tenant,
    next: ServingState,
    force: bool,
) -> Result<u64, (u64, u64)> {
    let mut slot = tenant.state.write().expect("tenant state lock poisoned");
    let serving = slot.catalog_generation();
    if !force && next.catalog_generation() < serving {
        return Err((serving, tenant.generation.load(Ordering::SeqCst)));
    }
    *slot = Arc::new(next);
    Ok(tenant.generation.fetch_add(1, Ordering::SeqCst) + 1)
}

fn handle_reload(shared: &Shared, tenant: &Tenant, request: &Request) -> Response {
    let (path, force) = if request.body.is_empty() {
        (None, false)
    } else {
        let body = match parse_body(request) {
            Ok(body) => body,
            Err(response) => return response,
        };
        let path = match body.get("path") {
            None => None,
            Some(v) => match v.as_str() {
                Some(p) => Some(p.to_string()),
                None => return Response::error(400, "`path` must be a string"),
            },
        };
        let force = match body.get("force") {
            None => false,
            Some(Json::Bool(b)) => *b,
            Some(_) => return Response::error(400, "`force` must be a boolean"),
        };
        (path, force)
    };
    let path = path.unwrap_or_else(|| tenant.current().source().to_string());

    // Build the next generation entirely off to the side; only this
    // tenant's write lock is touched, and only for the Arc swap — routing
    // on every tenant (including this one) never blocks on the load, and
    // a failed load leaves the old generation serving.
    let next =
        match ServingState::load_sharded(&path, shared.config.cache_capacity, shared.config.shards)
        {
            Ok(next) => next,
            Err(e) => {
                // The caller named the snapshot; a missing or corrupt one
                // is their error, not ours (the codec reports corruption
                // as `InvalidData`/`UnexpectedEof`). Either way the old
                // generation keeps serving untouched.
                shared
                    .metrics
                    .catalog_load_failures_total
                    .fetch_add(1, Ordering::Relaxed);
                let status = match e.kind() {
                    io::ErrorKind::NotFound => 404,
                    io::ErrorKind::InvalidData
                    | io::ErrorKind::InvalidInput
                    | io::ErrorKind::UnexpectedEof => 400,
                    _ => 500,
                };
                return Response::error(status, &format!("reload failed: {e}"));
            }
        };
    let databases = next.databases();
    let catalog_generation = next.catalog_generation();
    let generation = match install_state(tenant, next, force) {
        Ok(generation) => generation,
        Err((serving_chain, serving)) => {
            // A newer chain tip was installed while this load ran (or the
            // caller named an older chain on purpose). Refusing the swap
            // keeps generations monotone; the body reports what is
            // actually serving so the caller can re-read and retry.
            return Response::json(
                409,
                Json::obj(vec![
                    (
                        "error".to_string(),
                        Json::Str(format!(
                            "stale catalog: loaded chain generation {catalog_generation} \
                             but generation {serving_chain} is serving"
                        )),
                    ),
                    ("tenant".to_string(), Json::Str(tenant.name.clone())),
                    ("generation".to_string(), Json::Num(serving as f64)),
                    (
                        "catalog_generation".to_string(),
                        Json::Num(serving_chain as f64),
                    ),
                ])
                .render(),
            );
        }
    };
    shared.metrics.reload_total.fetch_add(1, Ordering::Relaxed);
    tenant.metrics.reload_total.fetch_add(1, Ordering::Relaxed);

    Response::json(
        200,
        Json::obj(vec![
            ("tenant".to_string(), Json::Str(tenant.name.clone())),
            ("generation".to_string(), Json::Num(generation as f64)),
            (
                "catalog_generation".to_string(),
                Json::Num(catalog_generation as f64),
            ),
            ("databases".to_string(), Json::Num(databases as f64)),
            ("source".to_string(), Json::Str(path)),
        ])
        .render(),
    )
}

/// The background refresher: every `interval`, poll each tenant whose
/// source is a delta-chain directory; when the chain on disk has grown
/// past the serving generation, load the new tip off to the side and
/// hot-swap it through [`install_state`] — the same guarded, monotone
/// path `/admin/reload` takes, so a refresh swap can never fail an
/// in-flight request or go backwards. A broken chain (mid-write, corrupt
/// delta, replaced base) only increments
/// `dbselectd_catalog_load_failures_total`; the previous generation keeps
/// serving and the next poll retries.
fn refresh_loop(shared: &Shared, interval: Duration) {
    while !shared.stop.load(Ordering::SeqCst) {
        // Sleep in short slices so shutdown is observed promptly even
        // under long intervals.
        let mut slept = Duration::ZERO;
        while slept < interval {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            let slice = (interval - slept).min(Duration::from_millis(25));
            std::thread::sleep(slice);
            slept += slice;
        }
        for tenant in &shared.tenants {
            let current = tenant.current();
            let source = current.source().to_string();
            if !std::path::Path::new(&source).is_dir() {
                continue;
            }
            let tip = match store::delta::chain_tip_generation(std::path::Path::new(&source)) {
                Ok(tip) => tip,
                Err(_) => {
                    shared
                        .metrics
                        .catalog_load_failures_total
                        .fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            };
            if tip <= current.catalog_generation() {
                continue;
            }
            match ServingState::load_sharded(
                &source,
                shared.config.cache_capacity,
                shared.config.shards,
            ) {
                Ok(next) => {
                    // A concurrent admin reload may have installed an even
                    // newer tip; losing that race is not an error.
                    if install_state(tenant, next, false).is_ok() {
                        shared.metrics.reload_total.fetch_add(1, Ordering::Relaxed);
                        tenant.metrics.reload_total.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Err(_) => {
                    shared
                        .metrics
                        .catalog_load_failures_total
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}
