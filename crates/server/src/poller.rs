//! Readiness polling for the reactor: a [`Poller`] trait over a raw
//! `epoll(7)` backend (Linux) and a portable `poll(2)` fallback, plus the
//! [`Wakeup`] pipe workers use to interrupt a blocked wait.
//!
//! The workspace is std-only, so the syscalls are declared directly as
//! `extern "C"` items — the symbols resolve through the same libc that
//! std already links, no crate needed. Only the handful of constants the
//! reactor uses are defined, for the platforms the daemon targets
//! (x86_64/aarch64 Linux for epoll; any POSIX for the fallback).

use std::io;
use std::os::raw::{c_int, c_void};
use std::time::Duration;

/// Raw file descriptor (mirrors `std::os::fd::RawFd` without the unix-only
/// import path).
pub type RawFd = c_int;

/// What the owner of a registration wants to be told about.
///
/// The reactor's connection state machine only ever waits in one
/// direction at a time (reading a request *or* flushing a response), so
/// the interest is single-valued rather than a bit set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interest {
    Read,
    Write,
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    /// Peer hangup or socket error — the owner should attempt its
    /// pending I/O and let the resulting `0`/`Err` drive the close.
    pub hangup: bool,
}

/// A level-triggered readiness poller.
pub trait Poller: Send {
    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()>;
    fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()>;
    fn deregister(&mut self, fd: RawFd) -> io::Result<()>;
    /// Block up to `timeout` (`None` = indefinitely) and fill `events`
    /// with whatever is ready. Returns the number of events.
    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize>;
    /// Backend name, exported for diagnostics.
    fn name(&self) -> &'static str;
}

/// Pick the best backend for this platform: epoll on Linux, `poll(2)`
/// elsewhere. Setting `DBSELECTD_FORCE_POLL=1` forces the fallback so CI
/// can exercise it on Linux too.
pub fn new_poller() -> io::Result<Box<dyn Poller>> {
    #[cfg(target_os = "linux")]
    {
        if std::env::var("DBSELECTD_FORCE_POLL").ok().as_deref() != Some("1") {
            return Ok(Box::new(EpollPoller::new()?));
        }
    }
    Ok(Box::new(PollPoller::new()))
}

/// Clamp a timeout to the millisecond `c_int` the syscalls take, rounding
/// up so a 0.4ms deadline does not spin at 0ms.
fn timeout_ms(timeout: Option<Duration>) -> c_int {
    match timeout {
        None => -1,
        Some(t) => {
            let ms = t.as_millis().min(i32::MAX as u128) as i64;
            let rounded = if t.subsec_nanos() % 1_000_000 != 0 {
                ms + 1
            } else {
                ms
            };
            rounded.min(i32::MAX as i64) as c_int
        }
    }
}

fn last_os_error_is(kind: io::ErrorKind) -> bool {
    io::Error::last_os_error().kind() == kind
}

// ---------------------------------------------------------------------------
// Shared FFI: pipe + fcntl (used by Wakeup on every platform).
// ---------------------------------------------------------------------------

const F_SETFL: c_int = 4;
const F_GETFL: c_int = 3;
const O_NONBLOCK: c_int = 0o4000;

extern "C" {
    fn pipe(fds: *mut c_int) -> c_int;
    fn fcntl(fd: c_int, cmd: c_int, ...) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
}

fn set_nonblocking_fd(fd: RawFd) -> io::Result<()> {
    // SAFETY: plain fcntl on an fd we own; no pointers involved.
    unsafe {
        let flags = fcntl(fd, F_GETFL);
        if flags < 0 {
            return Err(io::Error::last_os_error());
        }
        if fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0 {
            return Err(io::Error::last_os_error());
        }
    }
    Ok(())
}

/// The reactor's doorbell: workers [`notify`](Wakeup::notify) after
/// posting a completion, which makes the read end readable and pops the
/// reactor out of its `wait`. Both ends are nonblocking — a full pipe on
/// notify is fine (the reactor is already guaranteed to wake), and the
/// reactor drains until `EAGAIN`.
#[derive(Debug)]
pub struct Wakeup {
    read_fd: RawFd,
    write_fd: RawFd,
}

// SAFETY: the fds are plain ints; read/write on a pipe are thread-safe.
unsafe impl Sync for Wakeup {}

impl Wakeup {
    pub fn new() -> io::Result<Wakeup> {
        let mut fds = [0 as c_int; 2];
        // SAFETY: fds points at two writable c_ints.
        if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        let wakeup = Wakeup {
            read_fd: fds[0],
            write_fd: fds[1],
        };
        set_nonblocking_fd(wakeup.read_fd)?;
        set_nonblocking_fd(wakeup.write_fd)?;
        Ok(wakeup)
    }

    /// The fd the reactor registers for `Read` interest.
    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// Ring the doorbell. Never blocks; a full pipe already guarantees a
    /// pending wakeup, so `EAGAIN` is success.
    pub fn notify(&self) {
        let byte = 1u8;
        // SAFETY: one byte from a live stack slot into an fd we own.
        let _ = unsafe { write(self.write_fd, (&byte as *const u8).cast(), 1) };
    }

    /// Swallow all pending doorbell bytes.
    pub fn drain(&self) {
        let mut scratch = [0u8; 64];
        loop {
            // SAFETY: scratch is a live writable buffer of the given len.
            let n = unsafe { read(self.read_fd, scratch.as_mut_ptr().cast(), scratch.len()) };
            if n <= 0 {
                return;
            }
        }
    }
}

impl Drop for Wakeup {
    fn drop(&mut self) {
        // SAFETY: closing fds this struct owns, exactly once.
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

// ---------------------------------------------------------------------------
// epoll backend (Linux).
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod epoll {
    use super::*;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// Kernel ABI: packed on x86_64 (the one architecture where the
    /// struct is not naturally aligned), natural layout elsewhere.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub(super) struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout_ms: c_int,
        ) -> c_int;
    }

    pub struct EpollPoller {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    impl EpollPoller {
        pub fn new() -> io::Result<EpollPoller> {
            // SAFETY: no pointers; returns a new fd or -1.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(EpollPoller {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut event = EpollEvent {
                events: match interest {
                    Interest::Read => EPOLLIN | EPOLLRDHUP,
                    Interest::Write => EPOLLOUT,
                },
                data: token,
            };
            // SAFETY: event is a live, properly laid out EpollEvent.
            if unsafe { epoll_ctl(self.epfd, op, fd, &mut event) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }
    }

    impl Poller for EpollPoller {
        fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let mut unused = EpollEvent { events: 0, data: 0 };
            // SAFETY: pre-2.6.9 kernels demand a non-null event for DEL;
            // passing one is harmless everywhere.
            if unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut unused) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            events.clear();
            let n = loop {
                // SAFETY: buf is a live array of EpollEvents of the given
                // capacity; the kernel fills the first n.
                let n = unsafe {
                    epoll_wait(
                        self.epfd,
                        self.buf.as_mut_ptr(),
                        self.buf.len() as c_int,
                        timeout_ms(timeout),
                    )
                };
                if n >= 0 {
                    break n as usize;
                }
                if !last_os_error_is(io::ErrorKind::Interrupted) {
                    return Err(io::Error::last_os_error());
                }
            };
            for raw in &self.buf[..n] {
                let bits = raw.events;
                events.push(Event {
                    token: raw.data,
                    readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(n)
        }

        fn name(&self) -> &'static str {
            "epoll"
        }
    }

    impl Drop for EpollPoller {
        fn drop(&mut self) {
            // SAFETY: closing the epoll fd we created.
            unsafe { close(self.epfd) };
        }
    }
}

#[cfg(target_os = "linux")]
pub use epoll::EpollPoller;

// ---------------------------------------------------------------------------
// poll(2) fallback (any POSIX).
// ---------------------------------------------------------------------------

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;

#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: c_int,
    events: i16,
    revents: i16,
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: std::os::raw::c_ulong, timeout_ms: c_int) -> c_int;
}

/// Portable fallback: rebuilds the `pollfd` array every wait. O(n) per
/// call, which is fine for the scales where epoll is unavailable.
pub struct PollPoller {
    entries: Vec<(RawFd, u64, Interest)>,
    fds: Vec<PollFd>,
}

impl PollPoller {
    pub fn new() -> PollPoller {
        PollPoller {
            entries: Vec::new(),
            fds: Vec::new(),
        }
    }

    fn position(&self, fd: RawFd) -> Option<usize> {
        self.entries.iter().position(|&(f, _, _)| f == fd)
    }
}

impl Default for PollPoller {
    fn default() -> Self {
        PollPoller::new()
    }
}

impl Poller for PollPoller {
    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        if self.position(fd).is_some() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        self.entries.push((fd, token, interest));
        Ok(())
    }

    fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let ix = self
            .position(fd)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
        self.entries[ix] = (fd, token, interest);
        Ok(())
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        let ix = self
            .position(fd)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
        self.entries.swap_remove(ix);
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        self.fds.clear();
        for &(fd, _, interest) in &self.entries {
            self.fds.push(PollFd {
                fd,
                events: match interest {
                    Interest::Read => POLLIN,
                    Interest::Write => POLLOUT,
                },
                revents: 0,
            });
        }
        let n = loop {
            // SAFETY: fds is a live array matching nfds.
            let n = unsafe {
                poll(
                    self.fds.as_mut_ptr(),
                    self.fds.len() as std::os::raw::c_ulong,
                    timeout_ms(timeout),
                )
            };
            if n >= 0 {
                break n as usize;
            }
            if !last_os_error_is(io::ErrorKind::Interrupted) {
                return Err(io::Error::last_os_error());
            }
        };
        for (pollfd, &(_, token, _)) in self.fds.iter().zip(&self.entries) {
            let bits = pollfd.revents;
            if bits == 0 {
                continue;
            }
            events.push(Event {
                token,
                readable: bits & (POLLIN | POLLHUP | POLLERR) != 0,
                writable: bits & (POLLOUT | POLLHUP | POLLERR) != 0,
                hangup: bits & (POLLHUP | POLLERR) != 0,
            });
        }
        Ok(n)
    }

    fn name(&self) -> &'static str {
        "poll"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};

    #[cfg(unix)]
    fn raw_fd<T: std::os::unix::io::AsRawFd>(v: &T) -> RawFd {
        v.as_raw_fd()
    }

    fn backends() -> Vec<Box<dyn Poller>> {
        let mut backends: Vec<Box<dyn Poller>> = vec![Box::new(PollPoller::new())];
        #[cfg(target_os = "linux")]
        backends.push(Box::new(EpollPoller::new().expect("epoll_create1")));
        backends
    }

    #[test]
    fn wakeup_notify_unblocks_and_drains() {
        for mut poller in backends() {
            let wakeup = Wakeup::new().expect("pipe");
            poller
                .register(wakeup.read_fd(), 7, Interest::Read)
                .expect("register");
            let mut events = Vec::new();
            // No doorbell: times out empty.
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .expect("wait");
            assert_eq!(n, 0, "{}: spurious event", poller.name());

            wakeup.notify();
            wakeup.notify();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .expect("wait");
            assert_eq!(n, 1, "{}", poller.name());
            assert_eq!(events[0].token, 7);
            assert!(events[0].readable);

            // Drained, the doorbell goes quiet again.
            wakeup.drain();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .expect("wait");
            assert_eq!(n, 0, "{}: drain left residue", poller.name());
        }
    }

    #[cfg(unix)]
    #[test]
    fn sockets_report_read_and_write_readiness() {
        for mut poller in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = listener.local_addr().unwrap();
            let mut client = TcpStream::connect(addr).expect("connect");
            let (mut served, _) = listener.accept().expect("accept");
            served.set_nonblocking(true).expect("nonblocking");

            // A fresh socket with empty buffers: writable, not readable.
            poller
                .register(raw_fd(&served), 1, Interest::Write)
                .expect("register");
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .expect("wait");
            assert!(
                events.iter().any(|e| e.token == 1 && e.writable),
                "{}: fresh socket must be writable",
                poller.name()
            );

            // Flip to read interest; quiet until the peer sends.
            poller
                .modify(raw_fd(&served), 1, Interest::Read)
                .expect("modify");
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .expect("wait");
            assert_eq!(n, 0, "{}: nothing to read yet", poller.name());

            client.write_all(b"ping").expect("write");
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .expect("wait");
            assert!(
                events.iter().any(|e| e.token == 1 && e.readable),
                "{}: sent bytes must wake read interest",
                poller.name()
            );
            let mut buf = [0u8; 8];
            assert_eq!(served.read(&mut buf).expect("read"), 4);

            // Peer hangup surfaces as readable (EOF) and/or hangup.
            drop(client);
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .expect("wait");
            assert!(
                events
                    .iter()
                    .any(|e| e.token == 1 && (e.readable || e.hangup)),
                "{}: hangup must surface",
                poller.name()
            );
            poller.deregister(raw_fd(&served)).expect("deregister");
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .expect("wait");
            assert_eq!(n, 0, "{}: deregistered fd must go silent", poller.name());
        }
    }
}
