//! The reactor's timer wheel: absolute per-connection deadlines (request
//! deadline, idle timeout, write grace, linger bound) hashed into coarse
//! slots so arming, firing, and lazy cancellation are all O(1).
//!
//! Cancellation is lazy by design: the reactor never removes an entry,
//! it bumps the connection's `timer_gen` instead, and a firing entry
//! whose generation no longer matches is simply dropped. A timer due
//! beyond one wheel rotation parks in its slot and is re-armed on each
//! visit until its absolute due time arrives (implicit rounds), so no
//! separate overflow list is needed.

use std::time::{Duration, Instant};

#[derive(Debug)]
struct Entry {
    due: Instant,
    token: u64,
    gen: u64,
}

/// A fixed-slot timer wheel over `Instant`s.
#[derive(Debug)]
pub struct TimerWheel {
    slots: Vec<Vec<Entry>>,
    tick: Duration,
    /// Slot `advance` will drain next.
    cursor: usize,
    /// Wall-clock time at which `cursor`'s slot is due to drain.
    boundary: Instant,
    live: usize,
}

impl TimerWheel {
    /// A wheel of `slots` ticks of `tick` each, anchored at `now`.
    pub fn new(tick: Duration, slots: usize, now: Instant) -> TimerWheel {
        let slots = slots.max(2);
        TimerWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            tick: tick.max(Duration::from_millis(1)),
            cursor: 0,
            boundary: now + tick,
            live: 0,
        }
    }

    /// Arm a timer firing at `due` for `(token, gen)`. A `due` already in
    /// the past fires on the next tick — never synchronously, so callers
    /// can arm from any state without re-entrancy.
    pub fn arm(&mut self, due: Instant, token: u64, gen: u64, _now: Instant) {
        // The `cursor` slot drains when `boundary` passes, slot
        // `cursor + k` when `boundary + k·tick` does; pick the first
        // draining at or after `due` (rounded up). Entries further out
        // than one rotation wrap and ride implicit rounds — `advance`
        // re-arms them on each premature visit.
        let ticks = {
            let past_boundary = due.saturating_duration_since(self.boundary);
            (past_boundary.as_nanos().div_ceil(self.tick.as_nanos())) as usize
        };
        let slot = (self.cursor + ticks) % self.slots.len();
        self.slots[slot].push(Entry { due, token, gen });
        self.live += 1;
    }

    /// Drain every slot whose boundary has passed, appending fired
    /// `(token, gen)` pairs to `expired`. Entries visited before their
    /// absolute due time (wheel wrap-around) are re-armed, not fired.
    pub fn advance(&mut self, now: Instant, expired: &mut Vec<(u64, u64)>) {
        while self.boundary <= now {
            let drained = std::mem::take(&mut self.slots[self.cursor]);
            self.cursor = (self.cursor + 1) % self.slots.len();
            self.boundary += self.tick;
            for entry in drained {
                if entry.due <= now {
                    self.live -= 1;
                    expired.push((entry.token, entry.gen));
                } else {
                    self.live -= 1; // re-arm re-increments
                    self.arm(entry.due, entry.token, entry.gen, now);
                }
            }
        }
    }

    /// How long `wait` may block before the next slot is due, or `None`
    /// when no timers are armed (block indefinitely).
    pub fn next_timeout(&self, now: Instant) -> Option<Duration> {
        if self.live == 0 {
            return None;
        }
        Some(self.boundary.saturating_duration_since(now))
    }

    /// Number of armed (live) entries, stale generations included.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no timers are armed.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fired(wheel: &mut TimerWheel, now: Instant) -> Vec<(u64, u64)> {
        let mut expired = Vec::new();
        wheel.advance(now, &mut expired);
        expired
    }

    #[test]
    fn fires_at_the_right_tick_and_not_before() {
        let t0 = Instant::now();
        let tick = Duration::from_millis(10);
        let mut wheel = TimerWheel::new(tick, 16, t0);
        wheel.arm(t0 + Duration::from_millis(35), 1, 1, t0);

        assert!(fired(&mut wheel, t0 + Duration::from_millis(30)).is_empty());
        assert_eq!(wheel.len(), 1);
        assert_eq!(fired(&mut wheel, t0 + Duration::from_millis(41)), [(1, 1)]);
        assert!(wheel.is_empty());
        assert_eq!(wheel.next_timeout(t0), None);
    }

    #[test]
    fn entries_beyond_one_rotation_wait_their_turn() {
        let t0 = Instant::now();
        let tick = Duration::from_millis(10);
        // 4 slots → 40ms rotation; arm 95ms out: two wrap-arounds.
        let mut wheel = TimerWheel::new(tick, 4, t0);
        wheel.arm(t0 + Duration::from_millis(95), 9, 3, t0);

        assert!(fired(&mut wheel, t0 + Duration::from_millis(50)).is_empty());
        assert!(fired(&mut wheel, t0 + Duration::from_millis(90)).is_empty());
        assert_eq!(wheel.len(), 1, "parked entry must stay live");
        assert_eq!(fired(&mut wheel, t0 + Duration::from_millis(101)), [(9, 3)]);
    }

    #[test]
    fn past_due_arms_fire_on_the_next_tick() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 8, t0);
        wheel.arm(t0, 2, 1, t0); // already due
        assert!(
            wheel.next_timeout(t0).unwrap() <= Duration::from_millis(10),
            "past-due entry must make the wheel wake within one tick"
        );
        assert_eq!(fired(&mut wheel, t0 + Duration::from_millis(11)), [(2, 1)]);
    }

    #[test]
    fn implicit_rounds_survive_many_rotations_and_slot_sharing() {
        let t0 = Instant::now();
        let tick = Duration::from_millis(10);
        // 4 slots → 40ms rotation. 410ms out = 10+ full rotations of
        // parking; it lands in the same slot as a 10ms timer, and the
        // short one must fire on time without dislodging the parked one.
        let mut wheel = TimerWheel::new(tick, 4, t0);
        wheel.arm(t0 + Duration::from_millis(410), 1, 1, t0);
        wheel.arm(t0 + Duration::from_millis(10), 2, 1, t0);

        assert_eq!(fired(&mut wheel, t0 + Duration::from_millis(11)), [(2, 1)]);
        // Walk whole rotations one tick at a time: the parked entry must
        // ride every premature visit without firing or leaking.
        let mut now = t0 + Duration::from_millis(11);
        while now + tick < t0 + Duration::from_millis(410) {
            now += tick;
            assert!(fired(&mut wheel, now).is_empty(), "early fire at {now:?}");
            assert_eq!(wheel.len(), 1, "parked entry must stay live");
            assert!(
                wheel.next_timeout(now).is_some(),
                "a parked entry must keep the wheel waking"
            );
        }
        assert_eq!(fired(&mut wheel, t0 + Duration::from_millis(421)), [(1, 1)]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn stale_generation_of_a_fired_timer_stays_inert() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 8, t0);
        // Generation 1 fires; the reactor then re-arms the same token
        // with a bumped generation (lazy cancellation of gen 1). The
        // fired gen-1 entry is gone from the wheel — it must not fire
        // again, and it must not block or corrupt gen 2.
        wheel.arm(t0 + Duration::from_millis(15), 7, 1, t0);
        assert_eq!(fired(&mut wheel, t0 + Duration::from_millis(21)), [(7, 1)]);
        assert!(wheel.is_empty());

        let now = t0 + Duration::from_millis(21);
        wheel.arm(now + Duration::from_millis(15), 7, 2, now);
        let late = now + Duration::from_millis(100);
        assert_eq!(
            fired(&mut wheel, late),
            [(7, 2)],
            "only the live generation fires; the fired one never repeats"
        );
        assert!(wheel.is_empty());
        // Lazy cancellation the other way: two generations armed at
        // once. The wheel reports both (it cannot know which is stale);
        // each carries its own gen so the reactor can drop the old one.
        wheel.arm(late + Duration::from_millis(5), 9, 3, late);
        wheel.arm(late + Duration::from_millis(5), 9, 4, late);
        let mut pairs = fired(&mut wheel, late + Duration::from_millis(11));
        pairs.sort_unstable();
        assert_eq!(pairs, [(9, 3), (9, 4)]);
        assert!(wheel.is_empty(), "stale generations must not leak `live`");
    }

    #[test]
    fn mass_expiry_drains_in_a_single_advance() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 16, t0);
        // Thousands of deadlines landing in the same tick — the
        // stalled-accept recovery shape. One `advance` must drain them
        // all, leave the wheel empty, and stop asking for wakeups.
        const N: u64 = 5000;
        for i in 0..N {
            wheel.arm(t0 + Duration::from_millis(7), i, i ^ 0x5a, t0);
        }
        assert_eq!(wheel.len(), N as usize);
        let mut expired = Vec::new();
        wheel.advance(t0 + Duration::from_millis(20), &mut expired);
        assert_eq!(expired.len(), N as usize, "everything fires in one call");
        let mut tokens: Vec<u64> = expired.iter().map(|&(t, _)| t).collect();
        tokens.sort_unstable();
        assert_eq!(tokens, (0..N).collect::<Vec<_>>());
        assert!(expired.iter().all(|&(t, g)| g == t ^ 0x5a));
        assert!(wheel.is_empty());
        assert_eq!(wheel.next_timeout(t0 + Duration::from_millis(20)), None);
    }

    #[test]
    fn many_timers_fire_exactly_once_in_due_order_windows() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(5), 8, t0);
        for i in 0..100u64 {
            wheel.arm(t0 + Duration::from_millis(3 * i + 1), i, i * 7, t0);
        }
        assert_eq!(wheel.len(), 100);
        let mut all = Vec::new();
        let mut now = t0;
        for _ in 0..70 {
            now += Duration::from_millis(5);
            wheel.advance(now, &mut all);
        }
        assert_eq!(all.len(), 100, "every timer fires exactly once");
        let mut tokens: Vec<u64> = all.iter().map(|&(t, _)| t).collect();
        tokens.sort_unstable();
        assert_eq!(tokens, (0..100).collect::<Vec<_>>());
        assert!(all.iter().all(|&(t, g)| g == t * 7), "gens travel intact");
        assert!(wheel.is_empty());
    }
}
