//! The immutable serving state behind one catalog generation.
//!
//! A [`ServingState`] freezes everything a request needs: the serving
//! snapshot's sidecar tables (term dictionary, category paths, LM's
//! global model), the columnar broker [`Catalog`], and one
//! [`SelectionEngine`] per (algorithm, shrinkage mode) pair so posterior
//! caches persist across requests. States are shared as
//! `Arc<ServingState>`; `/admin/reload` builds a fresh state off to the
//! side and swaps the `Arc` — in-flight requests keep routing against the
//! generation they started with, so a swap never fails them.
//!
//! Loading prefers the v2 [`ServingSnapshot`] format (a straight array
//! read, no shrunk-summary rebuild); v1 [`StoredCatalog`] files still
//! load through the legacy rebuild path via
//! [`ServingSnapshot::load_any`].
//!
//! Query analysis (stemming, dictionary lookup, deduplication) mirrors
//! `dbselect route` exactly, so a query served over HTTP ranks
//! bit-identically to the same query routed from a file.

use std::collections::HashMap;
use std::io;
use std::sync::Arc;
use std::time::Instant;

use broker::{Catalog, SelectionEngine, ShardPlan, ShardSet, ShardedEngine};
use selection::{AdaptiveConfig, BGloss, Cori, Lm, SelectionAlgorithm, ShrinkageMode};
use store::catalog::StoredCatalog;
use store::snapshot::ServingSnapshot;
use textindex::{Analyzer, TermDict, TermId};

/// The scoring algorithms the daemon serves (summary-based only; ReDDE
/// needs raw samples and stays a CLI concern).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Algo {
    /// bGlOSS.
    BGloss,
    /// CORI (default).
    #[default]
    Cori,
    /// Language modelling.
    Lm,
}

impl Algo {
    /// Parse a request's `algo` field.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "bgloss" => Ok(Algo::BGloss),
            "cori" => Ok(Algo::Cori),
            "lm" => Ok(Algo::Lm),
            other => Err(format!("unknown algorithm `{other}` (bgloss|cori|lm)")),
        }
    }

    /// All served algorithms.
    pub fn all() -> [Algo; 3] {
        [Algo::BGloss, Algo::Cori, Algo::Lm]
    }

    fn index(self) -> usize {
        match self {
            Algo::BGloss => 0,
            Algo::Cori => 1,
            Algo::Lm => 2,
        }
    }
}

/// Parse a request's `shrinkage` field.
pub fn parse_shrinkage(s: &str) -> Result<ShrinkageMode, String> {
    match s {
        "adaptive" => Ok(ShrinkageMode::Adaptive),
        "always" => Ok(ShrinkageMode::Always),
        "never" => Ok(ShrinkageMode::Never),
        other => Err(format!(
            "unknown shrinkage mode `{other}` (adaptive|always|never)"
        )),
    }
}

/// All shrinkage modes, in engine-table order.
pub const MODES: [ShrinkageMode; 3] = [
    ShrinkageMode::Adaptive,
    ShrinkageMode::Always,
    ShrinkageMode::Never,
];

fn mode_index(mode: ShrinkageMode) -> usize {
    match mode {
        ShrinkageMode::Adaptive => 0,
        ShrinkageMode::Always => 1,
        ShrinkageMode::Never => 2,
    }
}

/// One catalog generation, frozen for serving.
pub struct ServingState {
    dict: TermDict,
    categories: Vec<String>,
    catalog: Arc<Catalog>,
    analyzer: Analyzer,
    /// `engines[algo.index() * 3 + mode_index(mode)]`.
    engines: Vec<Arc<SelectionEngine>>,
    /// The shard partition when this state serves scatter-gather, shared
    /// by every sharded engine below. `None` ⇒ monolithic serving.
    shard_set: Option<Arc<ShardSet>>,
    /// Scatter-gather wrapper per engine slot (same indexing as
    /// `engines`); empty when serving monolithically.
    sharded: Vec<Option<ShardedEngine>>,
    /// The path this state was loaded from (default for reloads).
    source: String,
    /// Wall-clock seconds spent loading and freezing this generation.
    load_seconds: f64,
    /// On-disk byte size of the catalog file this state came from.
    snapshot_bytes: u64,
    /// FNV-1a content checksum of the catalog file (the v2 snapshot's
    /// stored payload digest; 0 when built in memory). `/readyz` reports
    /// it so operators can tell whether two daemons serve the same bytes.
    checksum: u64,
    /// Tip generation of the delta chain this state was loaded from
    /// (0 for plain single-file snapshots and in-memory states). Reload
    /// enforces that swaps never move this backwards.
    catalog_generation: u64,
}

impl ServingState {
    /// Build a state from a serving snapshot (already in final form).
    pub fn from_snapshot(snapshot: ServingSnapshot, source: String, cache_capacity: usize) -> Self {
        ServingState::from_snapshot_sharded(snapshot, source, cache_capacity, 1)
    }

    /// [`from_snapshot`](Self::from_snapshot), scattering scoring over
    /// `shards` contiguous catalog shards when `shards > 1`. Sharding is
    /// a pure execution strategy: the served ranking stays bit-identical
    /// to monolithic serving (asserted in `broker::shard` tests).
    pub fn from_snapshot_sharded(
        snapshot: ServingSnapshot,
        source: String,
        cache_capacity: usize,
        shards: usize,
    ) -> Self {
        let ServingSnapshot {
            dict,
            categories,
            lm_global,
            catalog,
        } = snapshot;
        let catalog = Arc::new(catalog);
        let global: HashMap<TermId, f64> = lm_global.into_iter().collect();
        let mut engines = Vec::with_capacity(9);
        for algo in Algo::all() {
            let algorithm: Arc<dyn SelectionAlgorithm + Send + Sync> = match algo {
                Algo::BGloss => Arc::new(BGloss),
                Algo::Cori => Arc::new(Cori::default()),
                Algo::Lm => Arc::new(Lm::from_global_map(0.5, global.clone())),
            };
            for mode in MODES {
                engines.push(Arc::new(SelectionEngine::new(
                    Arc::clone(&catalog),
                    Arc::clone(&algorithm),
                    AdaptiveConfig {
                        mode,
                        ..Default::default()
                    },
                    cache_capacity,
                )));
            }
        }
        let shard_set = if shards > 1 && !catalog.is_empty() {
            let plan = ShardPlan::contiguous(catalog.len(), shards);
            Some(Arc::new(
                ShardSet::build(&catalog, plan).expect("contiguous plan always covers the catalog"),
            ))
        } else {
            None
        };
        let sharded = match &shard_set {
            Some(set) => engines
                .iter()
                .map(|engine| {
                    Some(ShardedEngine::new(
                        Arc::clone(engine),
                        Arc::clone(set),
                        set.shard_count(),
                    ))
                })
                .collect(),
            None => Vec::new(),
        };
        ServingState {
            dict,
            categories,
            catalog,
            analyzer: Analyzer::english(),
            engines,
            shard_set,
            sharded,
            source,
            load_seconds: 0.0,
            snapshot_bytes: 0,
            checksum: 0,
            catalog_generation: 0,
        }
    }

    /// Build a state from an already-loaded v1 frozen catalog.
    pub fn from_frozen(frozen: StoredCatalog, source: String, cache_capacity: usize) -> Self {
        ServingState::from_snapshot(
            ServingSnapshot::from_stored(&frozen),
            source,
            cache_capacity,
        )
    }

    /// Load a catalog from disk (v2 snapshot or v1 frozen catalog) and
    /// freeze it for serving, recording load latency and file size.
    pub fn load(path: &str, cache_capacity: usize) -> io::Result<Self> {
        ServingState::load_sharded(path, cache_capacity, 1)
    }

    /// [`load`](Self::load) with scatter-gather scoring over `shards`
    /// contiguous shards (`shards <= 1` serves monolithically).
    pub fn load_sharded(path: &str, cache_capacity: usize, shards: usize) -> io::Result<Self> {
        let started = Instant::now();
        // A directory is a delta chain: replay base + deltas and record
        // the tip generation so swaps can be kept monotone.
        let (snapshot, checksum, snapshot_bytes, catalog_generation) =
            if std::path::Path::new(path).is_dir() {
                let chain = store::delta::load_chain(std::path::Path::new(path))?;
                (chain.snapshot, chain.checksum, chain.bytes, chain.generation)
            } else {
                let (snapshot, checksum) = ServingSnapshot::load_any_with_checksum(path)?;
                let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
                (snapshot, checksum, bytes, 0)
            };
        let mut state =
            ServingState::from_snapshot_sharded(snapshot, path.to_string(), cache_capacity, shards);
        state.load_seconds = started.elapsed().as_secs_f64();
        state.snapshot_bytes = snapshot_bytes;
        state.checksum = checksum;
        state.catalog_generation = catalog_generation;
        Ok(state)
    }

    /// The engine serving `(algo, mode)`.
    pub fn engine(&self, algo: Algo, mode: ShrinkageMode) -> &SelectionEngine {
        &self.engines[algo.index() * MODES.len() + mode_index(mode)]
    }

    /// The scatter-gather engine for `(algo, mode)`, when this state was
    /// built with `shards > 1`.
    pub fn sharded_engine(&self, algo: Algo, mode: ShrinkageMode) -> Option<&ShardedEngine> {
        self.sharded
            .get(algo.index() * MODES.len() + mode_index(mode))?
            .as_ref()
    }

    /// Number of shards this state scores across (1 ⇒ monolithic).
    pub fn shard_count(&self) -> usize {
        self.shard_set.as_ref().map_or(1, |s| s.shard_count())
    }

    /// The served catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The path this state was loaded from.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Wall-clock seconds the load of this generation took (0 when the
    /// state was built in memory rather than loaded from a file).
    pub fn load_seconds(&self) -> f64 {
        self.load_seconds
    }

    /// On-disk byte size of this generation's catalog file (0 when built
    /// in memory).
    pub fn snapshot_bytes(&self) -> u64 {
        self.snapshot_bytes
    }

    /// Content checksum of this generation's catalog file (0 when built
    /// in memory); see [`ServingSnapshot::load_any_with_checksum`].
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Delta-chain tip generation this state serves (0 for plain
    /// snapshots). The reload path refuses to replace a state with one
    /// whose chain generation is lower.
    pub fn catalog_generation(&self) -> u64 {
        self.catalog_generation
    }

    /// Number of served databases.
    pub fn databases(&self) -> usize {
        self.catalog.len()
    }

    /// Number of dictionary terms.
    pub fn terms(&self) -> usize {
        self.dict.len()
    }

    /// Database name by catalog index.
    pub fn name(&self, index: usize) -> &str {
        &self.catalog.names()[index]
    }

    /// Full category path of a database.
    pub fn category(&self, index: usize) -> String {
        self.categories[index].clone()
    }

    /// Tokenize query words against the dictionary, deduplicating and
    /// collecting words profiling never saw — the exact analysis
    /// `dbselect route` applies.
    pub fn analyze(&self, words: &[String]) -> (Vec<TermId>, Vec<String>) {
        let mut query = Vec::new();
        let mut unknown = Vec::new();
        for word in words {
            match self
                .analyzer
                .analyze_term(word)
                .and_then(|t| self.dict.lookup(&t))
            {
                Some(id) if !query.contains(&id) => query.push(id),
                Some(_) => {}
                None => unknown.push(word.clone()),
            }
        }
        (query, unknown)
    }

    /// Posterior-cache counters aggregated over every engine.
    pub fn cache_stats(&self) -> broker::CacheStats {
        self.engines
            .iter()
            .fold(broker::CacheStats::default(), |acc, e| {
                acc.merged(&e.cache_stats())
            })
    }
}
