//! The immutable serving state behind one catalog generation.
//!
//! A [`ServingState`] freezes everything a request needs: the loaded
//! [`StoredCatalog`] (names, categories, term dictionary), the broker
//! [`Catalog`], and one [`SelectionEngine`] per (algorithm, shrinkage
//! mode) pair so posterior caches persist across requests. States are
//! shared as `Arc<ServingState>`; `/admin/reload` builds a fresh state
//! off to the side and swaps the `Arc` — in-flight requests keep routing
//! against the generation they started with, so a swap never fails them.
//!
//! Query analysis (stemming, dictionary lookup, deduplication) mirrors
//! `dbselect route` exactly, so a query served over HTTP ranks
//! bit-identically to the same query routed from a file.

use std::io;
use std::sync::Arc;

use broker::{Catalog, SelectionEngine};
use dbselect_core::category_summary::CategoryWeighting;
use selection::{AdaptiveConfig, BGloss, Cori, Lm, SelectionAlgorithm, ShrinkageMode};
use store::catalog::StoredCatalog;
use textindex::{Analyzer, TermId};

/// The scoring algorithms the daemon serves (summary-based only; ReDDE
/// needs raw samples and stays a CLI concern).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Algo {
    /// bGlOSS.
    BGloss,
    /// CORI (default).
    #[default]
    Cori,
    /// Language modelling.
    Lm,
}

impl Algo {
    /// Parse a request's `algo` field.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "bgloss" => Ok(Algo::BGloss),
            "cori" => Ok(Algo::Cori),
            "lm" => Ok(Algo::Lm),
            other => Err(format!("unknown algorithm `{other}` (bgloss|cori|lm)")),
        }
    }

    /// All served algorithms.
    pub fn all() -> [Algo; 3] {
        [Algo::BGloss, Algo::Cori, Algo::Lm]
    }

    fn index(self) -> usize {
        match self {
            Algo::BGloss => 0,
            Algo::Cori => 1,
            Algo::Lm => 2,
        }
    }
}

/// Parse a request's `shrinkage` field.
pub fn parse_shrinkage(s: &str) -> Result<ShrinkageMode, String> {
    match s {
        "adaptive" => Ok(ShrinkageMode::Adaptive),
        "always" => Ok(ShrinkageMode::Always),
        "never" => Ok(ShrinkageMode::Never),
        other => Err(format!(
            "unknown shrinkage mode `{other}` (adaptive|always|never)"
        )),
    }
}

/// All shrinkage modes, in engine-table order.
pub const MODES: [ShrinkageMode; 3] = [
    ShrinkageMode::Adaptive,
    ShrinkageMode::Always,
    ShrinkageMode::Never,
];

fn mode_index(mode: ShrinkageMode) -> usize {
    match mode {
        ShrinkageMode::Adaptive => 0,
        ShrinkageMode::Always => 1,
        ShrinkageMode::Never => 2,
    }
}

/// One catalog generation, frozen for serving.
pub struct ServingState {
    frozen: StoredCatalog,
    catalog: Arc<Catalog>,
    analyzer: Analyzer,
    /// `engines[algo.index() * 3 + mode_index(mode)]`.
    engines: Vec<SelectionEngine>,
    /// The path this state was loaded from (default for reloads).
    source: String,
}

impl ServingState {
    /// Build a state from an already-loaded frozen catalog.
    pub fn from_frozen(frozen: StoredCatalog, source: String, cache_capacity: usize) -> Self {
        let catalog = Arc::new(frozen.to_catalog());
        let root = frozen.store.root_summary(CategoryWeighting::BySize);
        let mut engines = Vec::with_capacity(9);
        for algo in Algo::all() {
            let algorithm: Arc<dyn SelectionAlgorithm + Send + Sync> = match algo {
                Algo::BGloss => Arc::new(BGloss),
                Algo::Cori => Arc::new(Cori::default()),
                Algo::Lm => Arc::new(Lm::new(0.5, &root)),
            };
            for mode in MODES {
                engines.push(SelectionEngine::new(
                    Arc::clone(&catalog),
                    Arc::clone(&algorithm),
                    AdaptiveConfig {
                        mode,
                        ..Default::default()
                    },
                    cache_capacity,
                ));
            }
        }
        ServingState {
            frozen,
            catalog,
            analyzer: Analyzer::english(),
            engines,
            source,
        }
    }

    /// Load a frozen catalog from disk and freeze it for serving.
    pub fn load(path: &str, cache_capacity: usize) -> io::Result<Self> {
        let frozen = StoredCatalog::load(path)?;
        Ok(ServingState::from_frozen(
            frozen,
            path.to_string(),
            cache_capacity,
        ))
    }

    /// The engine serving `(algo, mode)`.
    pub fn engine(&self, algo: Algo, mode: ShrinkageMode) -> &SelectionEngine {
        &self.engines[algo.index() * MODES.len() + mode_index(mode)]
    }

    /// The served catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The path this state was loaded from.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Number of served databases.
    pub fn databases(&self) -> usize {
        self.catalog.len()
    }

    /// Number of dictionary terms.
    pub fn terms(&self) -> usize {
        self.frozen.store.dict.len()
    }

    /// Database name by catalog index.
    pub fn name(&self, index: usize) -> &str {
        &self.frozen.store.databases[index].name
    }

    /// Full category path of a database.
    pub fn category(&self, index: usize) -> String {
        let db = &self.frozen.store.databases[index];
        self.frozen.store.hierarchy.full_name(db.classification)
    }

    /// Tokenize query words against the dictionary, deduplicating and
    /// collecting words profiling never saw — the exact analysis
    /// `dbselect route` applies.
    pub fn analyze(&self, words: &[String]) -> (Vec<TermId>, Vec<String>) {
        let mut query = Vec::new();
        let mut unknown = Vec::new();
        for word in words {
            match self
                .analyzer
                .analyze_term(word)
                .and_then(|t| self.frozen.store.dict.lookup(&t))
            {
                Some(id) if !query.contains(&id) => query.push(id),
                Some(_) => {}
                None => unknown.push(word.clone()),
            }
        }
        (query, unknown)
    }

    /// Posterior-cache counters aggregated over every engine.
    pub fn cache_stats(&self) -> broker::CacheStats {
        self.engines
            .iter()
            .fold(broker::CacheStats::default(), |acc, e| {
                acc.merged(&e.cache_stats())
            })
    }
}
