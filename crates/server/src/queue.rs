//! The daemon's bounded admission queue.
//!
//! The accept loop pushes connections with [`BoundedQueue::try_push`],
//! which **fails immediately when the queue is full** — that failure is
//! the admission-control signal the caller turns into `503` +
//! `Retry-After`. Workers block on [`BoundedQueue::pop`]. Closing the
//! queue lets workers drain what was already admitted, then return `None`
//! so they can exit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity multi-producer multi-consumer queue.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admit `item`, or give it back when the queue is full or closed.
    /// On success returns the queue depth after the push.
    pub fn try_push(&self, item: T) -> Result<usize, T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.available.notify_one();
        Ok(depth)
    }

    /// Block until an item is available (`Some`) or the queue is closed
    /// *and* drained (`None`).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.available.wait(inner).expect("queue poisoned");
        }
    }

    /// Close the queue: pending items stay poppable, new pushes fail, and
    /// blocked poppers wake up.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.available.notify_all();
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_rejects_instead_of_blocking() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(2));
    }

    #[test]
    fn close_drains_then_wakes() {
        let q = Arc::new(BoundedQueue::new(4));
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err(8), "closed queue rejects");
        assert_eq!(q.pop(), Some(7), "admitted items drain after close");
        assert_eq!(q.pop(), None);

        // A popper blocked on an empty queue wakes on close.
        let q2 = Arc::new(BoundedQueue::<u32>::new(1));
        let waiter = {
            let q2 = Arc::clone(&q2);
            std::thread::spawn(move || q2.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q2.close();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn capacity_floor_is_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Err(2));
    }
}
