//! The daemon's bounded admission queue and the reactor's completion
//! mailbox.
//!
//! The accept loop (threaded mode) or the reactor (parsed requests)
//! pushes work with [`BoundedQueue::try_push`], which **fails immediately
//! when the queue is full** — that failure is the admission-control
//! signal the caller turns into `503` + `Retry-After`. Workers block on
//! [`BoundedQueue::pop`]. Closing the queue lets workers drain what was
//! already admitted, then return `None` so they can exit.
//!
//! [`CompletionQueue`] carries finished work the other way: workers push
//! (then ring the reactor's wakeup pipe), the reactor drains without ever
//! blocking. It is unbounded because its depth is already bounded by the
//! admission queue's capacity — every completion corresponds to an
//! admitted task.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity multi-producer multi-consumer queue.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admit `item`, or give it back when the queue is full or closed.
    /// On success returns the queue depth after the push.
    pub fn try_push(&self, item: T) -> Result<usize, T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.available.notify_one();
        Ok(depth)
    }

    /// Block until an item is available (`Some`) or the queue is closed
    /// *and* drained (`None`).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.available.wait(inner).expect("queue poisoned");
        }
    }

    /// Close the queue: pending items stay poppable, new pushes fail, and
    /// blocked poppers wake up.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.available.notify_all();
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Nonblocking MPSC mailbox for worker → reactor completions.
pub struct CompletionQueue<T> {
    items: Mutex<VecDeque<T>>,
}

impl<T> CompletionQueue<T> {
    pub fn new() -> Self {
        CompletionQueue {
            items: Mutex::new(VecDeque::new()),
        }
    }

    /// Post one completion. The caller must separately wake the consumer
    /// (the queue itself never blocks or signals).
    pub fn push(&self, item: T) {
        self.items
            .lock()
            .expect("completions poisoned")
            .push_back(item);
    }

    /// Take the oldest pending completion, if any. Never blocks.
    pub fn pop(&self) -> Option<T> {
        self.items.lock().expect("completions poisoned").pop_front()
    }
}

impl<T> Default for CompletionQueue<T> {
    fn default() -> Self {
        CompletionQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn completion_queue_is_fifo_and_nonblocking() {
        let q = CompletionQueue::new();
        assert_eq!(q.pop(), None);
        q.push(1);
        q.push(2);
        assert_eq!(q.pop(), Some(1));
        q.push(3);
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn full_queue_rejects_instead_of_blocking() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(2));
    }

    #[test]
    fn close_drains_then_wakes() {
        let q = Arc::new(BoundedQueue::new(4));
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err(8), "closed queue rejects");
        assert_eq!(q.pop(), Some(7), "admitted items drain after close");
        assert_eq!(q.pop(), None);

        // A popper blocked on an empty queue wakes on close.
        let q2 = Arc::new(BoundedQueue::<u32>::new(1));
        let waiter = {
            let q2 = Arc::clone(&q2);
            std::thread::spawn(move || q2.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q2.close();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn capacity_floor_is_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Err(2));
    }

    #[test]
    fn concurrent_hammer_loses_and_duplicates_nothing() {
        // Producers spin items through a tiny queue while consumers drain
        // it; after close-and-join, every pushed item must have been
        // popped exactly once.
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 4;
        const PER_PRODUCER: u32 = 500;

        let q = Arc::new(BoundedQueue::new(4));
        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(item) = q.pop() {
                        got.push(item);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let mut item = p as u32 * PER_PRODUCER + i;
                        // Retry on full — admission control is the
                        // caller's concern here, losing items is not.
                        loop {
                            match q.try_push(item) {
                                Ok(_) => break,
                                Err(back) => {
                                    item = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        for producer in producers {
            producer.join().unwrap();
        }
        q.close();
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<u32> = (0..PRODUCERS as u32 * PER_PRODUCER).collect();
        assert_eq!(all, expected, "items lost or duplicated under contention");
    }
}
