//! The federated proxy tier: scatter-gather over remote shard daemons.
//!
//! In `--proxy` mode the daemon holds no catalog at all. Each configured
//! backend is a full `dbselectd` started with `--shards N` (N = number of
//! backends) over the *same* snapshot; backend `i` answers
//! `/route` requests carrying `"shard": i` with its shard's partial
//! ranking (global catalog indices, per-shard top-k). The proxy fans a
//! client request out to every backend, k-way-merges the partial rankings
//! with [`selection::merge_partial_rankings`], and renders the same body
//! the monolithic engine would have produced — bit-identical when every
//! backend answers, because the adaptive choose phase and the scoring
//! context are computed over the full catalog on every backend (PR 7's
//! shard-invariance argument) and JSON numbers round-trip exactly
//! ([`crate::json`]).
//!
//! The resilience layer around each backend call:
//!
//! - **Deadline budgets**: a merge reserve is carved off the end-to-end
//!   deadline; each retry attempt gets `remaining / attempts_left`, so
//!   early attempts fail fast while the last one may use all that is
//!   left.
//! - **Retries**: bounded, with exponential backoff and full jitter
//!   (decorrelated retry storms across shards).
//! - **Hedging**: when a reply is slower than the backend's observed p99
//!   (or a fixed `--hedge-ms`), a second identical request races it;
//!   first answer wins. Routing is idempotent, so hedges are safe.
//! - **Circuit breakers**: consecutive failures open a per-backend
//!   breaker (requests skip the backend instead of burning their budget
//!   on it); a background health checker probes `/healthz` and walks the
//!   breaker open → half-open → closed when the backend recovers.
//! - **Degradation**: if a shard stays unreachable past the retry
//!   budget, the healthy shards' rankings are merged and served with
//!   `"degraded": true` plus the missing shard ids — a partial answer
//!   instead of a 503. Only when *every* shard is down does the proxy
//!   return 503 (with the configured `Retry-After`).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use selection::{merge_partial_rankings, RankedDatabase};

use crate::client::{ClientResponse, Pool};
use crate::http::{Request, Response};
use crate::json::Json;
use crate::metrics::{escape_label_value, Histogram};
use crate::{retry_after_value, Shared};

/// Slice of the end-to-end deadline reserved for merging and rendering
/// after the slowest shard answers.
const MERGE_RESERVE: Duration = Duration::from_millis(25);

/// Extra slack granted when harvesting an in-flight attempt whose
/// deadline just passed: the worker thread's own socket timeout fires at
/// the deadline, and the error still has to travel up the channel.
const HARVEST_GRACE: Duration = Duration::from_millis(50);

/// Minimum observations before an `Auto` hedge trusts the p99.
const HEDGE_MIN_SAMPLES: u64 = 16;

/// When to launch a hedged second request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HedgePolicy {
    /// Never hedge.
    Off,
    /// Hedge after the backend's observed p99 latency (no hedging until
    /// enough samples accumulate).
    Auto,
    /// Hedge after a fixed delay.
    Fixed(Duration),
}

/// Configuration of the proxy tier (`dbselectd --proxy`).
#[derive(Debug, Clone)]
pub struct ProxyConfig {
    /// Backend addresses (`host:port`), one per shard: `backends[i]`
    /// serves shard `i` and must have been started with
    /// `--shards backends.len()` over the same snapshot.
    pub backends: Vec<String>,
    /// Extra attempts per shard beyond the first.
    pub retries: u32,
    /// Base of the exponential backoff between attempts.
    pub backoff_base: Duration,
    /// Hedged-request policy.
    pub hedge: HedgePolicy,
    /// Consecutive failures that open a backend's breaker.
    pub breaker_failures: u32,
    /// How long an open breaker waits before the half-open probe.
    pub breaker_cooldown: Duration,
    /// Health-checker probe interval.
    pub health_interval: Duration,
}

impl Default for ProxyConfig {
    fn default() -> Self {
        ProxyConfig {
            backends: Vec::new(),
            retries: 2,
            backoff_base: Duration::from_millis(25),
            hedge: HedgePolicy::Auto,
            breaker_failures: 3,
            breaker_cooldown: Duration::from_secs(2),
            health_interval: Duration::from_millis(500),
        }
    }
}

/// Breaker states, also the `dbselectd_backend_breaker_state` gauge
/// values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BreakerState {
    Closed = 0,
    Open = 1,
    HalfOpen = 2,
}

struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Instant,
}

/// A per-backend circuit breaker. The request path only consults
/// [`allows`](Breaker::allows) and records outcomes; all state *walking*
/// (open → half-open → closed) is owned by the health checker, so a
/// recovering backend is re-admitted by a cheap probe rather than by a
/// client request gambling its deadline.
pub(crate) struct Breaker {
    inner: Mutex<BreakerInner>,
    threshold: u32,
    cooldown: Duration,
    opens_total: AtomicU64,
}

impl Breaker {
    fn new(threshold: u32, cooldown: Duration) -> Breaker {
        Breaker {
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: Instant::now(),
            }),
            threshold: threshold.max(1),
            cooldown,
            opens_total: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BreakerInner> {
        self.inner.lock().expect("breaker lock poisoned")
    }

    /// May a request be sent to this backend right now? Only `Closed`
    /// admits traffic; `HalfOpen` is reserved for the health probe.
    pub(crate) fn allows(&self) -> bool {
        self.lock().state == BreakerState::Closed
    }

    pub(crate) fn state(&self) -> BreakerState {
        self.lock().state
    }

    fn record_success(&self) {
        let mut inner = self.lock();
        if inner.state == BreakerState::Closed {
            inner.consecutive_failures = 0;
        }
    }

    fn record_failure(&self) {
        let mut inner = self.lock();
        if inner.state == BreakerState::Closed {
            inner.consecutive_failures += 1;
            if inner.consecutive_failures >= self.threshold {
                self.trip(&mut inner);
            }
        }
    }

    fn trip(&self, inner: &mut BreakerInner) {
        inner.state = BreakerState::Open;
        inner.opened_at = Instant::now();
        self.opens_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Health-checker tick, phase 1: an open breaker whose cooldown has
    /// elapsed moves to half-open, granting this tick's probe the power
    /// to close it.
    fn begin_tick(&self) {
        let mut inner = self.lock();
        if inner.state == BreakerState::Open && inner.opened_at.elapsed() >= self.cooldown {
            inner.state = BreakerState::HalfOpen;
        }
    }

    /// Health-checker tick, phase 2: fold one probe result in.
    fn on_probe(&self, healthy: bool) {
        let mut inner = self.lock();
        match inner.state {
            BreakerState::Closed => {
                if healthy {
                    inner.consecutive_failures = 0;
                } else {
                    inner.consecutive_failures += 1;
                    if inner.consecutive_failures >= self.threshold {
                        self.trip(&mut inner);
                    }
                }
            }
            BreakerState::HalfOpen => {
                if healthy {
                    inner.state = BreakerState::Closed;
                    inner.consecutive_failures = 0;
                } else {
                    self.trip(&mut inner);
                }
            }
            // Still cooling down: the probe fed the `up` gauge, nothing
            // else.
            BreakerState::Open => {}
        }
    }
}

/// One backend shard daemon, as the proxy sees it.
pub(crate) struct Backend {
    pub(crate) addr: String,
    pool: Pool,
    pub(crate) breaker: Breaker,
    /// Last health probe's verdict (the `dbselectd_backend_up` gauge).
    up: AtomicBool,
    /// Has this backend *ever* answered a probe? Feeds the sticky
    /// readiness flag.
    seen_healthy: AtomicBool,
    failures_total: AtomicU64,
    retries_total: AtomicU64,
    hedges_total: AtomicU64,
    hedges_won_total: AtomicU64,
    /// Successful request latency; the `Auto` hedge delay reads its p99.
    latency: Histogram,
    /// xorshift state for backoff jitter (seeded per backend so shards
    /// decorrelate).
    jitter: AtomicU64,
}

impl Backend {
    fn new(addr: String, config: &ProxyConfig, seed: u64) -> Backend {
        Backend {
            pool: Pool::new(addr.clone()),
            addr,
            breaker: Breaker::new(config.breaker_failures, config.breaker_cooldown),
            up: AtomicBool::new(false),
            seen_healthy: AtomicBool::new(false),
            failures_total: AtomicU64::new(0),
            retries_total: AtomicU64::new(0),
            hedges_total: AtomicU64::new(0),
            hedges_won_total: AtomicU64::new(0),
            latency: Histogram::latency(),
            jitter: AtomicU64::new(seed | 1),
        }
    }

    fn next_jitter(&self) -> u64 {
        let mut x = self.jitter.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        if x == 0 {
            x = 0x9e37_79b9_7f4a_7c15;
        }
        self.jitter.store(x, Ordering::Relaxed);
        x
    }
}

/// The proxy's shared state: one [`Backend`] per shard plus tier-wide
/// counters. Lives inside [`Shared`] next to the (empty) tenant list.
pub(crate) struct ProxyTier {
    pub(crate) config: ProxyConfig,
    pub(crate) backends: Vec<Arc<Backend>>,
    /// Responses served degraded (one or more shards missing).
    degraded_total: AtomicU64,
    /// Sticky: set once every backend has answered a health probe, never
    /// cleared (readiness means "the tier has been fully up once", not
    /// "everything is healthy right now" — degradation handles the rest).
    ready: AtomicBool,
}

impl ProxyTier {
    pub(crate) fn new(config: ProxyConfig) -> ProxyTier {
        let backends = config
            .backends
            .iter()
            .enumerate()
            .map(|(i, addr)| {
                Arc::new(Backend::new(
                    addr.clone(),
                    &config,
                    0x5b7a_1e03_u64.wrapping_mul(i as u64 + 1) ^ 0x9e37_79b9_7f4a_7c15,
                ))
            })
            .collect();
        ProxyTier {
            config,
            backends,
            degraded_total: AtomicU64::new(0),
            ready: AtomicBool::new(false),
        }
    }
}

/// Proxy-mode request dispatch; replaces the catalog dispatch entirely
/// (a proxy hosts no tenants).
pub(crate) fn dispatch(
    shared: &Shared,
    request: &Request,
    deadline: Instant,
) -> (&'static str, Response) {
    let proxy = shared.proxy.as_ref().expect("proxy dispatch without tier");
    match (request.method.as_str(), request.path()) {
        ("GET", "/healthz") => ("healthz", handle_healthz(proxy)),
        ("GET", "/readyz") => ("readyz", handle_readyz(shared, proxy)),
        ("GET", "/metrics") => ("metrics", handle_metrics(shared, proxy)),
        ("POST", "/route") => ("route", handle_route(shared, proxy, request, deadline)),
        ("POST", "/route_batch") => (
            "route_batch",
            handle_route_batch(shared, proxy, request, deadline),
        ),
        ("POST", "/admin/shutdown") => ("shutdown", crate::shutdown_response()),
        (
            _,
            "/healthz" | "/readyz" | "/metrics" | "/route" | "/route_batch" | "/admin/shutdown",
        ) => (
            "other",
            Response::error(405, "method not allowed").with_header("Allow", "GET, POST".into()),
        ),
        _ => ("other", Response::error(404, "no such endpoint")),
    }
}

fn handle_healthz(proxy: &ProxyTier) -> Response {
    let healthy = proxy
        .backends
        .iter()
        .filter(|b| b.up.load(Ordering::SeqCst))
        .count();
    Response::json(
        200,
        Json::obj(vec![
            ("status".to_string(), Json::Str("ok".to_string())),
            ("mode".to_string(), Json::Str("proxy".to_string())),
            (
                "backends".to_string(),
                Json::Num(proxy.backends.len() as f64),
            ),
            ("healthy".to_string(), Json::Num(healthy as f64)),
        ])
        .render(),
    )
}

fn backend_json(backend: &Backend) -> Json {
    let breaker = match backend.breaker.state() {
        BreakerState::Closed => "closed",
        BreakerState::Open => "open",
        BreakerState::HalfOpen => "half_open",
    };
    Json::obj(vec![
        ("addr".to_string(), Json::Str(backend.addr.clone())),
        (
            "up".to_string(),
            Json::Bool(backend.up.load(Ordering::SeqCst)),
        ),
        (
            "seen_healthy".to_string(),
            Json::Bool(backend.seen_healthy.load(Ordering::SeqCst)),
        ),
        ("breaker".to_string(), Json::Str(breaker.to_string())),
    ])
}

fn handle_readyz(shared: &Shared, proxy: &ProxyTier) -> Response {
    let ready = proxy.ready.load(Ordering::SeqCst);
    let body = Json::obj(vec![
        ("ready".to_string(), Json::Bool(ready)),
        (
            "backends".to_string(),
            Json::Arr(proxy.backends.iter().map(|b| backend_json(b)).collect()),
        ),
    ])
    .render();
    if ready {
        Response::json(200, body)
    } else {
        Response::json(503, body).with_header("Retry-After", retry_after_value(&shared.config))
    }
}

fn handle_metrics(shared: &Shared, proxy: &ProxyTier) -> Response {
    let mut body = shared.metrics.render_core();
    body.push_str(&render_proxy(proxy));
    Response::text(200, body)
}

/// Render the proxy-tier Prometheus families: tier-wide gauges plus one
/// sample per backend under each per-backend family (`# TYPE` emitted
/// once per family; backend addresses are operator input, so their label
/// values are escaped).
fn render_proxy(proxy: &ProxyTier) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# TYPE dbselectd_proxy_ready gauge\n\
         dbselectd_proxy_ready {}\n\
         # TYPE dbselectd_proxy_backends gauge\n\
         dbselectd_proxy_backends {}\n\
         # TYPE dbselectd_proxy_degraded_total counter\n\
         dbselectd_proxy_degraded_total {}\n",
        proxy.ready.load(Ordering::SeqCst) as u64,
        proxy.backends.len(),
        proxy.degraded_total.load(Ordering::Relaxed),
    ));
    type BackendSample = fn(&Backend) -> u64;
    let families: [(&str, &str, BackendSample); 7] = [
        ("dbselectd_backend_up", "gauge", |b| {
            b.up.load(Ordering::SeqCst) as u64
        }),
        ("dbselectd_backend_breaker_state", "gauge", |b| {
            b.breaker.state() as u64
        }),
        ("dbselectd_backend_breaker_opens_total", "counter", |b| {
            b.breaker.opens_total.load(Ordering::Relaxed)
        }),
        ("dbselectd_backend_failures_total", "counter", |b| {
            b.failures_total.load(Ordering::Relaxed)
        }),
        ("dbselectd_backend_retries_total", "counter", |b| {
            b.retries_total.load(Ordering::Relaxed)
        }),
        ("dbselectd_backend_hedges_total", "counter", |b| {
            b.hedges_total.load(Ordering::Relaxed)
        }),
        ("dbselectd_backend_hedges_won_total", "counter", |b| {
            b.hedges_won_total.load(Ordering::Relaxed)
        }),
    ];
    for (name, kind, read) in families {
        out.push_str(&format!("# TYPE {name} {kind}\n"));
        for backend in &proxy.backends {
            out.push_str(&format!(
                "{name}{{backend=\"{}\"}} {}\n",
                escape_label_value(&backend.addr),
                read(backend),
            ));
        }
    }
    out.push_str("# TYPE dbselectd_backend_request_duration_seconds summary\n");
    for backend in &proxy.backends {
        let label = escape_label_value(&backend.addr);
        let h = &backend.latency;
        out.push_str(&format!(
            "dbselectd_backend_request_duration_seconds{{backend=\"{label}\",quantile=\"0.5\"}} {}\n\
             dbselectd_backend_request_duration_seconds{{backend=\"{label}\",quantile=\"0.99\"}} {}\n\
             dbselectd_backend_request_duration_seconds_count{{backend=\"{label}\"}} {}\n\
             dbselectd_backend_request_duration_seconds_sum{{backend=\"{label}\"}} {}\n",
            h.percentile(0.50) as f64 / 1e9,
            h.percentile(0.99) as f64 / 1e9,
            h.count(),
            h.sum_nanos() as f64 / 1e9,
        ));
    }
    out
}

/// The health checker, spawned by [`Server::run`](crate::Server::run) in
/// proxy mode. Probes every backend's `/healthz` each interval, feeds the
/// `up` gauge and the breaker state machine, and flips the tier's sticky
/// readiness flag once every backend has been seen healthy.
pub(crate) fn health_loop(shared: &Shared) {
    let Some(proxy) = shared.proxy.as_ref() else {
        return;
    };
    let interval = proxy.config.health_interval.max(Duration::from_millis(10));
    loop {
        for backend in &proxy.backends {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            backend.breaker.begin_tick();
            let probe_deadline = Instant::now() + interval.min(Duration::from_secs(1));
            let healthy = backend
                .pool
                .request("GET", "/healthz", b"", probe_deadline)
                .map(|r| r.status == 200)
                .unwrap_or(false);
            backend.up.store(healthy, Ordering::SeqCst);
            if healthy {
                backend.seen_healthy.store(true, Ordering::SeqCst);
            } else {
                // Whatever is pooled points at a backend that just
                // failed a probe; start the next attempt fresh.
                backend.pool.drain();
            }
            backend.breaker.on_probe(healthy);
        }
        if !proxy.ready.load(Ordering::SeqCst)
            && proxy
                .backends
                .iter()
                .all(|b| b.seen_healthy.load(Ordering::SeqCst))
        {
            proxy.ready.store(true, Ordering::SeqCst);
        }
        // Chunked sleep so shutdown is observed within ~25ms.
        let wake = Instant::now() + interval;
        while Instant::now() < wake {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(25).min(interval));
        }
    }
}

/// One shard's fate after the full retry/hedge budget.
enum ShardOutcome<T> {
    /// A parsed partial result.
    Ok(T),
    /// The backend answered 4xx: deterministic client error, forwarded
    /// verbatim without retry.
    ClientError(ClientResponse),
    /// Transport failure, backend 5xx, or unparseable body — after all
    /// retries. The shard is treated as missing.
    Failed,
}

/// Fan one request body per shard out to all backends, each with its own
/// retry/hedge budget, and collect per-shard outcomes. Blocks until every
/// shard resolves (bounded by the deadline minus the merge reserve).
fn scatter<T: Send>(
    proxy: &ProxyTier,
    path: &str,
    bodies: &[Vec<u8>],
    deadline: Instant,
    parse: &(dyn Fn(&[u8]) -> Option<T> + Sync),
) -> Vec<ShardOutcome<T>> {
    let shard_deadline = deadline
        .checked_sub(MERGE_RESERVE)
        .unwrap_or(deadline)
        .max(Instant::now());
    std::thread::scope(|scope| {
        let handles: Vec<_> = proxy
            .backends
            .iter()
            .zip(bodies)
            .map(|(backend, body)| {
                scope.spawn(move || {
                    fetch_shard(
                        scope,
                        &proxy.config,
                        backend,
                        path,
                        body,
                        shard_deadline,
                        parse,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or(ShardOutcome::Failed))
            .collect()
    })
}

/// Exponential backoff with full jitter: uniform in `[2^a·base/2, 2^a·base]`.
fn backoff_delay(base: Duration, attempt: u32, backend: &Backend) -> Duration {
    let exp = base.saturating_mul(1u32 << attempt.saturating_sub(1).min(8));
    let nanos = exp.as_nanos().min(u64::MAX as u128) as u64;
    let half = nanos / 2;
    Duration::from_nanos(half + backend.next_jitter() % (half + 1))
}

/// Resolve one shard: up to `retries + 1` attempts, each given an equal
/// split of the remaining budget (the final attempt inherits whatever is
/// left), with backoff between attempts and an optional hedge inside
/// each.
fn fetch_shard<'s, T: Send + 's>(
    scope: &'s std::thread::Scope<'s, '_>,
    config: &ProxyConfig,
    backend: &'s Arc<Backend>,
    path: &'s str,
    body: &'s [u8],
    deadline: Instant,
    parse: &(dyn Fn(&[u8]) -> Option<T> + Sync),
) -> ShardOutcome<T> {
    let attempts = config.retries + 1;
    for attempt in 0..attempts {
        if attempt > 0 {
            let delay = backoff_delay(config.backoff_base, attempt, backend);
            if Instant::now() + delay >= deadline {
                return ShardOutcome::Failed;
            }
            std::thread::sleep(delay);
            backend.retries_total.fetch_add(1, Ordering::Relaxed);
        }
        if !backend.breaker.allows() {
            return ShardOutcome::Failed;
        }
        let now = Instant::now();
        let Some(remaining) = deadline.checked_duration_since(now) else {
            return ShardOutcome::Failed;
        };
        let attempt_deadline = now + remaining / (attempts - attempt);
        let started = Instant::now();
        match attempt_once(scope, config, backend, path, body, attempt_deadline) {
            Some(response) if (400..500).contains(&response.status) => {
                // The backend parsed and rejected the request: transport
                // is fine, and a retry would be rejected identically.
                backend.breaker.record_success();
                return ShardOutcome::ClientError(response);
            }
            Some(response) if response.status == 200 => {
                if let Some(parsed) = parse(&response.body) {
                    backend.latency.observe(started.elapsed().as_nanos() as u64);
                    backend.breaker.record_success();
                    return ShardOutcome::Ok(parsed);
                }
                // 200 wrapping garbage is as much a backend failure as a
                // torn connection; count it and retry.
                backend.failures_total.fetch_add(1, Ordering::Relaxed);
                backend.breaker.record_failure();
            }
            Some(_) | None => {
                backend.failures_total.fetch_add(1, Ordering::Relaxed);
                backend.breaker.record_failure();
            }
        }
    }
    ShardOutcome::Failed
}

/// The hedge delay for one attempt, clamped into `[1ms, remaining/2]`
/// (hedging inside the last half of the budget would race a request that
/// cannot finish anyway).
fn hedge_delay(config: &ProxyConfig, backend: &Backend, deadline: Instant) -> Option<Duration> {
    let remaining = deadline.checked_duration_since(Instant::now())?;
    let floor = Duration::from_millis(1);
    let cap = (remaining / 2).max(floor);
    match config.hedge {
        HedgePolicy::Off => None,
        HedgePolicy::Fixed(d) => Some(d.clamp(floor, cap)),
        HedgePolicy::Auto => {
            if backend.latency.count() < HEDGE_MIN_SAMPLES {
                return None;
            }
            Some(Duration::from_nanos(backend.latency.percentile(0.99)).clamp(floor, cap))
        }
    }
}

/// One attempt against one backend, optionally racing a hedged twin: the
/// primary request starts immediately; if no answer arrives within the
/// hedge delay, an identical request is launched and the first successful
/// response of the two wins.
fn attempt_once<'s>(
    scope: &'s std::thread::Scope<'s, '_>,
    config: &ProxyConfig,
    backend: &'s Arc<Backend>,
    path: &'s str,
    body: &'s [u8],
    deadline: Instant,
) -> Option<ClientResponse> {
    let (tx, rx) = mpsc::channel::<(bool, Option<ClientResponse>)>();
    let primary_tx = tx.clone();
    let primary = Arc::clone(backend);
    scope.spawn(move || {
        let result = primary.pool.request("POST", path, body, deadline).ok();
        let _ = primary_tx.send((false, result));
    });

    let harvest = |rx: &mpsc::Receiver<(bool, Option<ClientResponse>)>, outstanding: u32| {
        let mut left = outstanding;
        while left > 0 {
            let wait = deadline.saturating_duration_since(Instant::now()) + HARVEST_GRACE;
            match rx.recv_timeout(wait) {
                Ok((is_hedge, Some(response))) => {
                    if is_hedge {
                        backend.hedges_won_total.fetch_add(1, Ordering::Relaxed);
                    }
                    return Some(response);
                }
                Ok((_, None)) => left -= 1,
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                    return None
                }
            }
        }
        None
    };

    let Some(delay) = hedge_delay(config, backend, deadline) else {
        return harvest(&rx, 1);
    };
    match rx.recv_timeout(delay) {
        Ok((_, result)) => result,
        Err(RecvTimeoutError::Disconnected) => None,
        Err(RecvTimeoutError::Timeout) => {
            backend.hedges_total.fetch_add(1, Ordering::Relaxed);
            let hedge = Arc::clone(backend);
            scope.spawn(move || {
                let result = hedge.pool.request("POST", path, body, deadline).ok();
                let _ = tx.send((true, result));
            });
            harvest(&rx, 2)
        }
    }
}

/// One entry of a backend's partial ranking, carrying everything needed
/// to re-render the monolithic body byte-for-byte (scores round-trip
/// exactly through [`Json::Num`]).
struct PartialEntry {
    index: usize,
    database: String,
    category: String,
    score: f64,
    shrinkage_used: bool,
}

fn parse_partial_entries(ranking: &[Json]) -> Option<Vec<PartialEntry>> {
    ranking
        .iter()
        .map(|entry| {
            Some(PartialEntry {
                index: entry.get("index")?.as_u64()? as usize,
                database: entry.get("database")?.as_str()?.to_string(),
                category: entry.get("category")?.as_str()?.to_string(),
                score: entry.get("score")?.as_f64()?,
                shrinkage_used: match entry.get("shrinkage_used")? {
                    Json::Bool(b) => *b,
                    _ => return None,
                },
            })
        })
        .collect()
}

/// A backend's `/route` partial response, parsed.
struct RouteReply {
    generation: u64,
    unknown: Json,
    entries: Vec<PartialEntry>,
}

fn parse_route_reply(bytes: &[u8]) -> Option<RouteReply> {
    let json = Json::parse(std::str::from_utf8(bytes).ok()?).ok()?;
    Some(RouteReply {
        generation: json.get("generation")?.as_u64()?,
        unknown: json.get("unknown")?.clone(),
        entries: parse_partial_entries(json.get("ranking")?.as_array()?)?,
    })
}

/// One query's partial result from a backend: its `unknown` words and
/// the shard's scored entries.
type QueryPartial = (Json, Vec<PartialEntry>);

/// A backend's `/route_batch` partial response, parsed: one
/// `(unknown, entries)` per query.
struct BatchReply {
    generation: u64,
    results: Vec<QueryPartial>,
}

fn parse_batch_reply(bytes: &[u8]) -> Option<BatchReply> {
    let json = Json::parse(std::str::from_utf8(bytes).ok()?).ok()?;
    let results = json
        .get("results")?
        .as_array()?
        .iter()
        .map(|r| {
            Some((
                r.get("unknown")?.clone(),
                parse_partial_entries(r.get("ranking")?.as_array()?)?,
            ))
        })
        .collect::<Option<Vec<_>>>()?;
    Some(BatchReply {
        generation: json.get("generation")?.as_u64()?,
        results,
    })
}

/// Forward a backend's 4xx verbatim.
fn forward(response: ClientResponse) -> Response {
    Response::json(
        response.status,
        String::from_utf8_lossy(&response.body).into_owned(),
    )
}

/// All shards down: the one case the proxy answers 5xx.
fn all_shards_down(shared: &Shared) -> Response {
    Response::error(503, "all shards unavailable")
        .with_header("Retry-After", retry_after_value(&shared.config))
}

/// Validate a client body for proxying and produce the per-shard bodies:
/// the client body with `"shard": i` appended. Returns the parsed `k`
/// for final truncation.
fn shard_bodies(body: &Json, shards: usize) -> Vec<Vec<u8>> {
    (0..shards)
        .map(|i| {
            let Json::Obj(fields) = body else {
                unreachable!("validated as an object before scatter");
            };
            let mut fields = fields.clone();
            fields.push(("shard".to_string(), Json::Num(i as f64)));
            Json::Obj(fields).render().into_bytes()
        })
        .collect()
}

/// Merge per-shard partial rankings and render the monolithic `ranking`
/// array (rank re-numbered 1-based, truncated to `k`).
fn merged_ranking_json(shards: &[Option<Vec<PartialEntry>>], k: usize) -> (Json, Vec<usize>) {
    let rankings: Vec<Option<Vec<RankedDatabase>>> = shards
        .iter()
        .map(|shard| {
            shard.as_ref().map(|entries| {
                entries
                    .iter()
                    .map(|e| RankedDatabase {
                        index: e.index,
                        score: e.score,
                    })
                    .collect()
            })
        })
        .collect();
    let merged = merge_partial_rankings(&rankings);
    let mut by_index: std::collections::HashMap<usize, &PartialEntry> =
        std::collections::HashMap::new();
    for entry in shards.iter().flatten().flatten() {
        by_index.insert(entry.index, entry);
    }
    let ranking = Json::Arr(
        merged
            .ranking
            .iter()
            .take(k)
            .enumerate()
            .map(|(rank, r)| {
                let entry = by_index[&r.index];
                Json::obj(vec![
                    ("rank".to_string(), Json::Num((rank + 1) as f64)),
                    ("database".to_string(), Json::Str(entry.database.clone())),
                    ("category".to_string(), Json::Str(entry.category.clone())),
                    ("score".to_string(), Json::Num(entry.score)),
                    (
                        "shrinkage_used".to_string(),
                        Json::Bool(entry.shrinkage_used),
                    ),
                ])
            })
            .collect(),
    );
    (ranking, merged.missing)
}

/// Append the degradation markers to a response object's fields. They go
/// *after* the monolithic fields so a healthy proxy body stays
/// byte-identical to the monolithic daemon's.
fn push_degradation(fields: &mut Vec<(String, Json)>, missing: &[usize]) {
    fields.push(("degraded".to_string(), Json::Bool(true)));
    fields.push((
        "missing_shards".to_string(),
        Json::Arr(missing.iter().map(|&i| Json::Num(i as f64)).collect()),
    ));
}

fn handle_route(
    shared: &Shared,
    proxy: &ProxyTier,
    request: &Request,
    deadline: Instant,
) -> Response {
    let body = match crate::parse_body(request) {
        Ok(body) => body,
        Err(response) => return response,
    };
    if !matches!(body, Json::Obj(_)) {
        return Response::error(400, "body must be a JSON object");
    }
    if body.get("shard").is_some() {
        return Response::error(400, "`shard` is reserved for proxy-to-backend requests");
    }
    // Validate routing params up front: a malformed request earns its
    // 400 here, without burning a scatter.
    let params = match crate::parse_route_params(&body) {
        Ok(params) => params,
        Err(response) => return response,
    };
    if body.get("query").is_none() {
        return Response::error(400, "missing `query`");
    }

    let bodies = shard_bodies(&body, proxy.backends.len());
    let outcomes = scatter(proxy, "/route", &bodies, deadline, &parse_route_reply);

    let mut generation = 0u64;
    let mut unknown: Option<Json> = None;
    let mut shards: Vec<Option<Vec<PartialEntry>>> = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        match outcome {
            ShardOutcome::ClientError(response) => return forward(response),
            ShardOutcome::Ok(reply) => {
                generation = generation.max(reply.generation);
                if unknown.is_none() {
                    unknown = Some(reply.unknown);
                }
                shards.push(Some(reply.entries));
            }
            ShardOutcome::Failed => shards.push(None),
        }
    }
    let Some(unknown) = unknown else {
        return all_shards_down(shared);
    };

    let (ranking, missing) = merged_ranking_json(&shards, params.k);
    let mut fields = vec![
        ("generation".to_string(), Json::Num(generation as f64)),
        ("unknown".to_string(), unknown),
        ("ranking".to_string(), ranking),
    ];
    if !missing.is_empty() {
        proxy.degraded_total.fetch_add(1, Ordering::Relaxed);
        push_degradation(&mut fields, &missing);
    }
    Response::json(200, Json::obj(fields).render())
}

fn handle_route_batch(
    shared: &Shared,
    proxy: &ProxyTier,
    request: &Request,
    deadline: Instant,
) -> Response {
    let body = match crate::parse_body(request) {
        Ok(body) => body,
        Err(response) => return response,
    };
    if !matches!(body, Json::Obj(_)) {
        return Response::error(400, "body must be a JSON object");
    }
    if body.get("shard").is_some() {
        return Response::error(400, "`shard` is reserved for proxy-to-backend requests");
    }
    let params = match crate::parse_route_params(&body) {
        Ok(params) => params,
        Err(response) => return response,
    };
    let Some(queries) = body.get("queries").and_then(Json::as_array) else {
        return Response::error(400, "missing `queries` array");
    };
    if queries.len() > crate::MAX_BATCH {
        return Response::error(413, &format!("batch exceeds {} queries", crate::MAX_BATCH));
    }
    let query_count = queries.len();

    let bodies = shard_bodies(&body, proxy.backends.len());
    let outcomes = scatter(proxy, "/route_batch", &bodies, deadline, &parse_batch_reply);

    let mut generation = 0u64;
    // Per shard, per query: the shard's partial entries (a shard whose
    // result count disagrees with the request is as broken as a missing
    // one).
    let mut shards: Vec<Option<Vec<QueryPartial>>> = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        match outcome {
            ShardOutcome::ClientError(response) => return forward(response),
            ShardOutcome::Ok(reply) if reply.results.len() == query_count => {
                generation = generation.max(reply.generation);
                shards.push(Some(reply.results));
            }
            ShardOutcome::Ok(_) | ShardOutcome::Failed => shards.push(None),
        }
    }
    if shards.iter().all(Option::is_none) {
        return all_shards_down(shared);
    }

    let mut missing_overall: Vec<usize> = Vec::new();
    for (i, shard) in shards.iter().enumerate() {
        if shard.is_none() {
            missing_overall.push(i);
        }
    }
    let results = Json::Arr(
        (0..query_count)
            .map(|qi| {
                let per_query: Vec<Option<Vec<PartialEntry>>> = shards
                    .iter_mut()
                    .map(|shard| {
                        shard
                            .as_mut()
                            .map(|results| std::mem::take(&mut results[qi].1))
                    })
                    .collect();
                let unknown = shards
                    .iter()
                    .flatten()
                    .map(|results| results[qi].0.clone())
                    .next()
                    .unwrap_or(Json::Arr(Vec::new()));
                let (ranking, _) = merged_ranking_json(&per_query, params.k);
                Json::obj(vec![
                    ("unknown".to_string(), unknown),
                    ("ranking".to_string(), ranking),
                ])
            })
            .collect(),
    );
    let mut fields = vec![
        ("generation".to_string(), Json::Num(generation as f64)),
        ("results".to_string(), results),
    ];
    if !missing_overall.is_empty() {
        proxy.degraded_total.fetch_add(1, Ordering::Relaxed);
        push_degradation(&mut fields, &missing_overall);
    }
    Response::json(200, Json::obj(fields).render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_breaker() -> Breaker {
        Breaker::new(3, Duration::from_millis(50))
    }

    #[test]
    fn breaker_opens_after_threshold_and_recovers_via_half_open() {
        let b = test_breaker();
        assert!(b.allows());
        b.record_failure();
        b.record_failure();
        assert!(b.allows(), "below threshold stays closed");
        b.record_failure();
        assert!(!b.allows(), "threshold trips the breaker");
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens_total.load(Ordering::Relaxed), 1);

        // Before the cooldown, a tick must not move to half-open.
        b.begin_tick();
        assert_eq!(b.state(), BreakerState::Open);

        std::thread::sleep(Duration::from_millis(60));
        b.begin_tick();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allows(), "half-open admits probes, not requests");
        b.on_probe(true);
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allows());
    }

    #[test]
    fn failed_half_open_probe_reopens() {
        let b = test_breaker();
        for _ in 0..3 {
            b.record_failure();
        }
        std::thread::sleep(Duration::from_millis(60));
        b.begin_tick();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_probe(false);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens_total.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let b = test_breaker();
        b.record_failure();
        b.record_failure();
        b.record_success();
        b.record_failure();
        b.record_failure();
        assert!(b.allows(), "streak was reset; 2 < 3 failures since");
    }

    #[test]
    fn closed_breaker_counts_probe_failures_too() {
        let b = test_breaker();
        b.on_probe(false);
        b.on_probe(false);
        b.on_probe(false);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn backoff_is_bounded_and_jittered() {
        let config = ProxyConfig::default();
        let backend = Backend::new("127.0.0.1:1".to_string(), &config, 7);
        for attempt in 1..=4u32 {
            let base = Duration::from_millis(10);
            let exp = base * (1 << (attempt - 1));
            for _ in 0..32 {
                let d = backoff_delay(base, attempt, &backend);
                assert!(d >= exp / 2 && d <= exp, "attempt {attempt}: {d:?}");
            }
        }
    }

    #[test]
    fn merged_ranking_reports_missing_and_renumbers() {
        let entry = |index: usize, score: f64| PartialEntry {
            index,
            database: format!("db{index}"),
            category: "Root".to_string(),
            score,
            shrinkage_used: false,
        };
        let shards = vec![
            Some(vec![entry(0, 3.0), entry(2, 1.0)]),
            None,
            Some(vec![entry(1, 2.0)]),
        ];
        let (ranking, missing) = merged_ranking_json(&shards, usize::MAX);
        assert_eq!(missing, vec![1]);
        let Json::Arr(items) = ranking else {
            panic!("ranking must be an array")
        };
        let names: Vec<&str> = items
            .iter()
            .map(|i| i.get("database").and_then(Json::as_str).expect("database"))
            .collect();
        assert_eq!(names, vec!["db0", "db1", "db2"]);
        let ranks: Vec<u64> = items
            .iter()
            .map(|i| i.get("rank").and_then(Json::as_u64).expect("rank"))
            .collect();
        assert_eq!(ranks, vec![1, 2, 3]);
    }

    #[test]
    fn shard_bodies_append_the_shard_field() {
        let body = Json::parse(r#"{"query":"heart","algo":"cori"}"#).expect("parse");
        let bodies = shard_bodies(&body, 2);
        assert_eq!(bodies.len(), 2);
        for (i, bytes) in bodies.iter().enumerate() {
            let json = Json::parse(std::str::from_utf8(bytes).expect("utf8")).expect("json");
            assert_eq!(json.get("shard").and_then(Json::as_u64), Some(i as u64));
            assert_eq!(json.get("query").and_then(Json::as_str), Some("heart"));
        }
    }
}
