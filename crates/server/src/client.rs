//! A minimal std-only HTTP/1.1 client with per-backend keep-alive
//! connection pools — the outbound half of the proxy tier ([`crate::proxy`]).
//!
//! The daemon's routing endpoints are idempotent (a `/route` body plus a
//! seed fully determines the response), which lets this client be
//! aggressive about connection reuse: a pooled connection that fails in
//! any way — the backend restarted, the idle socket was reaped, the
//! response came back torn — is thrown away and the request transparently
//! retried once on a fresh connection. Deadlines are enforced the same
//! way the server side does it ([`crate::DeadlineStream`]'s pattern): the
//! socket timeout is re-armed against the absolute deadline before every
//! read and write, so a dribbling backend cannot reset the clock.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Idle connections kept per backend; beyond this, finished connections
/// are simply closed.
const MAX_IDLE: usize = 8;

/// Cap on the TCP connect itself, independent of the request deadline: a
/// SYN-blackholed backend must fail fast enough for the retry budget to
/// matter.
const CONNECT_CAP: Duration = Duration::from_secs(1);

/// Bounds on the response head, mirroring the server's request limits.
const MAX_STATUS_LINE: usize = 1024;
const MAX_HEADERS: usize = 128;
const MAX_HEADER_LINE: usize = 8 * 1024;

/// Largest response body accepted from a backend.
const MAX_RESPONSE_BODY: usize = 64 * 1024 * 1024;

/// A backend's answer: status code plus the complete body.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// The full response body (`Content-Length`-framed).
    pub body: Vec<u8>,
}

fn bad(detail: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail.to_string())
}

/// The client-side twin of the server's `DeadlineStream`: re-arms the
/// socket timeout against an absolute deadline before every syscall, so
/// total time on the wire is bounded by the deadline, not per-`recv`.
struct DeadlineIo {
    stream: TcpStream,
    deadline: Instant,
}

impl DeadlineIo {
    fn remaining(&self) -> io::Result<Duration> {
        let now = Instant::now();
        if now >= self.deadline {
            return Err(io::Error::new(io::ErrorKind::TimedOut, "deadline exceeded"));
        }
        Ok(self.deadline - now)
    }
}

impl Read for DeadlineIo {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.stream.set_read_timeout(Some(self.remaining()?))?;
        self.stream.read(buf)
    }
}

impl Write for DeadlineIo {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.stream.set_write_timeout(Some(self.remaining()?))?;
        self.stream.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.stream.flush()
    }
}

/// A keep-alive connection pool to one backend address.
#[derive(Debug)]
pub struct Pool {
    addr: String,
    idle: Mutex<Vec<TcpStream>>,
}

impl Pool {
    /// A pool for `addr` (`host:port`); no connection is made until the
    /// first request.
    pub fn new(addr: impl Into<String>) -> Pool {
        Pool {
            addr: addr.into(),
            idle: Mutex::new(Vec::new()),
        }
    }

    /// The backend address this pool dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Issue one request and read the full response, all bounded by
    /// `deadline`. Reuses a pooled connection when one is idle; any
    /// failure on a *reused* connection triggers one transparent retry on
    /// a fresh connection (the reused socket may have been closed by the
    /// backend between requests — indistinguishable from a real error
    /// until we try). Errors from the fresh connection are final.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: &[u8],
        deadline: Instant,
    ) -> io::Result<ClientResponse> {
        if let Some(stream) = self.checkout() {
            if let Ok(response) = self.exchange(stream, method, path, body, deadline) {
                return Ok(response);
            }
        }
        let stream = self.connect(deadline)?;
        self.exchange(stream, method, path, body, deadline)
    }

    fn checkout(&self) -> Option<TcpStream> {
        self.idle.lock().expect("pool lock poisoned").pop()
    }

    fn checkin(&self, stream: TcpStream) {
        let mut idle = self.idle.lock().expect("pool lock poisoned");
        if idle.len() < MAX_IDLE {
            idle.push(stream);
        }
    }

    /// Drop every pooled connection (the breaker opened; the sockets are
    /// likely dead anyway).
    pub fn drain(&self) {
        self.idle.lock().expect("pool lock poisoned").clear();
    }

    fn connect(&self, deadline: Instant) -> io::Result<TcpStream> {
        let now = Instant::now();
        if now >= deadline {
            return Err(io::Error::new(io::ErrorKind::TimedOut, "deadline exceeded"));
        }
        let budget = (deadline - now).min(CONNECT_CAP);
        let mut last: Option<io::Error> = None;
        for addr in self.addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&addr, budget) {
                Ok(stream) => {
                    // Same rationale as the server side: without nodelay,
                    // Nagle + delayed ACK adds ~40ms to every kept-alive
                    // round trip.
                    let _ = stream.set_nodelay(true);
                    return Ok(stream);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("`{}` resolved to no address", self.addr),
            )
        }))
    }

    fn exchange(
        &self,
        stream: TcpStream,
        method: &str,
        path: &str,
        body: &[u8],
        deadline: Instant,
    ) -> io::Result<ClientResponse> {
        let mut writer = DeadlineIo {
            stream: stream.try_clone()?,
            deadline,
        };
        writer.write_all(&request_bytes(method, path, &self.addr, body))?;
        let mut reader = BufReader::new(DeadlineIo { stream, deadline });
        let (response, keep_alive) = read_client_response(&mut reader)?;
        // Reuse only a connection with nothing left in flight: stray
        // buffered bytes would corrupt the next response's framing.
        if keep_alive && reader.buffer().is_empty() {
            self.checkin(reader.into_inner().stream);
        }
        Ok(response)
    }
}

/// Serialize one request. `Content-Length` is always present (including
/// `0` on GETs) so the backend never waits for a body that is not coming.
pub fn request_bytes(method: &str, path: &str, host: &str, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(128 + body.len());
    write!(
        out,
        "{method} {path} HTTP/1.1\r\nHost: {host}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .expect("writing into a Vec cannot fail");
    out.extend_from_slice(body);
    out
}

/// Read one line up to `cap` bytes, stripping the trailing `\r\n` /
/// `\n`. EOF mid-line is an error — responses are `Content-Length`
/// framed, so a clean close can only happen between responses.
fn read_line_bounded<R: BufRead>(r: &mut R, cap: usize) -> io::Result<String> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let (done, used) = {
            let buf = r.fill_buf()?;
            if buf.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-response",
                ));
            }
            match buf.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    line.extend_from_slice(&buf[..pos]);
                    (true, pos + 1)
                }
                None => {
                    line.extend_from_slice(buf);
                    (false, buf.len())
                }
            }
        };
        r.consume(used);
        if line.len() > cap {
            return Err(bad("response line too long"));
        }
        if done {
            break;
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| bad("response line is not UTF-8"))
}

/// Parse one response off the wire. Returns the response and whether the
/// connection may be reused (HTTP/1.1 without `Connection: close`).
/// `Content-Length` is required: the daemon always sends it, and exact
/// framing is what makes a mid-body close detectable instead of looking
/// like a short-but-complete body.
fn read_client_response<R: BufRead>(r: &mut R) -> io::Result<(ClientResponse, bool)> {
    let status_line = read_line_bounded(r, MAX_STATUS_LINE)?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(bad("not an HTTP/1.x response"));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;

    let mut content_length: Option<usize> = None;
    let mut close = version != "HTTP/1.1";
    let mut seen = 0usize;
    loop {
        let line = read_line_bounded(r, MAX_HEADER_LINE)?;
        if line.is_empty() {
            break;
        }
        seen += 1;
        if seen > MAX_HEADERS {
            return Err(bad("too many response headers"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad("malformed response header"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = Some(
                    value
                        .parse::<usize>()
                        .map_err(|_| bad("unparseable Content-Length"))?,
                );
            }
            "connection" => {
                for token in value.split(',') {
                    if token.trim().eq_ignore_ascii_case("close") {
                        close = true;
                    }
                }
            }
            _ => {}
        }
    }
    let len = content_length.ok_or_else(|| bad("response without Content-Length"))?;
    if len > MAX_RESPONSE_BODY {
        return Err(bad("response body too large"));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok((ClientResponse { status, body }, !close))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn deadline() -> Instant {
        Instant::now() + Duration::from_secs(5)
    }

    /// A scripted backend: serves `per_conn` responses per connection,
    /// then closes it, counting accepted connections.
    fn scripted_backend(response: &'static str, per_conn: usize) -> (String, Arc<AtomicUsize>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let accepted = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&accepted);
        std::thread::spawn(move || {
            for stream in listener.incoming().flatten() {
                counter.fetch_add(1, Ordering::SeqCst);
                let mut stream = stream;
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                    for _ in 0..per_conn {
                        // Read the request head + Content-Length body.
                        let mut len = 0usize;
                        loop {
                            let mut line = String::new();
                            if reader.read_line(&mut line).unwrap_or(0) == 0 {
                                return;
                            }
                            let trimmed = line.trim();
                            if trimmed.is_empty() {
                                break;
                            }
                            if let Some(v) = trimmed
                                .to_ascii_lowercase()
                                .strip_prefix("content-length:")
                                .map(str::trim)
                            {
                                len = v.parse().unwrap_or(0);
                            }
                        }
                        let mut body = vec![0u8; len];
                        if reader.read_exact(&mut body).is_err() {
                            return;
                        }
                        if stream.write_all(response.as_bytes()).is_err() {
                            return;
                        }
                    }
                });
            }
        });
        (addr, accepted)
    }

    const OK: &str =
        "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\r\n{}";

    #[test]
    fn keep_alive_reuses_one_connection() {
        let (addr, accepted) = scripted_backend(OK, 10);
        let pool = Pool::new(addr);
        for _ in 0..3 {
            let response = pool
                .request("POST", "/route", b"{\"q\":1}", deadline())
                .expect("request");
            assert_eq!(response.status, 200);
            assert_eq!(response.body, b"{}");
        }
        assert_eq!(
            accepted.load(Ordering::SeqCst),
            1,
            "three requests must share one pooled connection"
        );
    }

    #[test]
    fn stale_pooled_connection_is_retried_transparently() {
        // One response per connection: the pooled socket is dead by the
        // time the second request reuses it.
        let (addr, accepted) = scripted_backend(OK, 1);
        let pool = Pool::new(addr);
        for _ in 0..3 {
            let response = pool
                .request("POST", "/route", b"{}", deadline())
                .expect("request survives the stale connection");
            assert_eq!(response.status, 200);
        }
        assert_eq!(accepted.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn missing_content_length_is_an_error() {
        let (addr, _) = scripted_backend("HTTP/1.1 200 OK\r\n\r\n", 1);
        let pool = Pool::new(addr);
        let err = pool
            .request("GET", "/healthz", b"", deadline())
            .expect_err("unframed response must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn mid_body_close_is_detected() {
        // Content-Length promises 100 bytes; only 2 arrive before close.
        let (addr, _) = scripted_backend("HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\n{}", 1);
        let pool = Pool::new(addr);
        let err = pool
            .request("POST", "/route", b"{}", deadline())
            .expect_err("torn body must fail");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn connection_close_header_disables_reuse() {
        let (addr, accepted) = scripted_backend(
            "HTTP/1.1 200 OK\r\nConnection: close\r\nContent-Length: 2\r\n\r\n{}",
            10,
        );
        let pool = Pool::new(addr);
        for _ in 0..2 {
            let response = pool
                .request("POST", "/route", b"{}", deadline())
                .expect("request");
            assert_eq!(response.status, 200);
        }
        assert_eq!(
            accepted.load(Ordering::SeqCst),
            2,
            "Connection: close must prevent pooling"
        );
    }

    #[test]
    fn connect_refused_is_an_error() {
        // Bind-then-drop guarantees an unused port.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr").to_string()
        };
        let pool = Pool::new(addr);
        assert!(pool.request("GET", "/healthz", b"", deadline()).is_err());
    }
}
