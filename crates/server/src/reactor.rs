//! The connection reactor: one thread owning all connection I/O.
//!
//! Connections live in a slab, addressed by generation-tagged tokens
//! (`slot | gen << 32`) so a completion or timer firing for a connection
//! that has since closed — and whose slot was reused — is recognized as
//! stale and dropped instead of poking the new tenant (the classic
//! fd-reuse ABA). Each connection is a small state machine:
//!
//! ```text
//!              ┌────────────────────────────┐
//!   accept ──► │ Reading ──► Executing ──►  │ Writing ──► Idle
//!              │   ▲   (worker pool, via    │   │           │
//!              │   │    task + completion   │   │           │ next request
//!              │   │    queues + wakeup)    │   │           ▼ (or leftover
//!              │   └────────────────────────┼───┴──────── Reading  bytes)
//!              │ parse error / 408 / 503 ──►│ Writing ──► Draining ──► closed
//!              └────────────────────────────┘  (lingering close)
//! ```
//!
//! Every deadline — request read, idle reap, write grace, linger bound —
//! is an absolute [`TimerWheel`] entry; there are no per-syscall OS
//! timeouts anywhere on this path. Timers cancel lazily: arming bumps the
//! connection's `timer_gen`, and a fired entry whose generation no longer
//! matches is ignored.
//!
//! Interest discipline: a connection waits in at most one direction.
//! While `Executing` its fd is deregistered entirely — a level-triggered
//! poller would otherwise spin on a peer hangup until the worker finishes
//! — and responses are first written optimistically, registering write
//! interest only after a real `EAGAIN`.

use std::io::{self, Read as _, Write as _};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd as _;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::http::{try_parse, write_response, ParseStatus, Response};
use crate::metrics::ConnState;
use crate::poller::{new_poller, Event, Interest, Poller};
use crate::timer::TimerWheel;
use crate::{
    retry_after_value, Completion, Shared, Task, ERROR_WRITE_GRACE, LINGER_DRAIN, LINGER_DRAIN_MAX,
};

/// Timer-wheel granularity. Every deadline the daemon enforces is tens of
/// milliseconds or more, so firing up to one tick late is invisible
/// next to the 2s write grace.
const TICK: Duration = Duration::from_millis(20);
const SLOTS: usize = 512;

/// Bytes read per `read` call. Also the increment in which a pipelining
/// client can grow `rbuf` past one complete request — parsing after every
/// chunk stops reading as soon as a request completes, so kernel-buffer
/// backpressure (not memory) absorbs over-eager senders.
const READ_CHUNK: usize = 16 * 1024;

const WAKE_TOKEN: u64 = u64::MAX;
const LISTEN_TOKEN: u64 = u64::MAX - 1;

fn token(slot: usize, gen: u32) -> u64 {
    slot as u64 | ((gen as u64) << 32)
}

fn split_token(token: u64) -> (usize, u32) {
    ((token & 0xFFFF_FFFF) as usize, (token >> 32) as u32)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Accumulating request bytes; the request deadline is armed.
    Reading,
    /// A parsed request is queued or running on a worker; fd
    /// deregistered, no timer (the worker enforces the deadline, the
    /// write timer takes over at completion).
    Executing,
    /// Flushing a serialized response; write-grace timer armed.
    Writing,
    /// Kept-alive between requests; idle timer armed.
    Idle,
    /// Lingering close: response flushed, write side shut down, draining
    /// the peer's unread bytes so the kernel's RST cannot eat the
    /// response; bounded in time and bytes.
    Draining,
}

impl Phase {
    fn state(self) -> ConnState {
        match self {
            Phase::Reading => ConnState::Reading,
            Phase::Executing => ConnState::Executing,
            Phase::Writing => ConnState::Writing,
            Phase::Idle => ConnState::Idle,
            Phase::Draining => ConnState::Draining,
        }
    }
}

struct Conn {
    stream: TcpStream,
    gen: u32,
    phase: Phase,
    /// What the poller currently watches for this fd (`None` =
    /// deregistered).
    interest: Option<Interest>,
    /// Received-but-unparsed bytes (may hold pipelined requests).
    rbuf: Vec<u8>,
    /// Serialized response being flushed.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Requests served on this connection (for the keep-alive cap).
    served: usize,
    /// Current request's absolute deadline.
    deadline: Instant,
    /// Lazy timer cancellation: only a firing with the latest generation
    /// is honored.
    timer_gen: u64,
    close_after_write: bool,
    /// Close via the Draining phase (response written after a partial
    /// request read — unread bytes would otherwise trigger an RST).
    linger_after_write: bool,
    /// Bytes swallowed while Draining.
    drained: usize,
}

struct Reactor<'a> {
    shared: &'a Shared,
    poller: Box<dyn Poller>,
    conns: Vec<Option<Conn>>,
    /// Per-slot generation counter; bumped on every (re)allocation.
    gens: Vec<u32>,
    free: Vec<usize>,
    timer: TimerWheel,
    open: usize,
}

/// Run the reactor until shutdown: returns once every connection has
/// closed. Workers must already be consuming `shared.tasks`.
pub(crate) fn run(listener: TcpListener, shared: &Arc<Shared>) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut poller = new_poller()?;
    poller.register(listener.as_raw_fd(), LISTEN_TOKEN, Interest::Read)?;
    poller.register(shared.wakeup.read_fd(), WAKE_TOKEN, Interest::Read)?;

    let mut reactor = Reactor {
        shared,
        poller,
        conns: Vec::new(),
        gens: Vec::new(),
        free: Vec::new(),
        timer: TimerWheel::new(TICK, SLOTS, Instant::now()),
        open: 0,
    };
    let mut events: Vec<Event> = Vec::new();
    let mut expired: Vec<(u64, u64)> = Vec::new();
    let mut accepting = true;

    loop {
        if shared.stop.load(Ordering::SeqCst) {
            if accepting {
                accepting = false;
                let _ = reactor.poller.deregister(listener.as_raw_fd());
            }
            // Connections not owed a response close now; Executing and
            // Writing ones finish flushing first (and close then, since
            // `stop` forces `close` on every completion).
            reactor.close_quiescent();
            if reactor.open == 0 {
                return Ok(());
            }
        }

        let timeout = reactor.timer.next_timeout(Instant::now());
        reactor.poller.wait(&mut events, timeout)?;
        shared
            .metrics
            .reactor_wakeups_total
            .fetch_add(1, Ordering::Relaxed);

        for event in std::mem::take(&mut events) {
            match event.token {
                WAKE_TOKEN => shared.wakeup.drain(),
                LISTEN_TOKEN => {
                    if accepting {
                        reactor.accept_all(&listener);
                    }
                }
                _ => reactor.on_event(event),
            }
        }

        while let Some(completion) = shared.completions.pop() {
            reactor.on_completion(completion);
        }

        reactor.timer.advance(Instant::now(), &mut expired);
        for (tok, timer_gen) in expired.drain(..) {
            reactor.on_timer(tok, timer_gen);
        }
    }
}

impl Reactor<'_> {
    fn eagain(&self) {
        self.shared
            .metrics
            .eagain_total
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Accept until the backlog is dry.
    fn accept_all(&mut self, listener: &TcpListener) {
        loop {
            match listener.accept() {
                Ok((stream, _)) => self.admit(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.eagain();
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // Transient per-connection accept failures (ECONNABORTED
                // and friends): skip the connection, keep the backlog
                // draining.
                Err(_) => return,
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        // Nagle + delayed ACK would add ~40ms per kept-alive response;
        // same opt-out as the threaded path.
        let _ = stream.set_nodelay(true);

        let slot = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.gens.push(0);
            self.conns.len() - 1
        });
        self.gens[slot] = self.gens[slot].wrapping_add(1);
        let gen = self.gens[slot];
        let now = Instant::now();
        // The first request's deadline is stamped at accept, exactly like
        // the threaded path stamps its `Job`.
        let deadline = now + self.shared.config.deadline;

        let fd = stream.as_raw_fd();
        if self
            .poller
            .register(fd, token(slot, gen), Interest::Read)
            .is_err()
        {
            // Out of epoll watches — shed the connection.
            self.free.push(slot);
            return;
        }
        self.conns[slot] = Some(Conn {
            stream,
            gen,
            phase: Phase::Reading,
            interest: Some(Interest::Read),
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            served: 0,
            deadline,
            timer_gen: 0,
            close_after_write: false,
            linger_after_write: false,
            drained: 0,
        });
        self.open += 1;
        let metrics = &self.shared.metrics;
        metrics.connections_total.fetch_add(1, Ordering::Relaxed);
        metrics.open_connections.fetch_add(1, Ordering::Relaxed);
        metrics.transition(None, Some(ConnState::Reading));
        self.arm(slot, deadline);
    }

    /// Close and free a connection; dropping the stream closes the fd.
    fn close(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].take() else {
            return;
        };
        if conn.interest.is_some() {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
        }
        let metrics = &self.shared.metrics;
        metrics.transition(Some(conn.phase.state()), None);
        metrics.open_connections.fetch_sub(1, Ordering::Relaxed);
        self.open -= 1;
        self.free.push(slot);
    }

    /// Close every connection the daemon owes nothing to (shutdown
    /// drain): Idle and Draining ones silently, Reading ones mid-request
    /// (the request will never be served). Executing and Writing
    /// connections are left to finish.
    fn close_quiescent(&mut self) {
        for slot in 0..self.conns.len() {
            if let Some(conn) = &self.conns[slot] {
                if matches!(conn.phase, Phase::Idle | Phase::Reading | Phase::Draining) {
                    self.close(slot);
                }
            }
        }
    }

    /// Arm the connection's (single) timer for `due`, invalidating any
    /// previously armed one.
    fn arm(&mut self, slot: usize, due: Instant) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        conn.timer_gen += 1;
        self.timer
            .arm(due, token(slot, conn.gen), conn.timer_gen, Instant::now());
    }

    /// Invalidate the connection's armed timer (lazy: the wheel entry
    /// stays and is dropped when it fires with a stale generation).
    fn cancel_timer(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].as_mut() {
            conn.timer_gen += 1;
        }
    }

    /// Reconcile the poller with the interest this connection wants.
    fn set_interest(&mut self, slot: usize, want: Option<Interest>) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        if conn.interest == want {
            return;
        }
        let fd = conn.stream.as_raw_fd();
        let tok = token(slot, conn.gen);
        let result = match (conn.interest, want) {
            (None, Some(interest)) => self.poller.register(fd, tok, interest),
            (Some(_), Some(interest)) => self.poller.modify(fd, tok, interest),
            (Some(_), None) => self.poller.deregister(fd),
            (None, None) => Ok(()),
        };
        match result {
            Ok(()) => conn.interest = want,
            // A poller that cannot track the fd leaves the connection
            // undeliverable — drop it.
            Err(_) => self.close(slot),
        }
    }

    fn set_phase(&mut self, slot: usize, phase: Phase) {
        if let Some(conn) = self.conns[slot].as_mut() {
            if conn.phase != phase {
                self.shared
                    .metrics
                    .transition(Some(conn.phase.state()), Some(phase.state()));
                conn.phase = phase;
            }
        }
    }

    /// Route a readiness event to the connection's current phase.
    fn on_event(&mut self, event: Event) {
        let (slot, gen) = split_token(event.token);
        let Some(conn) = self.conns.get(slot).and_then(Option::as_ref) else {
            return;
        };
        if conn.gen != gen {
            return; // stale: the slot was reused since this event was queued
        }
        match conn.phase {
            Phase::Reading | Phase::Idle => {
                if event.readable || event.hangup {
                    self.on_readable(slot);
                }
            }
            Phase::Writing => {
                if event.writable || event.hangup {
                    self.flush(slot);
                }
            }
            Phase::Draining => self.on_drain(slot),
            // Deregistered while executing; a straggler event (queued
            // before the deregister) is ignored.
            Phase::Executing => {}
        }
    }

    /// Pull bytes until `EAGAIN`, a complete request, or EOF.
    fn on_readable(&mut self, slot: usize) {
        let mut scratch = [0u8; READ_CHUNK];
        loop {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            if !matches!(conn.phase, Phase::Reading | Phase::Idle) {
                // A parsed request moved the connection on; leftover
                // socket bytes wait in the kernel until it comes back.
                return;
            }
            let n = match conn.stream.read(&mut scratch) {
                Ok(0) => break, // EOF
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.eagain();
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot);
                    return;
                }
            };
            if conn.phase == Phase::Idle {
                // First byte of the next request on a kept-alive
                // connection stamps a fresh deadline (threaded parity:
                // the post-`fill_buf` re-stamp).
                let deadline = Instant::now() + self.shared.config.deadline;
                conn.deadline = deadline;
                conn.rbuf.extend_from_slice(&scratch[..n]);
                self.set_phase(slot, Phase::Reading);
                self.arm(slot, deadline);
            } else {
                conn.rbuf.extend_from_slice(&scratch[..n]);
            }
            self.advance_parse(slot);
        }

        // EOF. An idle or empty connection closed cleanly; a request cut
        // off mid-bytes can never complete — tell the (probably gone)
        // client, mirroring the threaded path's truncated-read 400.
        let Some(conn) = self.conns[slot].as_ref() else {
            return;
        };
        if conn.phase == Phase::Idle || conn.rbuf.is_empty() {
            self.close(slot);
            return;
        }
        self.shared.metrics.record("parse", 400);
        let response = Response::error(400, "truncated request");
        self.respond(slot, &response, false);
    }

    /// Try to complete a request out of `rbuf`; on success hand it to the
    /// worker pool (or answer `503` when the pool's queue is full).
    fn advance_parse(&mut self, slot: usize) {
        let shared = self.shared;
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        if conn.phase != Phase::Reading {
            return;
        }
        match try_parse(&conn.rbuf, &shared.limits) {
            Ok(ParseStatus::NeedMore) => {}
            Ok(ParseStatus::Complete { request, consumed }) => {
                conn.rbuf.drain(..consumed);
                conn.served += 1;
                let force_close = conn.served >= shared.config.keep_alive_requests.max(1);
                let task = Task {
                    token: token(slot, conn.gen),
                    request,
                    deadline: conn.deadline,
                    force_close,
                };
                // Same inc-before-push/undo-on-reject dance as the
                // threaded accept loop, for the same gauge-ordering
                // reason.
                shared.metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
                match shared.tasks.try_push(task) {
                    Ok(_) => {
                        self.set_phase(slot, Phase::Executing);
                        self.cancel_timer(slot);
                        self.set_interest(slot, None);
                    }
                    Err(_) => {
                        // Admission control: in reactor mode the door is
                        // the parse boundary, not accept.
                        shared.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
                        shared
                            .metrics
                            .rejected_total
                            .fetch_add(1, Ordering::Relaxed);
                        shared.metrics.record("admission", 503);
                        let response = Response::error(503, "queue full")
                            .with_header("Retry-After", retry_after_value(&shared.config));
                        self.respond(slot, &response, false);
                    }
                }
            }
            Err(err) => {
                // `try_parse` is pure, so the error is always mappable to
                // a status (400/413), never I/O.
                let Some(status) = err.status() else {
                    self.close(slot);
                    return;
                };
                shared.metrics.record("parse", status);
                let response = Response::error(status, &err.detail());
                self.respond(slot, &response, true);
            }
        }
    }

    /// Serialize an error/rejection response the reactor produced itself
    /// and start flushing it; always closes afterwards. `partial_read`
    /// requests a lingering close (unread request bytes would make a
    /// plain close RST the response away).
    fn respond(&mut self, slot: usize, response: &Response, partial_read: bool) {
        let mut bytes = Vec::new();
        write_response(&mut bytes, response, true).expect("serializing into a Vec cannot fail");
        let linger = partial_read
            || self.conns[slot]
                .as_ref()
                .is_some_and(|c| !c.rbuf.is_empty());
        self.start_write(slot, bytes, true, linger);
    }

    /// Begin flushing `bytes`; the write budget is the request deadline
    /// floored by the error-write grace (threaded parity: the response
    /// must be flushable even when the deadline itself has passed).
    fn start_write(&mut self, slot: usize, bytes: Vec<u8>, close: bool, linger: bool) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        conn.wbuf = bytes;
        conn.wpos = 0;
        conn.close_after_write = close;
        conn.linger_after_write = linger;
        let due = conn.deadline.max(Instant::now() + ERROR_WRITE_GRACE);
        self.set_phase(slot, Phase::Writing);
        // No read interest while writing: a level-triggered poller would
        // spin on buffered request bytes we are not ready to parse.
        self.set_interest(slot, None);
        self.arm(slot, due);
        self.flush(slot);
    }

    /// Write until done or `EAGAIN`; register write interest only when
    /// the optimistic write actually blocks.
    fn flush(&mut self, slot: usize) {
        loop {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            if conn.phase != Phase::Writing {
                return;
            }
            if conn.wpos >= conn.wbuf.len() {
                self.write_done(slot);
                return;
            }
            match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                Ok(0) => {
                    self.close(slot);
                    return;
                }
                Ok(n) => conn.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.eagain();
                    self.set_interest(slot, Some(Interest::Write));
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close(slot);
                    return;
                }
            }
        }
    }

    /// The response is fully flushed: close, drain, or return to the
    /// keep-alive cycle.
    fn write_done(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        conn.wbuf = Vec::new();
        conn.wpos = 0;
        let close = conn.close_after_write;
        let linger = conn.linger_after_write;
        if close {
            if linger {
                self.enter_drain(slot);
            } else {
                self.close(slot);
            }
            return;
        }
        if self.shared.stop.load(Ordering::SeqCst) {
            self.close(slot);
            return;
        }
        let now = Instant::now();
        if !conn.rbuf.is_empty() {
            // The next pipelined request is already buffered; its
            // deadline starts now (threaded parity: `fill_buf` would have
            // returned instantly and re-stamped).
            let deadline = now + self.shared.config.deadline;
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            conn.deadline = deadline;
            self.set_phase(slot, Phase::Reading);
            self.set_interest(slot, Some(Interest::Read));
            self.arm(slot, deadline);
            self.advance_parse(slot);
        } else {
            let idle_due = now + self.shared.config.idle_timeout;
            self.set_phase(slot, Phase::Idle);
            self.set_interest(slot, Some(Interest::Read));
            self.arm(slot, idle_due);
        }
    }

    /// Lingering close: FIN the write side (delivering the response),
    /// then swallow whatever the client keeps sending, bounded in time
    /// (`LINGER_DRAIN`) and bytes (`LINGER_DRAIN_MAX`).
    fn enter_drain(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        let _ = conn.stream.shutdown(Shutdown::Write);
        conn.drained = 0;
        self.set_phase(slot, Phase::Draining);
        self.set_interest(slot, Some(Interest::Read));
        self.arm(slot, Instant::now() + LINGER_DRAIN);
        self.on_drain(slot);
    }

    fn on_drain(&mut self, slot: usize) {
        let mut scratch = [0u8; READ_CHUNK];
        loop {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            if conn.phase != Phase::Draining {
                return;
            }
            match conn.stream.read(&mut scratch) {
                Ok(0) => {
                    self.close(slot);
                    return;
                }
                Ok(n) => {
                    conn.drained += n;
                    if conn.drained >= LINGER_DRAIN_MAX {
                        self.close(slot);
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.eagain();
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close(slot);
                    return;
                }
            }
        }
    }

    /// A worker finished a request: route the serialized response back to
    /// the connection, unless the connection is gone or its slot was
    /// reused (stale token).
    fn on_completion(&mut self, completion: Completion) {
        let (slot, gen) = split_token(completion.token);
        let Some(conn) = self.conns.get(slot).and_then(Option::as_ref) else {
            return;
        };
        if conn.gen != gen || conn.phase != Phase::Executing {
            return;
        }
        match completion.bytes {
            // Handler panic: drop the connection without a response
            // (threaded parity — the panicked worker's connection drops).
            None => self.close(slot),
            Some(bytes) => self.start_write(slot, bytes, completion.close, false),
        }
    }

    /// An armed deadline fired (and is current — stale generations were
    /// filtered by the caller's match against `timer_gen`).
    fn on_timer(&mut self, tok: u64, timer_gen: u64) {
        let (slot, gen) = split_token(tok);
        let Some(conn) = self.conns.get(slot).and_then(Option::as_ref) else {
            return;
        };
        if conn.gen != gen || conn.timer_gen != timer_gen {
            return; // cancelled or superseded
        }
        match conn.phase {
            Phase::Reading => {
                // The request deadline passed before the request finished
                // arriving: 408, like the threaded path's read timeout.
                let metrics = &self.shared.metrics;
                metrics.timeout_total.fetch_add(1, Ordering::Relaxed);
                metrics.record("parse", 408);
                let response = Response::error(408, "deadline exceeded");
                self.respond(slot, &response, true);
            }
            // Idle reap is silent — there is no request to answer.
            Phase::Idle => self.close(slot),
            // The write grace is spent; nothing more the daemon owes.
            Phase::Writing => self.close(slot),
            Phase::Draining => self.close(slot),
            // Executing arms no timer; a current-generation firing here
            // cannot happen.
            Phase::Executing => {}
        }
    }
}
