//! In-process metrics: atomic counters and latency histograms, rendered in
//! Prometheus text exposition format by the daemon's `GET /metrics`.
//!
//! The [`Histogram`] is shared with `dbselect route`'s batch summary so the
//! CLI and the daemon report percentiles from the same machinery:
//! exponential buckets over nanoseconds, lock-free `fetch_add` recording,
//! and percentile estimation by linear interpolation inside the bucket.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A fixed-bucket histogram of durations in nanoseconds.
///
/// Buckets are exponential: the `i`-th bucket covers
/// `(bound[i-1], bound[i]]` with `bound[i] = 1µs · 2^i`, plus an overflow
/// bucket. Recording is a single atomic increment; percentile queries scan
/// the (small, fixed) bucket array.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// A histogram sized for request latencies: 1µs up to ~67s.
    pub fn latency() -> Self {
        let bounds: Vec<u64> = (0..27).map(|i| 1_000u64 << i).collect();
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            counts,
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation of `nanos`.
    pub fn observe(&self, nanos: u64) {
        let bucket = self
            .bounds
            .partition_point(|&bound| bound < nanos)
            .min(self.counts.len() - 1);
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        // Saturating, not wrapping: one absurd observation (a stuck clock,
        // u64::MAX) must pin the exported `_sum` at the ceiling rather
        // than wrap it back to a small, plausible-looking value.
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |sum| {
                Some(sum.saturating_add(nanos))
            });
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of all observations in nanoseconds.
    pub fn sum_nanos(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The `p`-th percentile (`0.0..=1.0`) in nanoseconds, linearly
    /// interpolated inside the winning bucket. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, count) in self.counts.iter().enumerate() {
            let count = count.load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            if cumulative + count >= target {
                let lower = if i == 0 { 0 } else { self.bounds[i - 1] };
                let upper = self.overflow_aware_upper(i);
                let into = (target - cumulative) as f64 / count as f64;
                return lower + ((upper.saturating_sub(lower)) as f64 * into) as u64;
            }
            cumulative += count;
        }
        self.overflow_aware_upper(self.counts.len() - 1)
    }

    /// Upper edge of bucket `i`. The overflow bucket has no bound of its
    /// own; extend the exponential progression one more doubling so
    /// interpolation inside it stays non-degenerate (`upper > lower`)
    /// instead of collapsing to the last bound.
    fn overflow_aware_upper(&self, i: usize) -> u64 {
        self.bounds
            .get(i)
            .copied()
            .unwrap_or_else(|| self.bounds.last().map_or(0, |&b| b.saturating_mul(2)))
    }
}

/// Escape a string for use as a Prometheus label *value*: per the text
/// exposition format, `\` → `\\`, `"` → `\"`, and a line feed → `\n`.
/// Static label values in this file never need it, but tenant names are
/// user-supplied (file stems of the manifest directory) and a quote or
/// newline in one would otherwise break out of the label and corrupt the
/// whole scrape.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Render nanoseconds human-readably (`950ns`, `12.3µs`, `4.56ms`, `1.20s`).
pub fn format_nanos(nanos: u64) -> String {
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2}ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", nanos as f64 / 1_000_000_000.0)
    }
}

/// The daemon's metrics registry.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    /// Request count keyed by (endpoint, status).
    requests: Mutex<BTreeMap<(&'static str, u16), u64>>,
    /// `/route` handler latency.
    pub route_latency: Histogram,
    /// `/route_batch` handler latency.
    pub batch_latency: Histogram,
    /// Current depth of the admission queue.
    pub queue_depth: AtomicU64,
    /// Connections rejected because the queue was full (503s).
    pub rejected_total: AtomicU64,
    /// Requests that exceeded their deadline (504s) or timed out reading
    /// (408s).
    pub timeout_total: AtomicU64,
    /// Successful catalog reloads.
    pub reload_total: AtomicU64,
    /// Connections served by workers (each may carry many requests).
    pub connections_total: AtomicU64,
    /// Handler panics caught by the worker pool; the connection dropped
    /// but the worker survived.
    pub worker_panics_total: AtomicU64,
    /// Catalog loads (admin reloads or background refresh polls) that
    /// failed — missing file, corrupt snapshot, broken delta chain. The
    /// previous generation keeps serving through every one of these.
    pub catalog_load_failures_total: AtomicU64,
    /// Currently open client connections (accepted, not yet closed).
    pub open_connections: AtomicU64,
    /// Connections per reactor state, indexed by [`ConnState`]. The
    /// legacy threaded path leaves these at zero.
    pub connections_state: [AtomicU64; CONN_STATES.len()],
    /// Times the reactor's poll wait returned (readiness, doorbell, or
    /// timer tick).
    pub reactor_wakeups_total: AtomicU64,
    /// `EAGAIN`/`EWOULDBLOCK` results across reactor reads, writes, and
    /// accepts — each one is a syscall that found no progress to make.
    pub eagain_total: AtomicU64,
}

/// Reactor connection states, in gauge order.
pub const CONN_STATES: [&str; 5] = ["reading", "executing", "writing", "idle", "draining"];

/// Index into [`Metrics::connections_state`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    Reading = 0,
    Executing = 1,
    Writing = 2,
    Idle = 3,
    Draining = 4,
}

impl Metrics {
    /// A fresh registry; `started` anchors the uptime gauge.
    pub fn new() -> Self {
        Metrics {
            started: Instant::now(),
            requests: Mutex::new(BTreeMap::new()),
            route_latency: Histogram::latency(),
            batch_latency: Histogram::latency(),
            queue_depth: AtomicU64::new(0),
            rejected_total: AtomicU64::new(0),
            timeout_total: AtomicU64::new(0),
            reload_total: AtomicU64::new(0),
            connections_total: AtomicU64::new(0),
            worker_panics_total: AtomicU64::new(0),
            catalog_load_failures_total: AtomicU64::new(0),
            open_connections: AtomicU64::new(0),
            connections_state: Default::default(),
            reactor_wakeups_total: AtomicU64::new(0),
            eagain_total: AtomicU64::new(0),
        }
    }

    /// Move one connection between state gauges; `None` on either side
    /// means entering from accept / leaving by close.
    pub fn transition(&self, from: Option<ConnState>, to: Option<ConnState>) {
        if let Some(from) = from {
            self.connections_state[from as usize].fetch_sub(1, Ordering::Relaxed);
        }
        if let Some(to) = to {
            self.connections_state[to as usize].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Count one served request.
    pub fn record(&self, endpoint: &'static str, status: u16) {
        *self
            .requests
            .lock()
            .expect("metrics lock poisoned")
            .entry((endpoint, status))
            .or_insert(0) += 1;
    }

    /// Render the Prometheus text exposition. `cache` is the aggregated
    /// posterior-cache counters of the current catalog's engines;
    /// `generation`/`databases`/`load_seconds`/`snapshot_bytes` describe
    /// the currently served catalog and how it was loaded.
    pub fn render(
        &self,
        cache: broker::CacheStats,
        generation: u64,
        databases: usize,
        load_seconds: f64,
        snapshot_bytes: u64,
    ) -> String {
        let mut out = self.render_core();
        out.push_str(&format!(
            "# TYPE dbselectd_posterior_cache_hits_total counter\n\
             dbselectd_posterior_cache_hits_total {}\n\
             # TYPE dbselectd_posterior_cache_misses_total counter\n\
             dbselectd_posterior_cache_misses_total {}\n\
             # TYPE dbselectd_posterior_cache_evictions_total counter\n\
             dbselectd_posterior_cache_evictions_total {}\n\
             # TYPE dbselectd_posterior_cache_hit_rate gauge\n\
             dbselectd_posterior_cache_hit_rate {}\n",
            cache.hits,
            cache.misses,
            cache.evictions,
            cache.hit_rate(),
        ));
        out.push_str(&format!(
            "# TYPE dbselectd_catalog_generation gauge\n\
             dbselectd_catalog_generation {generation}\n\
             # TYPE dbselectd_catalog_databases gauge\n\
             dbselectd_catalog_databases {databases}\n\
             # TYPE dbselectd_catalog_load_seconds gauge\n\
             dbselectd_catalog_load_seconds {load_seconds:.6}\n\
             # TYPE dbselectd_catalog_snapshot_bytes gauge\n\
             dbselectd_catalog_snapshot_bytes {snapshot_bytes}\n",
        ));
        out
    }

    /// The catalog-independent half of [`render`](Self::render): request
    /// counters, latency summaries, admission/connection/reactor gauges
    /// and uptime. The proxy tier serves no catalog of its own, so its
    /// `/metrics` endpoint renders this core plus its per-backend
    /// families instead of the full monolithic exposition.
    pub fn render_core(&self) -> String {
        let mut out = String::new();
        out.push_str("# TYPE dbselectd_requests_total counter\n");
        for ((endpoint, status), count) in
            self.requests.lock().expect("metrics lock poisoned").iter()
        {
            out.push_str(&format!(
                "dbselectd_requests_total{{endpoint=\"{endpoint}\",status=\"{status}\"}} {count}\n"
            ));
        }
        for (name, histogram) in [
            ("route", &self.route_latency),
            ("route_batch", &self.batch_latency),
        ] {
            out.push_str(&format!(
                "# TYPE dbselectd_request_duration_seconds summary\n\
                 dbselectd_request_duration_seconds{{endpoint=\"{name}\",quantile=\"0.5\"}} {}\n\
                 dbselectd_request_duration_seconds{{endpoint=\"{name}\",quantile=\"0.95\"}} {}\n\
                 dbselectd_request_duration_seconds{{endpoint=\"{name}\",quantile=\"0.99\"}} {}\n\
                 dbselectd_request_duration_seconds_count{{endpoint=\"{name}\"}} {}\n\
                 dbselectd_request_duration_seconds_sum{{endpoint=\"{name}\"}} {}\n",
                histogram.percentile(0.50) as f64 / 1e9,
                histogram.percentile(0.95) as f64 / 1e9,
                histogram.percentile(0.99) as f64 / 1e9,
                histogram.count(),
                histogram.sum_nanos() as f64 / 1e9,
            ));
        }
        out.push_str(&format!(
            "# TYPE dbselectd_queue_depth gauge\n\
             dbselectd_queue_depth {}\n\
             # TYPE dbselectd_rejected_total counter\n\
             dbselectd_rejected_total {}\n\
             # TYPE dbselectd_timeout_total counter\n\
             dbselectd_timeout_total {}\n\
             # TYPE dbselectd_reload_total counter\n\
             dbselectd_reload_total {}\n\
             # TYPE dbselectd_connections_total counter\n\
             dbselectd_connections_total {}\n\
             # TYPE dbselectd_worker_panics_total counter\n\
             dbselectd_worker_panics_total {}\n\
             # TYPE dbselectd_catalog_load_failures_total counter\n\
             dbselectd_catalog_load_failures_total {}\n",
            self.queue_depth.load(Ordering::Relaxed),
            self.rejected_total.load(Ordering::Relaxed),
            self.timeout_total.load(Ordering::Relaxed),
            self.reload_total.load(Ordering::Relaxed),
            self.connections_total.load(Ordering::Relaxed),
            self.worker_panics_total.load(Ordering::Relaxed),
            self.catalog_load_failures_total.load(Ordering::Relaxed),
        ));
        out.push_str(&format!(
            "# TYPE dbselectd_open_connections gauge\n\
             dbselectd_open_connections {}\n",
            self.open_connections.load(Ordering::Relaxed),
        ));
        out.push_str("# TYPE dbselectd_connections_state gauge\n");
        for (state, gauge) in CONN_STATES.iter().zip(&self.connections_state) {
            out.push_str(&format!(
                "dbselectd_connections_state{{state=\"{state}\"}} {}\n",
                gauge.load(Ordering::Relaxed),
            ));
        }
        out.push_str(&format!(
            "# TYPE dbselectd_reactor_wakeups_total counter\n\
             dbselectd_reactor_wakeups_total {}\n\
             # TYPE dbselectd_eagain_total counter\n\
             dbselectd_eagain_total {}\n\
             # TYPE dbselectd_uptime_seconds gauge\n\
             dbselectd_uptime_seconds {:.3}\n",
            self.reactor_wakeups_total.load(Ordering::Relaxed),
            self.eagain_total.load(Ordering::Relaxed),
            self.started.elapsed().as_secs_f64(),
        ));
        out
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

/// Per-tenant metrics, label-isolated: every family below is rendered
/// with a `tenant="..."` label (escaped — tenant names are user input),
/// so one tenant's counters never mix into another's. One instance lives
/// inside each `Tenant` and survives that tenant's reloads; it is *not*
/// part of the swapped `ServingState`.
#[derive(Debug)]
pub struct TenantMetrics {
    /// Request count keyed by (endpoint, status), this tenant only.
    pub requests: Mutex<BTreeMap<(&'static str, u16), u64>>,
    /// This tenant's `/route` handler latency.
    pub route_latency: Histogram,
    /// This tenant's `/route_batch` handler latency.
    pub batch_latency: Histogram,
    /// Successful reloads of this tenant's catalog.
    pub reload_total: AtomicU64,
    /// Requests rejected by this tenant's admission quota (503s).
    pub quota_rejected_total: AtomicU64,
}

impl Default for TenantMetrics {
    fn default() -> Self {
        TenantMetrics {
            requests: Mutex::new(BTreeMap::new()),
            route_latency: Histogram::latency(),
            batch_latency: Histogram::latency(),
            reload_total: AtomicU64::new(0),
            quota_rejected_total: AtomicU64::new(0),
        }
    }
}

impl TenantMetrics {
    /// Count one request served for this tenant.
    pub fn record(&self, endpoint: &'static str, status: u16) {
        *self
            .requests
            .lock()
            .expect("tenant metrics lock poisoned")
            .entry((endpoint, status))
            .or_insert(0) += 1;
    }
}

/// Render one tenant's families. `# TYPE` headers are emitted by the
/// caller once per family (Prometheus rejects duplicate headers), so this
/// yields sample lines only.
pub fn render_tenant(
    name: &str,
    metrics: &TenantMetrics,
    generation: u64,
    databases: usize,
    in_flight: u64,
    cache: broker::CacheStats,
) -> String {
    let tenant = escape_label_value(name);
    let mut out = String::new();
    for ((endpoint, status), count) in metrics
        .requests
        .lock()
        .expect("tenant metrics lock poisoned")
        .iter()
    {
        out.push_str(&format!(
            "dbselectd_tenant_requests_total{{tenant=\"{tenant}\",endpoint=\"{endpoint}\",status=\"{status}\"}} {count}\n"
        ));
    }
    for (endpoint, histogram) in [
        ("route", &metrics.route_latency),
        ("route_batch", &metrics.batch_latency),
    ] {
        if histogram.count() == 0 {
            continue;
        }
        out.push_str(&format!(
            "dbselectd_tenant_request_duration_seconds{{tenant=\"{tenant}\",endpoint=\"{endpoint}\",quantile=\"0.5\"}} {}\n\
             dbselectd_tenant_request_duration_seconds{{tenant=\"{tenant}\",endpoint=\"{endpoint}\",quantile=\"0.99\"}} {}\n\
             dbselectd_tenant_request_duration_seconds_count{{tenant=\"{tenant}\",endpoint=\"{endpoint}\"}} {}\n",
            histogram.percentile(0.50) as f64 / 1e9,
            histogram.percentile(0.99) as f64 / 1e9,
            histogram.count(),
        ));
    }
    out.push_str(&format!(
        "dbselectd_tenant_reload_total{{tenant=\"{tenant}\"}} {}\n\
         dbselectd_tenant_quota_rejected_total{{tenant=\"{tenant}\"}} {}\n\
         dbselectd_tenant_in_flight{{tenant=\"{tenant}\"}} {in_flight}\n\
         dbselectd_tenant_catalog_generation{{tenant=\"{tenant}\"}} {generation}\n\
         dbselectd_tenant_catalog_databases{{tenant=\"{tenant}\"}} {databases}\n\
         dbselectd_tenant_posterior_cache_hits_total{{tenant=\"{tenant}\"}} {}\n\
         dbselectd_tenant_posterior_cache_misses_total{{tenant=\"{tenant}\"}} {}\n",
        metrics.reload_total.load(Ordering::Relaxed),
        metrics.quota_rejected_total.load(Ordering::Relaxed),
        cache.hits,
        cache.misses,
    ));
    out
}

/// `# TYPE` headers for the per-tenant families, emitted once before the
/// per-tenant sample lines.
pub const TENANT_TYPE_HEADERS: &str = "# TYPE dbselectd_tenant_requests_total counter\n\
     # TYPE dbselectd_tenant_request_duration_seconds summary\n\
     # TYPE dbselectd_tenant_reload_total counter\n\
     # TYPE dbselectd_tenant_quota_rejected_total counter\n\
     # TYPE dbselectd_tenant_in_flight gauge\n\
     # TYPE dbselectd_tenant_catalog_generation gauge\n\
     # TYPE dbselectd_tenant_catalog_databases gauge\n\
     # TYPE dbselectd_tenant_posterior_cache_hits_total counter\n\
     # TYPE dbselectd_tenant_posterior_cache_misses_total counter\n";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_are_ordered_and_plausible() {
        let h = Histogram::latency();
        for micros in 1..=1000u64 {
            h.observe(micros * 1_000);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.percentile(0.50);
        let p95 = h.percentile(0.95);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // True p50 is 500µs; the winning bucket is (256µs, 512µs].
        assert!(
            (256_000..=512_000).contains(&p50),
            "p50 {p50} outside its bucket"
        );
        assert!(p99 <= 1_024_000, "p99 {p99} beyond its bucket");
    }

    #[test]
    fn histogram_handles_extremes() {
        let h = Histogram::latency();
        assert_eq!(h.percentile(0.99), 0);
        h.observe(0);
        h.observe(u64::MAX);
        assert_eq!(h.count(), 2);
        assert!(h.percentile(1.0) > 0);
        // The sum saturates instead of wrapping: 0 + u64::MAX must not
        // come out as a small value after one more observation.
        h.observe(1_000);
        assert_eq!(h.sum_nanos(), u64::MAX);
    }

    #[test]
    fn overflow_bucket_interpolates_instead_of_collapsing() {
        let h = Histogram::latency();
        let last_bound = 1_000u64 << 26;
        for _ in 0..10 {
            h.observe(last_bound + 1);
        }
        let p10 = h.percentile(0.10);
        let p100 = h.percentile(1.0);
        // Interpolation inside the overflow bucket spans (last, 2·last]:
        // distinct percentiles give distinct values, never a flat line
        // pinned at the last bound.
        assert!(p10 > last_bound, "{p10} must exceed the last bound");
        assert!(p10 < p100, "{p10} vs {p100} must not be degenerate");
        assert!(p100 <= last_bound.saturating_mul(2), "{p100}");
    }

    #[test]
    fn nanos_formatting() {
        assert_eq!(format_nanos(950), "950ns");
        assert_eq!(format_nanos(12_300), "12.3µs");
        assert_eq!(format_nanos(4_560_000), "4.56ms");
        assert_eq!(format_nanos(1_200_000_000), "1.20s");
    }

    #[test]
    fn render_contains_all_families() {
        let m = Metrics::new();
        m.record("route", 200);
        m.record("route", 200);
        m.record("healthz", 200);
        m.route_latency.observe(5_000);
        let text = m.render(
            broker::CacheStats {
                hits: 3,
                misses: 1,
                evictions: 0,
            },
            2,
            7,
            0.012345,
            4096,
        );
        assert!(text.contains("dbselectd_requests_total{endpoint=\"route\",status=\"200\"} 2"));
        assert!(text.contains("dbselectd_request_duration_seconds_count{endpoint=\"route\"} 1"));
        assert!(text.contains("dbselectd_posterior_cache_hit_rate 0.75"));
        assert!(text.contains("dbselectd_catalog_generation 2"));
        assert!(text.contains("dbselectd_catalog_databases 7"));
        assert!(text.contains("dbselectd_catalog_load_seconds 0.012345"));
        assert!(text.contains("dbselectd_catalog_snapshot_bytes 4096"));
        assert!(text.contains("dbselectd_connections_total 0"));
        assert!(text.contains("dbselectd_worker_panics_total 0"));
        assert!(text.contains("dbselectd_catalog_load_failures_total 0"));
        assert!(text.contains("dbselectd_open_connections 0"));
        assert!(text.contains("dbselectd_reactor_wakeups_total 0"));
        assert!(text.contains("dbselectd_eagain_total 0"));
        for state in CONN_STATES {
            assert!(
                text.contains(&format!(
                    "dbselectd_connections_state{{state=\"{state}\"}} 0"
                )),
                "missing state gauge {state}:\n{text}"
            );
        }
    }

    #[test]
    fn label_values_escape_prometheus_specials() {
        assert_eq!(escape_label_value("plain-name"), "plain-name");
        assert_eq!(escape_label_value("back\\slash"), "back\\\\slash");
        assert_eq!(escape_label_value("quo\"te"), "quo\\\"te");
        assert_eq!(escape_label_value("new\nline"), "new\\nline");
        assert_eq!(
            escape_label_value("\\\"\n"),
            "\\\\\\\"\\n",
            "all three specials in sequence"
        );
    }

    #[test]
    fn hostile_tenant_name_renders_on_one_line_per_sample() {
        let tm = TenantMetrics::default();
        tm.record("route", 200);
        tm.route_latency.observe(5_000);
        tm.reload_total.fetch_add(2, Ordering::Relaxed);
        let text = render_tenant(
            "evil\"t\nenant\\x",
            &tm,
            3,
            6,
            1,
            broker::CacheStats::default(),
        );
        // Every sample line still parses: the raw newline in the tenant
        // name must have been escaped, so no line starts mid-label.
        for line in text.lines() {
            assert!(
                line.starts_with("dbselectd_tenant_"),
                "broken exposition line: {line:?}"
            );
        }
        assert!(
            text.contains("tenant=\"evil\\\"t\\nenant\\\\x\""),
            "escaped name missing:\n{text}"
        );
        assert!(text.contains("dbselectd_tenant_requests_total{tenant=\"evil\\\"t\\nenant\\\\x\",endpoint=\"route\",status=\"200\"} 1"));
        assert!(text.contains("dbselectd_tenant_reload_total{tenant=\"evil\\\"t\\nenant\\\\x\"} 2"));
        assert!(text
            .contains("dbselectd_tenant_catalog_generation{tenant=\"evil\\\"t\\nenant\\\\x\"} 3"));
        assert!(text.contains("dbselectd_tenant_in_flight{tenant=\"evil\\\"t\\nenant\\\\x\"} 1"));
    }

    #[test]
    fn state_transitions_balance_the_gauges() {
        let m = Metrics::new();
        m.transition(None, Some(ConnState::Reading));
        m.transition(Some(ConnState::Reading), Some(ConnState::Executing));
        m.transition(Some(ConnState::Executing), Some(ConnState::Writing));
        m.transition(Some(ConnState::Writing), Some(ConnState::Idle));
        let text = m.render(broker::CacheStats::default(), 1, 1, 0.0, 0);
        assert!(text.contains("dbselectd_connections_state{state=\"idle\"} 1"));
        assert!(text.contains("dbselectd_connections_state{state=\"reading\"} 0"));
        assert!(text.contains("dbselectd_connections_state{state=\"writing\"} 0"));
        m.transition(Some(ConnState::Idle), None);
        let text = m.render(broker::CacheStats::default(), 1, 1, 0.0, 0);
        assert!(text.contains("dbselectd_connections_state{state=\"idle\"} 0"));
    }
}
