//! A minimal hand-rolled HTTP/1.1 layer.
//!
//! `dbselectd` is std-only (the vendored compat-crate constraint rules out
//! hyper et al.), so this module implements exactly the slice of HTTP/1.1
//! the daemon needs: parse one request from a buffered reader with strict
//! size limits, and write one response whose `Connection` header tells the
//! client whether the connection stays open. Persistence policy
//! ([`Request::wants_keep_alive`]) follows RFC 7230 §6.3: HTTP/1.1
//! defaults to keep-alive, HTTP/1.0 to close, and an explicit
//! `Connection: close` / `keep-alive` token always wins.
//!
//! The parser is the daemon's exposure to untrusted bytes, so its contract
//! is: **never panic, never allocate unboundedly** — every malformed,
//! oversized, or truncated input maps to an [`HttpError`], which the
//! serving loop turns into a 4xx status. A proptest fuzz suite
//! (`tests/http_fuzz.rs`) holds the no-panic property over arbitrary byte
//! streams.

use std::io::{self, BufRead, Write};

/// Parser limits. Exceeding any of them is a [`HttpError::TooLarge`].
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum request-line length in bytes.
    pub max_request_line: usize,
    /// Maximum number of header fields.
    pub max_headers: usize,
    /// Maximum length of a single header line in bytes.
    pub max_header_line: usize,
    /// Maximum request-body length in bytes.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_request_line: 8 * 1024,
            max_headers: 64,
            max_header_line: 8 * 1024,
            max_body: 8 * 1024 * 1024,
        }
    }
}

/// Everything that can go wrong while reading a request.
#[derive(Debug)]
pub enum HttpError {
    /// The connection closed cleanly before the first byte of a request.
    Closed,
    /// Syntactically invalid request (maps to 400).
    Malformed(&'static str),
    /// A size limit was exceeded (maps to 413).
    TooLarge(&'static str),
    /// Transport error; `WouldBlock`/`TimedOut` mean the read deadline
    /// expired (maps to 408).
    Io(io::Error),
}

impl HttpError {
    /// The HTTP status this error reports to the client (`None`: the
    /// connection is gone, nothing to write).
    pub fn status(&self) -> Option<u16> {
        match self {
            HttpError::Closed => None,
            HttpError::Malformed(_) => Some(400),
            HttpError::TooLarge(_) => Some(413),
            HttpError::Io(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                Some(408)
            }
            HttpError::Io(_) => None,
        }
    }

    /// Human-readable detail for the error body.
    pub fn detail(&self) -> String {
        match self {
            HttpError::Closed => "connection closed".to_string(),
            HttpError::Malformed(why) => format!("malformed request: {why}"),
            HttpError::TooLarge(what) => format!("request too large: {what}"),
            HttpError::Io(e) => format!("i/o: {e}"),
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method token, upper-cased as received (`GET`, `POST`, …).
    pub method: String,
    /// The request target as received (path plus optional query string).
    pub target: String,
    /// Minor HTTP version: 1 for `HTTP/1.1`, 0 for `HTTP/1.0`.
    pub version_minor: u8,
    /// Header fields in arrival order; names lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The target with any query string stripped.
    pub fn path(&self) -> &str {
        self.target
            .split_once('?')
            .map_or(self.target.as_str(), |(p, _)| p)
    }

    /// Whether the client allows this connection to serve another request
    /// (RFC 7230 §6.3). `Connection` is a comma-separated token list; a
    /// `close` token always closes, a `keep-alive` token opts HTTP/1.0 in,
    /// and otherwise the version decides: 1.1 persists, 1.0 closes.
    pub fn wants_keep_alive(&self) -> bool {
        if let Some(value) = self.header("connection") {
            let mut saw_keep_alive = false;
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    return false;
                }
                saw_keep_alive |= token.eq_ignore_ascii_case("keep-alive");
            }
            if saw_keep_alive {
                return true;
            }
        }
        self.version_minor >= 1
    }
}

/// Read one `\n`-terminated line of at most `max` bytes, stripping the
/// trailing `\r\n` / `\n`. `Ok(None)` means clean EOF before any byte.
fn read_line<R: BufRead>(
    r: &mut R,
    max: usize,
    oversize: &'static str,
) -> Result<Option<Vec<u8>>, HttpError> {
    let mut line = Vec::new();
    loop {
        let available = match r.fill_buf() {
            Ok(buf) => buf,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(HttpError::Io(e)),
        };
        if available.is_empty() {
            if line.is_empty() {
                return Ok(None);
            }
            return Err(HttpError::Malformed("unexpected end of stream"));
        }
        let newline = available.iter().position(|&b| b == b'\n');
        let take = newline.map_or(available.len(), |i| i + 1);
        if line.len() + take > max + 2 {
            return Err(HttpError::TooLarge(oversize));
        }
        line.extend_from_slice(&available[..take]);
        r.consume(take);
        if newline.is_some() {
            while matches!(line.last(), Some(b'\n') | Some(b'\r')) {
                line.pop();
            }
            return Ok(Some(line));
        }
    }
}

/// Validate a request line (`METHOD SP TARGET SP HTTP/1.x`). Shared by
/// the streaming and incremental parsers so their acceptance is
/// identical by construction.
fn parse_request_line(line: Vec<u8>) -> Result<(String, String, u8), HttpError> {
    let line =
        String::from_utf8(line).map_err(|_| HttpError::Malformed("non-utf8 request line"))?;
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            return Err(HttpError::Malformed(
                "request line is not `METHOD TARGET VERSION`",
            ))
        }
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::Malformed("method must be upper-case ASCII"));
    }
    if !target.starts_with('/') {
        return Err(HttpError::Malformed("target must start with '/'"));
    }
    let version_minor = match version {
        "HTTP/1.1" => 1,
        "HTTP/1.0" => 0,
        _ => return Err(HttpError::Malformed("unsupported HTTP version")),
    };
    Ok((method.to_string(), target.to_string(), version_minor))
}

/// Validate one header line into a (lower-cased name, trimmed value) pair.
fn parse_header_line(line: Vec<u8>) -> Result<(String, String), HttpError> {
    let line = String::from_utf8(line).map_err(|_| HttpError::Malformed("non-utf8 header"))?;
    let (name, value) = line
        .split_once(':')
        .ok_or(HttpError::Malformed("header without ':'"))?;
    let name = name.trim();
    if name.is_empty() || name.contains(' ') {
        return Err(HttpError::Malformed("invalid header name"));
    }
    Ok((name.to_ascii_lowercase(), value.trim().to_string()))
}

/// Body length a parsed head declares: fixed `Content-Length` only (no
/// chunked transfer coding). No `Content-Length` and no transfer coding
/// means an empty body (RFC 7230 §3.3.3) — curl sends empty POSTs
/// exactly like that.
fn declared_body_len(request: &Request, limits: &Limits) -> Result<usize, HttpError> {
    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::Malformed("transfer codings are not supported"));
    }
    let body_len = match request.header("content-length") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed("unparseable Content-Length"))?,
        None => 0,
    };
    if body_len > limits.max_body {
        return Err(HttpError::TooLarge("body"));
    }
    Ok(body_len)
}

/// Parse one request from `r` under `limits`.
pub fn read_request<R: BufRead>(r: &mut R, limits: &Limits) -> Result<Request, HttpError> {
    // Request line: METHOD SP TARGET SP HTTP/1.x
    let line = match read_line(r, limits.max_request_line, "request line")? {
        None => return Err(HttpError::Closed),
        Some(line) => line,
    };
    let (method, target, version_minor) = parse_request_line(line)?;

    // Header fields until the empty line.
    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = read_line(r, limits.max_header_line, "header line")?
            .ok_or(HttpError::Malformed("stream ended inside headers"))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::TooLarge("too many headers"));
        }
        headers.push(parse_header_line(line)?);
    }

    let request = Request {
        method,
        target,
        version_minor,
        headers,
        body: Vec::new(),
    };
    let body_len = declared_body_len(&request, limits)?;
    let mut body = vec![0u8; body_len];
    if body_len > 0 {
        r.read_exact(&mut body).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                HttpError::Malformed("truncated body")
            } else {
                HttpError::Io(e)
            }
        })?;
    }
    Ok(Request { body, ..request })
}

/// Progress of [`try_parse`] over a partially received buffer.
#[derive(Debug)]
pub enum ParseStatus {
    /// The buffer holds a (possibly empty) prefix of a valid request;
    /// more bytes are needed before anything can be returned.
    NeedMore,
    /// One complete request, occupying the first `consumed` bytes of the
    /// buffer. The caller drains those bytes; anything after them is the
    /// start of the next pipelined request.
    Complete {
        /// The parsed request.
        request: Request,
        /// Bytes of the buffer this request consumed.
        consumed: usize,
    },
}

/// Split the next `\n`-terminated line out of `buf[*pos..]`, mirroring
/// [`read_line`]'s limit accounting exactly: a line may span at most
/// `max + 2` bytes including its terminator, and accumulating that many
/// bytes *without* seeing a terminator is already oversize. `Ok(None)`
/// means the line is still incomplete (and within limits).
fn split_line(
    buf: &[u8],
    pos: &mut usize,
    max: usize,
    oversize: &'static str,
) -> Result<Option<Vec<u8>>, HttpError> {
    let rest = &buf[*pos..];
    match rest.iter().position(|&b| b == b'\n') {
        Some(i) => {
            if i + 1 > max + 2 {
                return Err(HttpError::TooLarge(oversize));
            }
            let mut line = rest[..=i].to_vec();
            while matches!(line.last(), Some(b'\n') | Some(b'\r')) {
                line.pop();
            }
            *pos += i + 1;
            Ok(Some(line))
        }
        None if rest.len() > max + 2 => Err(HttpError::TooLarge(oversize)),
        None => Ok(None),
    }
}

/// Incrementally parse the first request out of `buf`.
///
/// This is the nonblocking-reactor counterpart of [`read_request`]: the
/// reactor appends whatever bytes the socket had ready and re-asks. It is
/// a pure function of the buffer — no parser state is carried between
/// calls — so resuming after any split point is trivially equivalent to
/// parsing the concatenation (held as a property over every byte
/// boundary by `tests/http_incremental.rs`). Validation is shared with
/// `read_request` ([`parse_request_line`], [`parse_header_line`],
/// [`declared_body_len`]), so the two parsers accept and reject
/// identical inputs; end-of-stream handling is the caller's concern
/// here (EOF mid-buffer means the request can never complete).
pub fn try_parse(buf: &[u8], limits: &Limits) -> Result<ParseStatus, HttpError> {
    let mut pos = 0usize;
    let Some(line) = split_line(buf, &mut pos, limits.max_request_line, "request line")? else {
        return Ok(ParseStatus::NeedMore);
    };
    let (method, target, version_minor) = parse_request_line(line)?;

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let Some(line) = split_line(buf, &mut pos, limits.max_header_line, "header line")? else {
            return Ok(ParseStatus::NeedMore);
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::TooLarge("too many headers"));
        }
        headers.push(parse_header_line(line)?);
    }

    let request = Request {
        method,
        target,
        version_minor,
        headers,
        body: Vec::new(),
    };
    let body_len = declared_body_len(&request, limits)?;
    if buf.len() - pos < body_len {
        return Ok(ParseStatus::NeedMore);
    }
    let body = buf[pos..pos + body_len].to_vec();
    Ok(ParseStatus::Complete {
        request: Request { body, ..request },
        consumed: pos + body_len,
    })
}

/// A response ready to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra header fields (e.g. `Retry-After`).
    pub extra_headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A JSON error body `{"error": detail}`.
    pub fn error(status: u16, detail: &str) -> Self {
        Response::json(
            status,
            crate::json::Json::obj(vec![(
                "error".to_string(),
                crate::json::Json::Str(detail.to_string()),
            )])
            .render(),
        )
    }

    /// Add a header field.
    pub fn with_header(mut self, name: &'static str, value: String) -> Self {
        self.extra_headers.push((name, value));
        self
    }
}

/// Standard reason phrase for the status codes the daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Serialize `response` with a `Content-Length` and a `Connection` header
/// announcing whether the connection closes after this response.
pub fn write_response<W: Write>(w: &mut W, response: &Response, close: bool) -> io::Result<()> {
    // Serialize the whole response first and write it in one call: the
    // stream is an unbuffered `DeadlineStream`, so every `write!` piece
    // would otherwise cost its own timeout-arm + send syscall pair.
    let mut out = Vec::with_capacity(256 + response.body.len());
    write!(
        out,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
        if close { "close" } else { "keep-alive" },
    )?;
    for (name, value) in &response.extra_headers {
        write!(out, "{name}: {value}\r\n")?;
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(&response.body);
    w.write_all(&out)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(bytes), &Limits::default())
    }

    #[test]
    fn parses_a_get() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path(), "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body_and_query_string() {
        let req = parse(b"POST /route?x=1 HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(req.path(), "/route");
        assert_eq!(req.target, "/route?x=1");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn tolerates_bare_lf_line_endings() {
        let req = parse(b"GET / HTTP/1.1\nA: b\n\n").unwrap();
        assert_eq!(req.header("a"), Some("b"));
    }

    #[test]
    fn keep_alive_policy_follows_rfc7230() {
        // HTTP/1.1 defaults to keep-alive; `close` always wins.
        assert!(parse(b"GET / HTTP/1.1\r\n\r\n").unwrap().wants_keep_alive());
        assert!(!parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .wants_keep_alive());
        assert!(
            !parse(b"GET / HTTP/1.1\r\nConnection: Keep-Alive, Close\r\n\r\n")
                .unwrap()
                .wants_keep_alive()
        );
        // HTTP/1.0 defaults to close; `keep-alive` opts in.
        let old = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert_eq!(old.version_minor, 0);
        assert!(!old.wants_keep_alive());
        assert!(parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .wants_keep_alive());
        // Unrelated Connection tokens fall back to the version default.
        assert!(parse(b"GET / HTTP/1.1\r\nConnection: upgrade\r\n\r\n")
            .unwrap()
            .wants_keep_alive());
    }

    #[test]
    fn malformed_inputs_are_errors_not_panics() {
        for bytes in [
            &b"GARBAGE\r\n\r\n"[..],
            b" / HTTP/1.1\r\n\r\n",
            b"GET /\r\n\r\n",
            b"get / HTTP/1.1\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"GET / HTTP/2\r\n\r\n",
            b"GET / HTTP/1.1\r\nbroken header\r\n\r\n",
            b"GET / HTTP/1.1\r\n: empty\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
            b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"\xff\xfe / HTTP/1.1\r\n\r\n",
        ] {
            let err = parse(bytes).unwrap_err();
            assert!(err.status().is_some(), "{err:?} must map to a status");
        }
    }

    #[test]
    fn post_without_length_has_empty_body() {
        // RFC 7230 §3.3.3 — and how curl sends an empty POST.
        let req = parse(b"POST /route HTTP/1.1\r\n\r\n").unwrap();
        assert!(req.body.is_empty());
    }

    #[test]
    fn clean_eof_is_closed() {
        assert!(matches!(parse(b"").unwrap_err(), HttpError::Closed));
    }

    #[test]
    fn limits_are_enforced() {
        let tiny = Limits {
            max_request_line: 16,
            max_headers: 1,
            max_header_line: 16,
            max_body: 8,
        };
        let long_line = b"GET /aaaaaaaaaaaaaaaaaaaaaaaaaaaa HTTP/1.1\r\n\r\n";
        let err = read_request(&mut BufReader::new(&long_line[..]), &tiny).unwrap_err();
        assert_eq!(err.status(), Some(413));

        let many = b"GET / HTTP/1.1\r\nA: 1\r\nB: 2\r\n\r\n";
        let err = read_request(&mut BufReader::new(&many[..]), &tiny).unwrap_err();
        assert_eq!(err.status(), Some(413));

        let big = b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789";
        let err = read_request(&mut BufReader::new(&big[..]), &tiny).unwrap_err();
        assert_eq!(err.status(), Some(413));
    }

    #[test]
    fn responses_serialize_with_length_and_connection() {
        let mut out = Vec::new();
        let response = Response::json(200, "{\"ok\":true}".to_string())
            .with_header("Retry-After", "1".to_string());
        write_response(&mut out, &response, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n{\"ok\":true}"));

        let mut out = Vec::new();
        write_response(&mut out, &Response::text(200, "hi".to_string()), false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
    }
}
