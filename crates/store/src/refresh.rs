//! Incremental refresh of a frozen collection: re-probe a few databases,
//! re-fit **their** shrinkage mixtures, and emit per-round delta patches
//! — without perturbing a single bit of any untouched database.
//!
//! ## The pinned epoch
//!
//! Shrinkage ties every database to the category hierarchy: components
//! are aggregates over *all* databases, so naively re-running
//! [`CollectionStore::shrink_all`] after one database changes would move
//! every database's shrunk summary (the touched database's new sample
//! leaks into every shared aggregate). That would make "delta" snapshots
//! as large as full ones and refresh cost proportional to the catalog.
//!
//! A [`RefreshSession`] instead **pins the epoch model** at session
//! start:
//!
//! * the per-database category components (path-edge aggregates plus the
//!   leaf remainder, exactly as [`CategorySummaries::components_for`]
//!   computed them from the base store),
//! * the uniform-model probability `1/|V|` of the base dictionary, and
//! * LM's global model (the Root summary).
//!
//! A refresh round then re-fits the EM mixture **only for the re-probed
//! database**, against its pinned components — the "restricted EM refit".
//! Untouched databases keep their components, λs, and summaries
//! literally unchanged, so a delta records only the touched databases
//! and replaying it is bit-identical to [`RefreshSession::freeze_full`],
//! a full freeze of the same post-refresh state under the same pinned
//! epoch. Re-basing the epoch (folding refreshed samples back into the
//! shared aggregates) is a full `dbselect freeze`, which starts a new
//! chain.

use std::sync::Arc;

use dbselect_core::category_summary::{CategorySummaries, CategoryWeighting, SummaryComponent};
use dbselect_core::frozen::FrozenSummary;
use dbselect_core::hierarchy::CategoryId;
use dbselect_core::shrinkage::{shrink, ShrinkageConfig, ShrunkSummary};
use dbselect_core::summary::ContentSummary;
use textindex::{TermDict, TermId};

use broker::{Catalog, CatalogEntry};

use crate::catalog::StoredCatalog;
use crate::delta::DbPatch;
use crate::snapshot::ServingSnapshot;

/// A refresh epoch over a frozen v1 catalog: applies re-probe results
/// one database at a time and can freeze the full current state for
/// reference (or as a chain base).
#[derive(Debug)]
pub struct RefreshSession {
    stored: StoredCatalog,
    /// Pinned per-database category components (base epoch).
    components: Vec<Vec<Arc<SummaryComponent>>>,
    /// Pinned shrinkage config — `uniform_p` is `1/|V|` of the *base*
    /// dictionary, even after probes grow the dictionary.
    config: ShrinkageConfig,
    /// Pinned global model (Root summary under BySize, the same model
    /// [`ServingSnapshot::from_stored`] freezes).
    lm_global: Vec<(TermId, f64)>,
    /// Full category path per database (fixed; classification does not
    /// change under refresh).
    categories: Vec<String>,
}

impl RefreshSession {
    /// Pin the epoch model of `stored` and start a session.
    pub fn new(stored: StoredCatalog) -> RefreshSession {
        let refs: Vec<(CategoryId, &ContentSummary)> = stored
            .store
            .databases
            .iter()
            .map(|db| (db.classification, &db.summary))
            .collect();
        let summaries = CategorySummaries::build(&stored.store.hierarchy, &refs, stored.weighting);
        let components = stored
            .store
            .databases
            .iter()
            .map(|db| {
                summaries.components_for(
                    &stored.store.hierarchy,
                    db.classification,
                    &db.summary,
                    true,
                )
            })
            .collect();
        let config = ShrinkageConfig {
            uniform_p: 1.0 / stored.store.dict.len().max(1) as f64,
            ..Default::default()
        };
        let root = stored.store.root_summary(CategoryWeighting::BySize);
        let mut lm_global: Vec<(TermId, f64)> =
            root.iter().map(|(t, _)| (t, root.p_tf(t))).collect();
        lm_global.sort_unstable_by_key(|&(t, _)| t);
        let categories = stored
            .store
            .databases
            .iter()
            .map(|db| stored.store.hierarchy.full_name(db.classification))
            .collect();
        RefreshSession {
            stored,
            components,
            config,
            lm_global,
            categories,
        }
    }

    /// Number of databases under refresh.
    pub fn len(&self) -> usize {
        self.stored.store.databases.len()
    }

    /// True when the session manages no databases.
    pub fn is_empty(&self) -> bool {
        self.stored.store.databases.is_empty()
    }

    /// Database names, index order.
    pub fn names(&self) -> Vec<&str> {
        self.stored
            .store
            .databases
            .iter()
            .map(|db| db.name.as_str())
            .collect()
    }

    /// The shared term dictionary (probes intern new terms into it).
    pub fn dict(&self) -> &TermDict {
        &self.stored.store.dict
    }

    /// Mutable dictionary access for re-probe document ingestion.
    pub fn dict_mut(&mut self) -> &mut TermDict {
        &mut self.stored.store.dict
    }

    /// The current content summary of `db` (base, or last probe applied).
    pub fn summary(&self, db: usize) -> &ContentSummary {
        &self.stored.store.databases[db].summary
    }

    /// Sample coverage of `db` — `sample_size / |D̂|`, the uncertainty
    /// signal the refresh scheduler prioritizes on (0 when the size
    /// estimate is degenerate).
    pub fn coverage(&self, db: usize) -> f64 {
        let s = self.summary(db);
        if s.db_size() > 0.0 {
            f64::from(s.sample_size()) / s.db_size()
        } else {
            1.0
        }
    }

    /// Apply one re-probe result: re-fit the database's EM mixture
    /// against its **pinned** components (the restricted refit — no other
    /// database's λs move), store the new summary and λs, and return the
    /// delta patch that takes a serving catalog from the previous state
    /// to this one.
    pub fn apply_probe(&mut self, db: usize, summary: ContentSummary) -> DbPatch {
        let fitted = shrink(&summary, &self.components[db], &self.config);
        self.stored.lambdas_df[db] = fitted.lambdas().to_vec();
        self.stored.lambdas_tf[db] = fitted.lambdas_tf().to_vec();
        let patch = DbPatch {
            db: db as u32,
            gamma: summary.gamma().unwrap_or(-2.0),
            unshrunk: FrozenSummary::from_unshrunk(&summary),
            shrunk: FrozenSummary::from_shrunk(&fitted),
        };
        self.stored.store.databases[db].summary = summary;
        patch
    }

    /// Freeze the session's **entire current state** under the pinned
    /// epoch — the reference a replayed delta chain must match bit for
    /// bit. At generation 0 (no probes applied) this equals
    /// [`ServingSnapshot::from_stored`], so a `dbselect freeze` output
    /// can serve as a chain base.
    pub fn freeze_full(&self) -> ServingSnapshot {
        let entries: Vec<CatalogEntry> = self
            .stored
            .store
            .databases
            .iter()
            .enumerate()
            .map(|(i, db)| {
                let shrunk = ShrunkSummary::from_parts(
                    &db.summary,
                    &self.components[i],
                    self.stored.lambdas_df[i].clone(),
                    self.stored.lambdas_tf[i].clone(),
                    self.config.uniform_p,
                );
                CatalogEntry {
                    name: db.name.clone(),
                    unshrunk: db.summary.clone(),
                    shrunk,
                }
            })
            .collect();
        ServingSnapshot {
            dict: self.stored.store.dict.clone(),
            categories: self.categories.clone(),
            lm_global: self.lm_global.clone(),
            catalog: Catalog::build(entries),
        }
    }
}
