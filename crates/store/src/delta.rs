//! Delta snapshots: refresh rounds persisted as a chain.
//!
//! A refresh round re-probes a handful of databases and leaves everything
//! else bit-untouched, so persisting a whole v3 snapshot per round would
//! write the entire catalog to replace a few rows. A **delta snapshot**
//! records only the touched databases — their re-frozen summary pair, the
//! re-resolved γ, and whatever dictionary terms the new sample introduced
//! — and chains onto its parent cryptographic-checksum-style:
//!
//! * each file's payload is covered by the same FNV-1a 64 digest the
//!   serving snapshot uses, and
//! * each delta embeds its **parent's digest** plus a **monotone
//!   generation number**, so a chain replays only against the exact bytes
//!   it was cut from. Replace the base (or any mid-chain delta) and every
//!   descendant is rejected *before* anything is applied — a chain load
//!   is all-or-nothing.
//!
//! ## On-disk layout
//!
//! A chain is a directory:
//!
//! ```text
//! chain/
//!   base.snap          full v3 serving snapshot        (generation 0)
//!   delta-000001.snap  first refresh round             (generation 1)
//!   delta-000002.snap  ...
//! ```
//!
//! ## Delta wire format
//!
//! Everything little-endian, `MAX_LEN`-guarded, NaN-rejected — the
//! workspace codec rules.
//!
//! ```text
//! magic  b"DBSDEL\x00\x01"              8 bytes, not checksummed
//! ── checksummed payload ──────────────────────────────────────────
//! parent      u64   payload digest of the previous chain file
//! generation  u64   1-based position in the chain
//! dict_base   u32   dictionary length before this delta's terms
//! dict_new    u32 count, then count length-prefixed UTF-8 terms
//! patches     u32 count, then per touched database (ascending):
//!               db u32 · gamma f64
//!               unshrunk frozen summary · shrunk frozen summary
//! ── end of payload ───────────────────────────────────────────────
//! checksum    u64   FNV-1a over the payload
//! ```
//!
//! Replaying a chain applies each delta through
//! [`broker::Catalog::apply_updates`] — the same touched-rows-only merge
//! the in-memory refresher uses — so `load_chain(dir)` is bit-identical
//! to a full freeze of the post-refresh store (asserted by the refresh
//! proptests).

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use broker::DbUpdate;
use dbselect_core::frozen::FrozenSummary;

use crate::codec::{
    corrupt, read_f64, read_len, read_str, read_u32, read_u64, write_f64, write_str, write_u32,
    write_u64, ChecksumReader, ChecksumWriter,
};
use crate::snapshot::{read_frozen, write_frozen, ServingSnapshot};

/// Magic bytes + format version for delta snapshots.
const DELTA_MAGIC: &[u8; 8] = b"DBSDEL\x00\x01";

/// The base snapshot's file name inside a chain directory.
pub const BASE_FILE: &str = "base.snap";

/// The delta file name for `generation` (1-based).
pub fn delta_file_name(generation: u64) -> String {
    format!("delta-{generation:06}.snap")
}

/// One touched database inside a delta: everything
/// [`broker::Catalog::apply_updates`] needs to replace its columns.
#[derive(Debug, Clone)]
pub struct DbPatch {
    /// Index of the re-probed database.
    pub db: u32,
    /// Re-resolved power-law exponent.
    pub gamma: f64,
    /// Re-frozen sample summary `Ŝ(D)`.
    pub unshrunk: FrozenSummary,
    /// Re-frozen shrinkage summary `R̂(D)`.
    pub shrunk: FrozenSummary,
}

/// One refresh round on disk.
#[derive(Debug, Clone)]
pub struct DeltaRecord {
    /// Payload digest of the parent chain file.
    pub parent: u64,
    /// 1-based chain position.
    pub generation: u64,
    /// Dictionary length before `appended_terms` (chain-order check).
    pub dict_base: u32,
    /// Terms the refresh interned beyond `dict_base`, in id order.
    pub appended_terms: Vec<String>,
    /// Touched databases, ascending by index.
    pub patches: Vec<DbPatch>,
}

impl DeltaRecord {
    /// Serialize (magic, checksummed payload, trailing digest); returns
    /// the payload digest — the `parent` value of the next delta.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<u64> {
        w.write_all(DELTA_MAGIC)?;
        let mut cw = ChecksumWriter::new(&mut *w);
        write_u64(&mut cw, self.parent)?;
        write_u64(&mut cw, self.generation)?;
        write_u32(&mut cw, self.dict_base)?;
        write_u32(&mut cw, self.appended_terms.len() as u32)?;
        for term in &self.appended_terms {
            write_str(&mut cw, term)?;
        }
        write_u32(&mut cw, self.patches.len() as u32)?;
        for p in &self.patches {
            write_u32(&mut cw, p.db)?;
            write_f64(&mut cw, p.gamma)?;
            write_frozen(&mut cw, &p.unshrunk)?;
            write_frozen(&mut cw, &p.shrunk)?;
        }
        let digest = cw.digest();
        write_u64(w, digest)?;
        Ok(digest)
    }

    /// Deserialize, validating structure and the payload checksum.
    /// Returns the record and its payload digest.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<(DeltaRecord, u64)> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != DELTA_MAGIC {
            return Err(corrupt("bad delta magic or unsupported version"));
        }
        let mut cr = ChecksumReader::new(&mut *r);
        let parent = read_u64(&mut cr)?;
        let generation = read_u64(&mut cr)?;
        if generation == 0 {
            return Err(corrupt("delta generation must be positive"));
        }
        let dict_base = read_u32(&mut cr)?;
        let appended = read_len(&mut cr)?;
        let mut appended_terms = Vec::new();
        for _ in 0..appended {
            appended_terms.push(read_str(&mut cr)?);
        }
        let patch_count = read_len(&mut cr)?;
        let mut patches: Vec<DbPatch> = Vec::new();
        for _ in 0..patch_count {
            let db = read_u32(&mut cr)?;
            if let Some(prev) = patches.last() {
                if db <= prev.db {
                    return Err(corrupt("delta patches not strictly ascending by database"));
                }
            }
            let gamma = read_f64(&mut cr)?;
            let unshrunk = read_frozen(&mut cr)?;
            let shrunk = read_frozen(&mut cr)?;
            patches.push(DbPatch {
                db,
                gamma,
                unshrunk,
                shrunk,
            });
        }
        let digest = cr.digest();
        if read_u64(r)? != digest {
            return Err(corrupt("delta checksum mismatch"));
        }
        Ok((
            DeltaRecord {
                parent,
                generation,
                dict_base,
                appended_terms,
                patches,
            },
            digest,
        ))
    }

    /// Load from a file (buffered), rejecting trailing bytes.
    pub fn load(path: impl AsRef<Path>) -> io::Result<(DeltaRecord, u64)> {
        let mut r = BufReader::new(std::fs::File::open(path)?);
        let record = Self::read_from(&mut r)?;
        let mut probe = [0u8; 1];
        if r.read(&mut probe)? != 0 {
            return Err(corrupt("trailing bytes after delta"));
        }
        Ok(record)
    }
}

/// Everything a chain load produces beyond the snapshot itself.
#[derive(Debug)]
pub struct ChainLoad {
    /// The replayed serving snapshot (base + every delta applied).
    pub snapshot: ServingSnapshot,
    /// Number of deltas applied — the chain's tip generation.
    pub generation: u64,
    /// Payload digest of the tip file (base digest for a bare chain):
    /// the fingerprint `/readyz` reports.
    pub checksum: u64,
    /// Total on-disk size of base + deltas.
    pub bytes: u64,
}

/// Prefix load errors with the failing file and its chain role, keeping
/// the error kind (the daemon's 404/400 mapping relies on it).
fn chain_context(path: &Path, role: &str, e: io::Error) -> io::Error {
    io::Error::new(e.kind(), format!("{} ({role}): {e}", path.display()))
}

/// The deltas present in `dir`, sorted ascending by generation, without
/// opening any of them. Non-delta file names are ignored.
fn scan_deltas(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut deltas = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(number) = name
            .strip_prefix("delta-")
            .and_then(|rest| rest.strip_suffix(".snap"))
        else {
            continue;
        };
        if number.is_empty() || !number.bytes().all(|b| b.is_ascii_digit()) {
            continue;
        }
        let generation: u64 = number
            .parse()
            .map_err(|_| corrupt("delta file number out of range"))?;
        deltas.push((generation, entry.path()));
    }
    deltas.sort_unstable();
    Ok(deltas)
}

/// The tip generation a chain directory advertises (0 with no deltas),
/// from file names alone — the cheap poll the daemon's refresher runs
/// every interval. Errors if `dir` is not a chain directory at all.
pub fn chain_tip_generation(dir: impl AsRef<Path>) -> io::Result<u64> {
    let dir = dir.as_ref();
    if !dir.join(BASE_FILE).is_file() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{}: no {BASE_FILE} in chain directory", dir.display()),
        ));
    }
    Ok(scan_deltas(dir)?.last().map_or(0, |&(g, _)| g))
}

/// Replay a chain directory into serving form: load the base snapshot,
/// then apply every delta in generation order through the incremental
/// catalog update. Validation is strict and the application atomic —
/// any gap in the numbering, any generation or parent-digest mismatch,
/// any structural defect anywhere rejects the **whole** chain with the
/// failing file and chain position in the error, and nothing
/// half-applied escapes (the snapshot is only assembled locally).
pub fn load_chain(dir: impl AsRef<Path>) -> io::Result<ChainLoad> {
    let dir = dir.as_ref();
    let base_path = dir.join(BASE_FILE);
    let (mut snapshot, mut tip) = ServingSnapshot::load_with_digest(&base_path)
        .map_err(|e| chain_context(&base_path, "chain base", e))?;
    let mut bytes = std::fs::metadata(&base_path)?.len();

    let deltas = scan_deltas(dir)?;
    let mut generation = 0u64;
    for (number, path) in deltas {
        let role = format!("chain delta {number}");
        let wrap = |e: io::Error| chain_context(&path, &role, e);
        if number != generation + 1 {
            return Err(wrap(corrupt(if number <= generation {
                "duplicate delta generation"
            } else {
                "gap in delta chain numbering"
            })));
        }
        let (record, digest) = DeltaRecord::load(&path).map_err(wrap)?;
        if record.generation != number {
            return Err(wrap(corrupt("delta generation disagrees with file name")));
        }
        if record.parent != tip {
            return Err(wrap(corrupt(
                "parent checksum mismatch: chain base or predecessor was replaced",
            )));
        }
        if record.dict_base as usize != snapshot.dict.len() {
            return Err(wrap(corrupt("delta dictionary base disagrees with chain")));
        }
        for term in &record.appended_terms {
            let id = snapshot.dict.intern(term);
            if id as usize != snapshot.dict.len() - 1 {
                return Err(wrap(corrupt("delta appends a term the dictionary already has")));
            }
        }
        let updates: Vec<DbUpdate> = record
            .patches
            .into_iter()
            .map(|p| DbUpdate {
                db: p.db as usize,
                gamma: p.gamma,
                unshrunk: p.unshrunk,
                shrunk: p.shrunk,
            })
            .collect();
        snapshot.catalog = snapshot.catalog.apply_updates(&updates).map_err(corrupt).map_err(wrap)?;
        bytes += std::fs::metadata(&path)?.len();
        tip = digest;
        generation = number;
    }
    Ok(ChainLoad {
        snapshot,
        generation,
        checksum: tip,
        bytes,
    })
}

/// Appends refresh rounds to a chain directory. Files are written to a
/// temporary name and renamed into place, so a concurrently polling
/// daemon never observes a half-written delta.
#[derive(Debug)]
pub struct ChainWriter {
    dir: PathBuf,
    tip: u64,
    generation: u64,
    dict_len: usize,
}

impl ChainWriter {
    /// Start a fresh chain: write `base` as `base.snap` (failing if one
    /// already exists — a chain's base is immutable by construction).
    pub fn create(dir: impl AsRef<Path>, base: &ServingSnapshot) -> io::Result<ChainWriter> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(BASE_FILE);
        if path.exists() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("{}: chain base already exists", path.display()),
            ));
        }
        write_atomically(&path, |w| base.write_to(w))?;
        let tip = read_trailing_digest(&path)?;
        Ok(ChainWriter {
            dir,
            tip,
            generation: 0,
            dict_len: base.dict.len(),
        })
    }

    /// Resume a chain directory that holds only a base (no deltas yet),
    /// verifying the on-disk base is bit-identical to `expected` — the
    /// caller's reconstruction of the pre-refresh catalog. A chain with
    /// deltas cannot be resumed (the session that wrote them owned the
    /// dictionary growth); re-base with a fresh full freeze instead.
    pub fn open_base_only(
        dir: impl AsRef<Path>,
        expected: &ServingSnapshot,
    ) -> io::Result<ChainWriter> {
        let dir = dir.as_ref().to_path_buf();
        let tip_generation = chain_tip_generation(&dir)?;
        if tip_generation != 0 {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!(
                    "{}: chain already holds {tip_generation} delta round(s); \
                     re-base with a fresh full freeze to start a new chain",
                    dir.display()
                ),
            ));
        }
        let path = dir.join(BASE_FILE);
        let mut buf = Vec::new();
        expected.write_to(&mut buf)?;
        let expected_digest = u64::from_le_bytes(
            buf[buf.len() - 8..]
                .try_into()
                .expect("snapshot serialization always ends in a digest"),
        );
        let on_disk = read_trailing_digest(&path)?;
        if on_disk != expected_digest {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{}: existing chain base (checksum {on_disk:016x}) does not match \
                     the catalog being refreshed (checksum {expected_digest:016x})",
                    path.display()
                ),
            ));
        }
        Ok(ChainWriter {
            dir,
            tip: on_disk,
            generation: 0,
            dict_len: expected.dict.len(),
        })
    }

    /// The chain's current tip generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The chain's current tip payload digest.
    pub fn tip_checksum(&self) -> u64 {
        self.tip
    }

    /// [`append`](Self::append) with the appended dictionary terms read
    /// straight off the session dictionary: everything interned past the
    /// previous chain file's dictionary length rides along.
    pub fn append_round(
        &mut self,
        dict: &textindex::TermDict,
        patches: Vec<DbPatch>,
    ) -> io::Result<u64> {
        let appended = (self.dict_len..dict.len())
            .map(|id| dict.term(id as u32).to_string())
            .collect();
        self.append(appended, patches)
    }

    /// Append one refresh round: `appended_terms` are the dictionary
    /// terms interned since the previous chain file (id order), and
    /// `patches` the touched databases, ascending. Returns the new tip
    /// generation.
    pub fn append(&mut self, appended_terms: Vec<String>, patches: Vec<DbPatch>) -> io::Result<u64> {
        let record = DeltaRecord {
            parent: self.tip,
            generation: self.generation + 1,
            dict_base: u32::try_from(self.dict_len)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "dictionary too large"))?,
            appended_terms,
            patches,
        };
        let path = self.dir.join(delta_file_name(record.generation));
        let digest = write_atomically(&path, |w| record.write_to(w))?;
        self.generation = record.generation;
        self.tip = digest;
        self.dict_len += record.appended_terms.len();
        Ok(self.generation)
    }
}

/// Write through a sibling temp file + rename, so readers only ever see
/// complete files.
fn write_atomically<T>(
    path: &Path,
    write: impl FnOnce(&mut BufWriter<std::fs::File>) -> io::Result<T>,
) -> io::Result<T> {
    let tmp = path.with_extension("tmp");
    let mut w = BufWriter::new(std::fs::File::create(&tmp)?);
    let out = write(&mut w)?;
    w.flush()?;
    drop(w);
    std::fs::rename(&tmp, path)?;
    Ok(out)
}

/// The trailing FNV-1a payload digest of a snapshot/delta file.
fn read_trailing_digest(path: &Path) -> io::Result<u64> {
    use std::io::Seek as _;
    let mut f = std::fs::File::open(path)?;
    f.seek(io::SeekFrom::End(-8))?;
    read_u64(&mut f)
}
