//! The multi-catalog tenant manifest: a directory of serving snapshots,
//! one tenant per file.
//!
//! `dbselectd --tenants DIR` hosts many named catalogs in one process.
//! The manifest is deliberately not another binary format — it is the
//! directory itself: every regular file named `<tenant>.snap` (or
//! `<tenant>.cat`, the v1 extension) becomes a tenant whose name is the
//! file stem. Adding a tenant is `cp`; updating one is writing a new
//! snapshot and `POST /t/<name>/admin/reload`.
//!
//! Tenant names are user-supplied (they come off the filesystem), so they
//! are validated here once — non-empty, no path separators, no leading
//! dot, ≤ 128 bytes — and treated as hostile everywhere else (the daemon
//! escapes them in Prometheus labels, and they never interpolate into
//! paths except through the scanned entries below).

use std::io;
use std::path::{Path, PathBuf};

/// Snapshot file extensions recognized as tenant catalogs.
const EXTENSIONS: [&str; 2] = ["snap", "cat"];

/// One tenant: a name and the snapshot file backing it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantEntry {
    /// The tenant name (the snapshot file's stem), validated.
    pub name: String,
    /// Path of the v1/v2 snapshot file to serve.
    pub path: PathBuf,
}

/// The scanned manifest: tenant entries sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantManifest {
    /// Entries in ascending name order (scan order is irrelevant).
    pub tenants: Vec<TenantEntry>,
}

/// Validate a tenant name. Names appear in URLs (`/t/<name>/route`) and
/// metric labels, so the rules are structural, not cosmetic: non-empty,
/// no `/` (the URL router splits on it), no NUL, no leading `.` (hidden
/// files and `..`), at most 128 bytes.
pub fn validate_tenant_name(name: &str) -> Result<(), String> {
    if name.is_empty() {
        return Err("tenant name is empty".to_string());
    }
    if name.len() > 128 {
        return Err(format!("tenant name `{name}` exceeds 128 bytes"));
    }
    if name.starts_with('.') {
        return Err(format!("tenant name `{name}` starts with `.`"));
    }
    if name.contains('/') || name.contains('\\') || name.contains('\0') {
        return Err(format!("tenant name `{name}` contains a path separator"));
    }
    Ok(())
}

impl TenantManifest {
    /// Scan `dir` for snapshot files. Non-snapshot files are ignored;
    /// invalid tenant names and duplicate stems (e.g. `a.snap` next to
    /// `a.cat`) are errors — silently dropping a tenant would serve 404s
    /// where the operator expects a catalog.
    pub fn scan(dir: &Path) -> io::Result<TenantManifest> {
        let invalid = |detail: String| io::Error::new(io::ErrorKind::InvalidInput, detail);
        let mut tenants: Vec<TenantEntry> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let path = entry.path();
            if !entry.file_type()?.is_file() {
                continue;
            }
            let Some(ext) = path.extension().and_then(|e| e.to_str()) else {
                continue;
            };
            if !EXTENSIONS.contains(&ext) {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                return Err(invalid(format!("non-UTF-8 snapshot name: {path:?}")));
            };
            validate_tenant_name(stem).map_err(invalid)?;
            tenants.push(TenantEntry {
                name: stem.to_string(),
                path,
            });
        }
        tenants.sort_by(|a, b| a.name.cmp(&b.name));
        if tenants.is_empty() {
            return Err(invalid(format!(
                "no snapshot files (*.snap, *.cat) in {}",
                dir.display()
            )));
        }
        if let Some(w) = tenants.windows(2).find(|w| w[0].name == w[1].name) {
            return Err(invalid(format!(
                "duplicate tenant `{}`: {} and {}",
                w[0].name,
                w[0].path.display(),
                w[1].path.display()
            )));
        }
        Ok(TenantManifest { tenants })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("manifest-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn scan_collects_sorted_snapshot_stems() {
        let dir = scratch_dir("sorted");
        for name in [
            "beta.snap",
            "alpha.snap",
            "gamma.cat",
            "README.md",
            ".hidden.snap",
        ] {
            std::fs::write(dir.join(name), b"x").unwrap();
        }
        // A subdirectory that looks like a snapshot is skipped.
        std::fs::create_dir(dir.join("dir.snap")).unwrap();
        let manifest = TenantManifest::scan(&dir);
        // `.hidden.snap` has stem `.hidden` → leading dot → error.
        assert!(manifest.is_err(), "hidden snapshot must be rejected loudly");
        std::fs::remove_file(dir.join(".hidden.snap")).unwrap();
        let manifest = TenantManifest::scan(&dir).unwrap();
        let names: Vec<&str> = manifest.tenants.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "beta", "gamma"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_stems_are_rejected() {
        let dir = scratch_dir("dup");
        std::fs::write(dir.join("a.snap"), b"x").unwrap();
        std::fs::write(dir.join("a.cat"), b"x").unwrap();
        let err = TenantManifest::scan(&dir).unwrap_err();
        assert!(err.to_string().contains("duplicate tenant"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_directory_is_an_error() {
        let dir = scratch_dir("empty");
        assert!(TenantManifest::scan(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn name_validation_rules() {
        assert!(validate_tenant_name("prod-us").is_ok());
        assert!(validate_tenant_name("A_b.c-9").is_ok());
        assert!(validate_tenant_name("").is_err());
        assert!(validate_tenant_name(".dot").is_err());
        assert!(validate_tenant_name("a/b").is_err());
        assert!(validate_tenant_name("a\\b").is_err());
        assert!(validate_tenant_name(&"x".repeat(129)).is_err());
        // Hostile-but-legal names are allowed (metrics must escape them).
        assert!(validate_tenant_name("weird\"name\nnewline").is_ok());
    }
}
