//! Low-level binary encoding primitives: little-endian integers and floats,
//! length-prefixed UTF-8 strings, with defensive decoding (corrupt input
//! yields `io::Error`, never a panic or an absurd allocation).

use std::io::{self, Read, Write};

/// Hard cap on any length field, to keep corrupt input from triggering
/// multi-gigabyte allocations.
pub const MAX_LEN: u32 = 1 << 28;

/// Write a `u32` (little-endian).
pub fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Write a `u64` (little-endian).
pub fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Write an `f64` (little-endian IEEE-754 bits).
pub fn write_f64<W: Write>(w: &mut W, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Write a length-prefixed UTF-8 string.
pub fn write_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    let len = u32::try_from(s.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "string too long"))?;
    write_u32(w, len)?;
    w.write_all(s.as_bytes())
}

/// Read a `u32`.
pub fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Read a `u64`.
pub fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Read an `f64`, rejecting NaN (no field in the store is legitimately NaN,
/// and letting one in would poison score comparisons downstream).
pub fn read_f64<R: Read>(r: &mut R) -> io::Result<f64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    let v = f64::from_le_bytes(buf);
    if v.is_nan() {
        return Err(corrupt("NaN float field"));
    }
    Ok(v)
}

/// Read a length-prefixed UTF-8 string.
pub fn read_str<R: Read>(r: &mut R) -> io::Result<String> {
    let len = read_len(r)?;
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| corrupt("invalid UTF-8 in string field"))
}

/// Read a length field with the [`MAX_LEN`] sanity cap.
pub fn read_len<R: Read>(r: &mut R) -> io::Result<usize> {
    let len = read_u32(r)?;
    if len > MAX_LEN {
        return Err(corrupt("length field exceeds sanity cap"));
    }
    Ok(len as usize)
}

/// An `InvalidData` error for corrupt input.
pub fn corrupt(message: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("corrupt store: {message}"),
    )
}

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// A streaming FNV-1a 64 digest folded over **8-byte little-endian
/// words** rather than single bytes (8× fewer multiply steps — the
/// checksum must keep up with multi-megabyte snapshot payloads). The
/// trailing partial word is zero-padded and the total byte length is
/// folded in last, so `"a"` and `"a\0"` digest differently.
///
/// Detection guarantee: each fold `h' = (h ⊕ word) · prime` is a
/// bijection in `word` for fixed `h` (the prime is odd, hence invertible
/// mod 2⁶⁴), and a bijection in `h` for fixed `word`. A single corrupted
/// byte changes exactly one word, which changes that step's output, and
/// every later step maps distinct states to distinct states — so any
/// single-byte corruption provably changes the digest.
#[derive(Debug, Clone)]
struct Fnv64 {
    hash: u64,
    pending: [u8; 8],
    pending_len: usize,
    total: u64,
}

impl Fnv64 {
    fn new() -> Self {
        Fnv64 {
            hash: FNV_OFFSET,
            pending: [0u8; 8],
            pending_len: 0,
            total: 0,
        }
    }

    fn fold(hash: u64, word: u64) -> u64 {
        (hash ^ word).wrapping_mul(FNV_PRIME)
    }

    fn update(&mut self, mut buf: &[u8]) {
        self.total += buf.len() as u64;
        if self.pending_len > 0 {
            let take = (8 - self.pending_len).min(buf.len());
            self.pending[self.pending_len..self.pending_len + take].copy_from_slice(&buf[..take]);
            self.pending_len += take;
            buf = &buf[take..];
            if self.pending_len < 8 {
                return;
            }
            self.hash = Self::fold(self.hash, u64::from_le_bytes(self.pending));
            self.pending_len = 0;
        }
        let mut words = buf.chunks_exact(8);
        for word in &mut words {
            self.hash = Self::fold(
                self.hash,
                u64::from_le_bytes(word.try_into().expect("8-byte chunk")),
            );
        }
        let rest = words.remainder();
        self.pending[..rest.len()].copy_from_slice(rest);
        self.pending_len = rest.len();
    }

    fn digest(&self) -> u64 {
        let mut hash = self.hash;
        if self.pending_len > 0 {
            let mut word = [0u8; 8];
            word[..self.pending_len].copy_from_slice(&self.pending[..self.pending_len]);
            hash = Self::fold(hash, u64::from_le_bytes(word));
        }
        Self::fold(hash, self.total)
    }
}

/// A [`Write`] adapter that folds everything written into a running
/// [`Fnv64`] checksum. Used by the v2 snapshot: the writer streams the
/// payload through this and appends [`ChecksumWriter::digest`] as a
/// trailing `u64`, so any later corruption is detected at load time.
pub struct ChecksumWriter<W> {
    inner: W,
    fnv: Fnv64,
}

impl<W: Write> ChecksumWriter<W> {
    /// Wrap `inner`, starting from the FNV offset basis.
    pub fn new(inner: W) -> Self {
        ChecksumWriter {
            inner,
            fnv: Fnv64::new(),
        }
    }

    /// The checksum over everything written so far.
    pub fn digest(&self) -> u64 {
        self.fnv.digest()
    }

    /// Unwrap the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for ChecksumWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.fnv.update(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// The [`Read`] counterpart of [`ChecksumWriter`]: folds every byte read
/// into the running digest so the caller can compare against the stored
/// trailing checksum after decoding the payload.
pub struct ChecksumReader<R> {
    inner: R,
    fnv: Fnv64,
}

impl<R: Read> ChecksumReader<R> {
    /// Wrap `inner`, starting from the FNV offset basis.
    pub fn new(inner: R) -> Self {
        ChecksumReader {
            inner,
            fnv: Fnv64::new(),
        }
    }

    /// The checksum over everything read so far.
    pub fn digest(&self) -> u64 {
        self.fnv.digest()
    }

    /// Unwrap the inner reader (to read past the checksummed region).
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read> Read for ChecksumReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.fnv.update(&buf[..n]);
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_round_trip() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 0xDEAD_BEEF).unwrap();
        write_u64(&mut buf, u64::MAX - 7).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_u32(&mut r).unwrap(), 0xDEAD_BEEF);
        assert_eq!(read_u64(&mut r).unwrap(), u64::MAX - 7);
    }

    #[test]
    fn floats_round_trip_and_reject_nan() {
        let mut buf = Vec::new();
        write_f64(&mut buf, -1234.5678).unwrap();
        write_f64(&mut buf, f64::NAN).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_f64(&mut r).unwrap(), -1234.5678);
        assert!(read_f64(&mut r).is_err());
    }

    #[test]
    fn strings_round_trip() {
        let mut buf = Vec::new();
        write_str(&mut buf, "naïve café — δβ").unwrap();
        write_str(&mut buf, "").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_str(&mut r).unwrap(), "naïve café — δβ");
        assert_eq!(read_str(&mut r).unwrap(), "");
    }

    #[test]
    fn oversized_length_is_rejected_without_allocation() {
        let mut buf = Vec::new();
        write_u32(&mut buf, u32::MAX).unwrap();
        assert!(read_str(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let mut buf = Vec::new();
        write_str(&mut buf, "hello").unwrap();
        let mut r = &buf[..buf.len() - 2];
        assert!(read_str(&mut r).is_err());
    }

    #[test]
    fn checksum_writer_and_reader_agree() {
        let mut w = ChecksumWriter::new(Vec::new());
        write_u32(&mut w, 7).unwrap();
        write_str(&mut w, "payload").unwrap();
        write_f64(&mut w, 2.5).unwrap();
        let digest = w.digest();
        let bytes = w.into_inner();
        let mut r = ChecksumReader::new(bytes.as_slice());
        assert_eq!(read_u32(&mut r).unwrap(), 7);
        assert_eq!(read_str(&mut r).unwrap(), "payload");
        assert_eq!(read_f64(&mut r).unwrap(), 2.5);
        assert_eq!(r.digest(), digest);
    }

    #[test]
    fn every_single_byte_flip_changes_the_digest() {
        let mut w = ChecksumWriter::new(Vec::new());
        write_str(&mut w, "checksummed payload").unwrap();
        write_u64(&mut w, 0xABCD).unwrap();
        let digest = w.digest();
        let bytes = w.into_inner();
        for i in 0..bytes.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut mutated = bytes.clone();
                mutated[i] ^= flip;
                let mut r = ChecksumReader::new(mutated.as_slice());
                std::io::copy(&mut r, &mut std::io::sink()).unwrap();
                assert_ne!(r.digest(), digest, "flip {flip:#x} at byte {i}");
            }
        }
    }

    #[test]
    fn digest_is_independent_of_chunking() {
        let data: Vec<u8> = (0..257u16).map(|i| (i % 251) as u8).collect();
        let mut whole = Fnv64::new();
        whole.update(&data);
        for step in [1usize, 3, 7, 8, 13, 64] {
            let mut pieces = Fnv64::new();
            for chunk in data.chunks(step) {
                pieces.update(chunk);
            }
            assert_eq!(pieces.digest(), whole.digest(), "chunk size {step}");
        }
    }

    #[test]
    fn digest_distinguishes_zero_padding_from_data() {
        let mut a = Fnv64::new();
        a.update(b"a");
        let mut b = Fnv64::new();
        b.update(b"a\0");
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 2).unwrap();
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert!(read_str(&mut buf.as_slice()).is_err());
    }
}
