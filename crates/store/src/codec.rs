//! Low-level binary encoding primitives: little-endian integers and floats,
//! length-prefixed UTF-8 strings, with defensive decoding (corrupt input
//! yields `io::Error`, never a panic or an absurd allocation).

use std::io::{self, Read, Write};

/// Hard cap on any length field, to keep corrupt input from triggering
/// multi-gigabyte allocations.
pub const MAX_LEN: u32 = 1 << 28;

/// Write a `u32` (little-endian).
pub fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Write a `u64` (little-endian).
pub fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Write an `f64` (little-endian IEEE-754 bits).
pub fn write_f64<W: Write>(w: &mut W, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Write a length-prefixed UTF-8 string.
pub fn write_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    let len = u32::try_from(s.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "string too long"))?;
    write_u32(w, len)?;
    w.write_all(s.as_bytes())
}

/// Read a `u32`.
pub fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Read a `u64`.
pub fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Read an `f64`, rejecting NaN (no field in the store is legitimately NaN,
/// and letting one in would poison score comparisons downstream).
pub fn read_f64<R: Read>(r: &mut R) -> io::Result<f64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    let v = f64::from_le_bytes(buf);
    if v.is_nan() {
        return Err(corrupt("NaN float field"));
    }
    Ok(v)
}

/// Read a length-prefixed UTF-8 string.
pub fn read_str<R: Read>(r: &mut R) -> io::Result<String> {
    let len = read_len(r)?;
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| corrupt("invalid UTF-8 in string field"))
}

/// Read a length field with the [`MAX_LEN`] sanity cap.
pub fn read_len<R: Read>(r: &mut R) -> io::Result<usize> {
    let len = read_u32(r)?;
    if len > MAX_LEN {
        return Err(corrupt("length field exceeds sanity cap"));
    }
    Ok(len as usize)
}

/// An `InvalidData` error for corrupt input.
pub fn corrupt(message: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("corrupt store: {message}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_round_trip() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 0xDEAD_BEEF).unwrap();
        write_u64(&mut buf, u64::MAX - 7).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_u32(&mut r).unwrap(), 0xDEAD_BEEF);
        assert_eq!(read_u64(&mut r).unwrap(), u64::MAX - 7);
    }

    #[test]
    fn floats_round_trip_and_reject_nan() {
        let mut buf = Vec::new();
        write_f64(&mut buf, -1234.5678).unwrap();
        write_f64(&mut buf, f64::NAN).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_f64(&mut r).unwrap(), -1234.5678);
        assert!(read_f64(&mut r).is_err());
    }

    #[test]
    fn strings_round_trip() {
        let mut buf = Vec::new();
        write_str(&mut buf, "naïve café — δβ").unwrap();
        write_str(&mut buf, "").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_str(&mut r).unwrap(), "naïve café — δβ");
        assert_eq!(read_str(&mut r).unwrap(), "");
    }

    #[test]
    fn oversized_length_is_rejected_without_allocation() {
        let mut buf = Vec::new();
        write_u32(&mut buf, u32::MAX).unwrap();
        assert!(read_str(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let mut buf = Vec::new();
        write_str(&mut buf, "hello").unwrap();
        let mut r = &buf[..buf.len() - 2];
        assert!(read_str(&mut r).is_err());
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 2).unwrap();
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert!(read_str(&mut buf.as_slice()).is_err());
    }
}
