//! Persistence for the broker's frozen [`Catalog`].
//!
//! A [`CollectionStore`] persists what profiling *measured*; this module
//! persists what the broker *serves*. The expensive part of going from one
//! to the other is the shrinkage EM (Section 3.2 of the paper — "the λi
//! weights are computed off-line for each database"). [`StoredCatalog`]
//! therefore embeds the collection store and records, per database, the
//! fitted mixture weights under both probability models plus the weighting
//! policy they were fit under. Loading rebuilds the category components
//! (cheap, deterministic aggregation) and reassembles every
//! [`ShrunkSummary`] via [`ShrunkSummary::from_parts`] — **no EM re-run**
//! — then freezes the result into a serving [`Catalog`].
//!
//! The round trip is bit-exact: `from_parts` with recorded λs reproduces
//! the same probabilities `shrink` produced, so a routed query against a
//! loaded catalog ranks identically to one against the freshly built
//! catalog.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use broker::{Catalog, CatalogEntry};
use dbselect_core::category_summary::{CategorySummaries, CategoryWeighting};
use dbselect_core::hierarchy::CategoryId;
use dbselect_core::shrinkage::ShrunkSummary;
use dbselect_core::summary::ContentSummary;

use crate::codec::{corrupt, read_f64, read_len, read_u32, write_f64, write_u32};
use crate::CollectionStore;

/// Magic bytes + format version for catalog files.
const CATALOG_MAGIC: &[u8; 8] = b"DBSCAT\x00\x01";

/// A collection store frozen for serving: profiling output plus the
/// offline-fitted shrinkage weights.
#[derive(Debug, Clone)]
pub struct StoredCatalog {
    /// The underlying profiled collection.
    pub store: CollectionStore,
    /// The category-aggregation policy the λs were fitted under.
    pub weighting: CategoryWeighting,
    /// Per database: mixture weights under the document-frequency model
    /// (`[λ_uniform, λ_root, …, λ_leaf, λ_database]`).
    pub lambdas_df: Vec<Vec<f64>>,
    /// Per database: mixture weights under the term-frequency model.
    pub lambdas_tf: Vec<Vec<f64>>,
}

impl StoredCatalog {
    /// Run the shrinkage EM once over `store` and record the fitted
    /// weights. This is the offline step; everything downstream
    /// ([`save`](Self::save), [`load`](Self::load),
    /// [`to_catalog`](Self::to_catalog)) reuses the recorded fit.
    pub fn freeze(store: CollectionStore, weighting: CategoryWeighting) -> Self {
        let shrunk = store.shrink_all(weighting);
        let lambdas_df = shrunk.iter().map(|s| s.lambdas().to_vec()).collect();
        let lambdas_tf = shrunk.iter().map(|s| s.lambdas_tf().to_vec()).collect();
        StoredCatalog {
            store,
            weighting,
            lambdas_df,
            lambdas_tf,
        }
    }

    /// Reassemble the shrunk summaries from the recorded λs — component
    /// aggregation only, no EM. Bit-identical to
    /// [`CollectionStore::shrink_all`] with the frozen weighting.
    pub fn rebuild_shrunk(&self) -> Vec<ShrunkSummary> {
        let refs: Vec<(CategoryId, &ContentSummary)> = self
            .store
            .databases
            .iter()
            .map(|db| (db.classification, &db.summary))
            .collect();
        let categories = CategorySummaries::build(&self.store.hierarchy, &refs, self.weighting);
        // Same dummy-category probability `shrink_all` uses.
        let uniform_p = 1.0 / self.store.dict.len().max(1) as f64;
        self.store
            .databases
            .iter()
            .zip(self.lambdas_df.iter().zip(&self.lambdas_tf))
            .map(|(db, (ldf, ltf))| {
                let comps = categories.components_for(
                    &self.store.hierarchy,
                    db.classification,
                    &db.summary,
                    true,
                );
                ShrunkSummary::from_parts(&db.summary, &comps, ldf.clone(), ltf.clone(), uniform_p)
            })
            .collect()
    }

    /// Freeze into a serving [`Catalog`].
    pub fn to_catalog(&self) -> Catalog {
        let shrunk = self.rebuild_shrunk();
        let entries = self
            .store
            .databases
            .iter()
            .zip(shrunk)
            .map(|(db, shrunk)| CatalogEntry {
                name: db.name.clone(),
                unshrunk: db.summary.clone(),
                shrunk,
            })
            .collect::<Vec<_>>();
        Catalog::build(entries)
    }

    /// Serialize into `w`: catalog magic, embedded collection store,
    /// weighting tag, then the per-database λ vectors.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        if self.lambdas_df.len() != self.store.databases.len()
            || self.lambdas_tf.len() != self.store.databases.len()
        {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "one λ vector pair per database required",
            ));
        }
        w.write_all(CATALOG_MAGIC)?;
        self.store.write_to(w)?;
        let tag = match self.weighting {
            CategoryWeighting::BySize => 0,
            CategoryWeighting::Uniform => 1,
        };
        write_u32(w, tag)?;
        for (ldf, ltf) in self.lambdas_df.iter().zip(&self.lambdas_tf) {
            if ldf.len() != ltf.len() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "df/tf λ vectors must have equal length",
                ));
            }
            write_u32(w, ldf.len() as u32)?;
            for &l in ldf {
                write_f64(w, l)?;
            }
            for &l in ltf {
                write_f64(w, l)?;
            }
        }
        Ok(())
    }

    /// Deserialize from `r`, validating structure as it goes.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != CATALOG_MAGIC {
            return Err(corrupt("bad catalog magic or unsupported version"));
        }
        let store = CollectionStore::read_from(r)?;
        let weighting = match read_u32(r)? {
            0 => CategoryWeighting::BySize,
            1 => CategoryWeighting::Uniform,
            _ => return Err(corrupt("unknown category weighting")),
        };
        let mut lambdas_df = Vec::with_capacity(store.databases.len());
        let mut lambdas_tf = Vec::with_capacity(store.databases.len());
        for _ in 0..store.databases.len() {
            let len = read_len(r)?;
            if len < 2 {
                return Err(corrupt("λ vector must cover uniform + database"));
            }
            let mut read_vec = || -> io::Result<Vec<f64>> {
                (0..len)
                    .map(|_| {
                        let l = read_f64(r)?;
                        if !(0.0..=1.0).contains(&l) {
                            return Err(corrupt("mixture weight outside [0, 1]"));
                        }
                        Ok(l)
                    })
                    .collect()
            };
            lambdas_df.push(read_vec()?);
            lambdas_tf.push(read_vec()?);
        }
        Ok(StoredCatalog {
            store,
            weighting,
            lambdas_df,
            lambdas_tf,
        })
    }

    /// Save to a file (buffered).
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        self.write_to(&mut w)?;
        w.flush()
    }

    /// Load from a file (buffered), rejecting trailing bytes.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut r = BufReader::new(std::fs::File::open(path)?);
        let catalog = Self::read_from(&mut r)?;
        let mut probe = [0u8; 1];
        if r.read(&mut probe)? != 0 {
            return Err(corrupt("trailing bytes after catalog"));
        }
        Ok(catalog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StoredDatabase;
    use dbselect_core::hierarchy::Hierarchy;
    use dbselect_core::summary::SummaryView;
    use textindex::{Document, TermDict};

    fn profiled_store() -> CollectionStore {
        let mut dict = TermDict::new();
        let terms: Vec<u32> = ["alpha", "beta", "gamma", "delta"]
            .iter()
            .map(|t| dict.intern(t))
            .collect();
        let mut hierarchy = Hierarchy::new("Root");
        let heart = hierarchy.ensure_path("Health/Heart");
        let soccer = hierarchy.ensure_path("Sports/Soccer");
        let docs1 = [
            Document::from_tokens(0, vec![terms[0], terms[1]]),
            Document::from_tokens(1, vec![terms[0], terms[2]]),
            Document::from_tokens(2, vec![terms[0]]),
        ];
        let docs2 = [
            Document::from_tokens(0, vec![terms[3], terms[1]]),
            Document::from_tokens(1, vec![terms[3]]),
        ];
        let mut s1 = ContentSummary::from_sample(docs1.iter(), 800.0);
        s1.set_gamma(-1.9);
        let s2 = ContentSummary::from_sample(docs2.iter(), 120.0);
        CollectionStore {
            dict,
            hierarchy,
            databases: vec![
                StoredDatabase {
                    name: "heart-db".into(),
                    classification: heart,
                    summary: s1,
                    sample_docs: Vec::new(),
                },
                StoredDatabase {
                    name: "soccer-db".into(),
                    classification: soccer,
                    summary: s2,
                    sample_docs: Vec::new(),
                },
            ],
        }
    }

    #[test]
    fn freeze_records_the_em_fit() {
        let store = profiled_store();
        let shrunk = store.shrink_all(CategoryWeighting::BySize);
        let frozen = StoredCatalog::freeze(store, CategoryWeighting::BySize);
        assert_eq!(frozen.lambdas_df.len(), 2);
        for (recorded, fresh) in frozen.lambdas_df.iter().zip(&shrunk) {
            assert_eq!(recorded.as_slice(), fresh.lambdas());
        }
    }

    #[test]
    fn rebuild_shrunk_is_bit_identical_to_shrink_all() {
        let store = profiled_store();
        let fresh = store.shrink_all(CategoryWeighting::BySize);
        let frozen = StoredCatalog::freeze(store, CategoryWeighting::BySize);
        let rebuilt = frozen.rebuild_shrunk();
        assert_eq!(rebuilt.len(), fresh.len());
        for (a, b) in rebuilt.iter().zip(&fresh) {
            assert_eq!(a.db_size().to_bits(), b.db_size().to_bits());
            assert_eq!(a.word_count().to_bits(), b.word_count().to_bits());
            for t in a.vocabulary() {
                assert_eq!(a.p_df(t).to_bits(), b.p_df(t).to_bits(), "p_df({t})");
                assert_eq!(a.p_tf(t).to_bits(), b.p_tf(t).to_bits(), "p_tf({t})");
            }
        }
    }

    #[test]
    fn round_trip_preserves_catalog_routing_inputs() {
        let frozen = StoredCatalog::freeze(profiled_store(), CategoryWeighting::BySize);
        let mut bytes = Vec::new();
        frozen.write_to(&mut bytes).unwrap();
        let restored = StoredCatalog::read_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(restored.weighting, frozen.weighting);
        assert_eq!(restored.lambdas_df, frozen.lambdas_df);
        assert_eq!(restored.lambdas_tf, frozen.lambdas_tf);
        let original = frozen.to_catalog();
        let loaded = restored.to_catalog();
        assert_eq!(loaded.len(), original.len());
        assert_eq!(loaded.names(), original.names());
        assert_eq!(loaded.mcw().to_bits(), original.mcw().to_bits());
        for db in 0..original.len() {
            assert_eq!(loaded.gamma(db).to_bits(), original.gamma(db).to_bits());
            for &t in original.shrunk(db).terms() {
                assert_eq!(
                    loaded.shrunk(db).p_df(t).to_bits(),
                    original.shrunk(db).p_df(t).to_bits()
                );
            }
        }
    }

    #[test]
    fn save_and_load_via_filesystem() {
        let path =
            std::env::temp_dir().join(format!("dbsel-catalog-test-{}.bin", std::process::id()));
        let frozen = StoredCatalog::freeze(profiled_store(), CategoryWeighting::Uniform);
        frozen.save(&path).unwrap();
        let restored = StoredCatalog::load(&path).unwrap();
        assert_eq!(restored.weighting, CategoryWeighting::Uniform);
        assert_eq!(restored.store.databases[1].name, "soccer-db");
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(b"junk").unwrap();
        }
        assert!(StoredCatalog::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn collection_store_bytes_are_not_a_catalog() {
        let mut bytes = Vec::new();
        profiled_store().write_to(&mut bytes).unwrap();
        assert!(StoredCatalog::read_from(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn corrupt_weighting_and_lambdas_are_rejected() {
        let frozen = StoredCatalog::freeze(profiled_store(), CategoryWeighting::BySize);
        let mut bytes = Vec::new();
        frozen.write_to(&mut bytes).unwrap();
        // The weighting tag sits right after the embedded store; flip it to
        // an unknown value by locating it from the end: per db, 1 length u32
        // + 2·len f64s. Easier: truncate inside the λ block.
        let cut = bytes.len() - 4;
        let mut slice = &bytes[..cut];
        assert!(StoredCatalog::read_from(&mut slice).is_err());
        // Out-of-range mixture weight.
        let tail = bytes.len() - 8;
        bytes[tail..].copy_from_slice(&2.5f64.to_le_bytes());
        assert!(StoredCatalog::read_from(&mut bytes.as_slice()).is_err());
    }
}
