//! The v2 serving snapshot: the columnar catalog on disk, loadable with
//! zero rebuilding.
//!
//! The v1 [`StoredCatalog`] persists profiling output (the embedded sample
//! store plus the fitted λ weights); loading it still re-derives category
//! components, reassembles every shrunk summary, and rebuilds the posting
//! index — ~90% of daemon start-up and `/admin/reload` latency. A
//! [`ServingSnapshot`] instead serializes **exactly the arrays the broker
//! serves from**: the frozen per-database summaries, the CSR posting
//! index, the resolved γ exponents, plus the few sidecar tables a daemon
//! needs (term dictionary, category names, LM's global model). Loading is
//! a straight array read — no EM, no shrunk-summary rebuild, no posting
//! reconstruction — and reproduces the in-memory [`Catalog`] bit for bit.
//!
//! ## Wire format
//!
//! Everything little-endian, every length [`MAX_LEN`]-guarded, every float
//! NaN-rejected on read (the v1 codec's defensive rules). The payload
//! between the magic and the trailing checksum is covered by an FNV-1a 64
//! digest, so any single corrupted byte is detected at load time.
//!
//! ```text
//! magic  b"DBSSNP\x00\x03"               8 bytes, not checksummed
//! ── checksummed payload ──────────────────────────────────────────
//! dict        u32 count, then count length-prefixed UTF-8 terms
//! databases   u32 count, then per database:
//!               name str · category str (full path) · gamma f64
//! mcw         f64
//! unshrunk    per database: frozen summary (below)
//! shrunk      per database: frozen summary (below)
//! index       u32 term count · terms u32×n (strictly ascending)
//!             offsets u32×(n+1) · u32 slab length
//!             dbs u32×len · p_df f64×len · sample_df u32×len
//!             effective u8×len (0|1)
//!             p_tf f64×len                       (v3 kernel aux)
//!             max_df f64×n · max_p_df f64×n · max_p_tf f64×n
//! lm_global   u32 count · (term u32, p_tf f64)×count, ascending
//! ── end of payload ───────────────────────────────────────────────
//! checksum    u64 FNV-1a over the payload, not checksummed
//!
//! frozen summary :=
//!   db_size f64 · sample_size u32 · word_count f64
//!   default_p_df f64 · default_p_tf f64
//!   u32 term count · terms u32×n (strictly ascending)
//!   p_df f64×n · p_tf f64×n · sample_df u32×n
//! ```
//!
//! v2 files (`\x02` magic) lack the kernel aux columns — the token-space
//! posting slab plus the per-term score maxima that power the pruned
//! top-k serving path. They still load: [`Catalog::from_raw_parts`]
//! recomputes the aux columns from the frozen summaries at load time,
//! through the same code `dbselect freeze` runs, so a v2 load is
//! bit-identical to the v3 fast path (asserted by the backward-load test
//! below). v3 loads additionally verify that the persisted maxima
//! dominate their posting slabs, so a structurally valid file can never
//! smuggle an unsound pruning bound past the checksum.
//!
//! [`MAX_LEN`]: crate::codec::MAX_LEN

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use broker::{Catalog, PostingIndex};
use dbselect_core::category_summary::CategoryWeighting;
use dbselect_core::frozen::FrozenSummary;
use textindex::{TermDict, TermId};

use crate::catalog::StoredCatalog;
use crate::codec::{
    corrupt, read_f64, read_len, read_str, read_u32, read_u64, write_f64, write_str, write_u32,
    write_u64, ChecksumReader, ChecksumWriter,
};

/// Magic bytes + format version for serving snapshots (the "v3" catalog
/// format with kernel aux columns; v1 is [`StoredCatalog`]'s `DBSCAT`).
const SNAPSHOT_MAGIC: &[u8; 8] = b"DBSSNP\x00\x03";

/// The previous serving-snapshot version, still accepted on read; aux
/// columns are recomputed from the summaries at load time.
const SNAPSHOT_MAGIC_V2: &[u8; 8] = b"DBSSNP\x00\x02";

/// Everything `dbselectd` and `dbselect route` serve from, in final form.
#[derive(Debug, Clone)]
pub struct ServingSnapshot {
    /// The term dictionary (query analysis).
    pub dict: TermDict,
    /// Full category path per database, catalog order (reports).
    pub categories: Vec<String>,
    /// LM's global model: `(term, p̂(w|G))` of the Root summary, ascending.
    pub lm_global: Vec<(TermId, f64)>,
    /// The columnar serving catalog.
    pub catalog: Catalog,
}

impl ServingSnapshot {
    /// Freeze a v1 [`StoredCatalog`] into serving form — the one-time
    /// migration / `dbselect freeze` path. Runs the v1 rebuild (category
    /// aggregation, `from_parts` shrunk summaries, posting construction)
    /// once; everything downstream reads arrays.
    pub fn from_stored(stored: &StoredCatalog) -> ServingSnapshot {
        let catalog = stored.to_catalog();
        let categories = stored
            .store
            .databases
            .iter()
            .map(|db| stored.store.hierarchy.full_name(db.classification))
            .collect();
        // The Root summary under BySize weighting is the global model both
        // the CLI and the daemon hand to `Lm::new` — freeze its p_tf map.
        let root = stored.store.root_summary(CategoryWeighting::BySize);
        let mut lm_global: Vec<(TermId, f64)> =
            root.iter().map(|(t, _)| (t, root.p_tf(t))).collect();
        lm_global.sort_unstable_by_key(|&(t, _)| t);
        ServingSnapshot {
            dict: stored.store.dict.clone(),
            categories,
            lm_global,
            catalog,
        }
    }

    /// Serialize into `w` (magic, checksummed payload, trailing digest).
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        self.write_versioned(w, 3)
    }

    /// Version-dispatched serializer. `version` 2 omits the kernel aux
    /// columns — kept (privately) so the backward-load test can produce
    /// genuine v2 bytes without pinning a fixture file.
    fn write_versioned<W: Write>(&self, w: &mut W, version: u8) -> io::Result<()> {
        let n = self.catalog.len();
        if self.categories.len() != n {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "one category path per database required",
            ));
        }
        let index = self.catalog.posting_index();
        if version >= 3 && !index.aux_ready() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "kernel aux columns missing; cannot write a v3 snapshot",
            ));
        }
        w.write_all(if version >= 3 {
            SNAPSHOT_MAGIC
        } else {
            SNAPSHOT_MAGIC_V2
        })?;
        let mut cw = ChecksumWriter::new(&mut *w);

        let dict_len = u32::try_from(self.dict.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "dictionary too large"))?;
        write_u32(&mut cw, dict_len)?;
        for id in 0..dict_len {
            write_str(&mut cw, self.dict.term(id))?;
        }

        write_u32(&mut cw, n as u32)?;
        for db in 0..n {
            write_str(&mut cw, &self.catalog.names()[db])?;
            write_str(&mut cw, &self.categories[db])?;
            write_f64(&mut cw, self.catalog.gamma(db))?;
        }
        write_f64(&mut cw, self.catalog.mcw())?;
        for db in 0..n {
            write_frozen(&mut cw, self.catalog.unshrunk(db))?;
        }
        for db in 0..n {
            write_frozen(&mut cw, self.catalog.shrunk(db))?;
        }

        write_u32(&mut cw, index.len() as u32)?;
        for &t in index.terms() {
            write_u32(&mut cw, t)?;
        }
        for &o in index.offsets() {
            write_u32(&mut cw, o)?;
        }
        write_u32(&mut cw, index.dbs().len() as u32)?;
        for &db in index.dbs() {
            write_u32(&mut cw, db)?;
        }
        for &p in index.p_df() {
            write_f64(&mut cw, p)?;
        }
        for &s in index.sample_df() {
            write_u32(&mut cw, s)?;
        }
        for &e in index.effective() {
            cw.write_all(&[u8::from(e)])?;
        }
        if version >= 3 {
            for &p in index.p_tf() {
                write_f64(&mut cw, p)?;
            }
            for &m in index.max_df() {
                write_f64(&mut cw, m)?;
            }
            for &m in index.max_p_df() {
                write_f64(&mut cw, m)?;
            }
            for &m in index.max_p_tf() {
                write_f64(&mut cw, m)?;
            }
        }

        write_u32(&mut cw, self.lm_global.len() as u32)?;
        for &(t, p) in &self.lm_global {
            write_u32(&mut cw, t)?;
            write_f64(&mut cw, p)?;
        }

        let digest = cw.digest();
        write_u64(w, digest)
    }

    /// Deserialize from `r`, validating structure as it goes and the
    /// payload checksum at the end.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        let version = if &magic == SNAPSHOT_MAGIC {
            3
        } else if &magic == SNAPSHOT_MAGIC_V2 {
            2
        } else {
            return Err(corrupt("bad snapshot magic or unsupported version"));
        };
        let mut cr = ChecksumReader::new(&mut *r);
        let snapshot = read_payload(&mut cr, version)?;
        let digest = cr.digest();
        if read_u64(r)? != digest {
            return Err(corrupt("snapshot checksum mismatch"));
        }
        Ok(snapshot)
    }

    /// Save to a file (buffered).
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        self.write_to(&mut w)?;
        w.flush()
    }

    /// Load from a file (buffered), rejecting trailing bytes. Errors
    /// carry the file path (kind preserved).
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref();
        Self::load_file(path).map_err(|e| with_path_context(path, e))
    }

    /// The context-free file load `load`/`load_any` wrap; the chain
    /// loader calls it directly so a delta-chain error names the failing
    /// chain member exactly once.
    fn load_file(path: &Path) -> io::Result<Self> {
        let mut r = BufReader::new(std::fs::File::open(path)?);
        let snapshot = Self::read_from(&mut r)?;
        let mut probe = [0u8; 1];
        if r.read(&mut probe)? != 0 {
            return Err(corrupt("trailing bytes after snapshot"));
        }
        Ok(snapshot)
    }

    /// [`load`](Self::load) without path context, plus the stored payload
    /// digest (already verified against the payload) — what chain replay
    /// links parents by.
    pub(crate) fn load_with_digest(path: &Path) -> io::Result<(Self, u64)> {
        use std::io::Seek as _;
        let snapshot = Self::load_file(path)?;
        let mut f = std::fs::File::open(path)?;
        f.seek(io::SeekFrom::End(-8))?;
        let digest = read_u64(&mut f)?;
        Ok((snapshot, digest))
    }

    /// Load a serving snapshot from any format: a v2/v3 snapshot reads
    /// straight into arrays; a v1 [`StoredCatalog`] is rebuilt through the
    /// legacy path (EM-free, but category aggregation + posting
    /// construction); a **directory** is replayed as a delta chain
    /// (`base.snap` + `delta-NNNNNN.snap`, see [`crate::delta`]). This
    /// keeps every existing catalog file loadable. Errors carry the file
    /// path — and, for chains, the chain position — with the error kind
    /// preserved.
    pub fn load_any(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref();
        if path.is_dir() {
            return crate::delta::load_chain(path).map(|c| c.snapshot);
        }
        Self::load_any_file(path).map_err(|e| with_path_context(path, e))
    }

    fn load_any_file(path: &Path) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        {
            let mut f = std::fs::File::open(path)?;
            f.read_exact(&mut magic)?;
        }
        if &magic == SNAPSHOT_MAGIC || &magic == SNAPSHOT_MAGIC_V2 {
            Self::load_file(path)
        } else {
            let stored = StoredCatalog::load(path)?;
            Ok(ServingSnapshot::from_stored(&stored))
        }
    }

    /// [`load_any`](Self::load_any), additionally returning the file's
    /// content checksum — what `/readyz` reports so operators can tell at
    /// a glance whether two daemons serve the same snapshot bytes.
    ///
    /// For a v2 snapshot this is the stored trailing FNV-1a payload
    /// digest (already validated against the payload by the load). A v1
    /// catalog stores no digest, so the same FNV-1a is computed over the
    /// whole file instead — either way the value is a stable fingerprint
    /// of the bytes on disk. A chain directory reports its tip delta's
    /// digest, which by parent-linking fingerprints the whole chain.
    pub fn load_any_with_checksum(path: impl AsRef<Path>) -> io::Result<(Self, u64)> {
        use std::io::Seek as _;

        let path = path.as_ref();
        if path.is_dir() {
            return crate::delta::load_chain(path).map(|c| (c.snapshot, c.checksum));
        }
        let wrap = |e| with_path_context(path, e);
        let snapshot = Self::load_any_file(path).map_err(wrap)?;
        let mut f = std::fs::File::open(path).map_err(wrap)?;
        let mut magic = [0u8; 8];
        f.read_exact(&mut magic).map_err(wrap)?;
        let checksum = if &magic == SNAPSHOT_MAGIC || &magic == SNAPSHOT_MAGIC_V2 {
            f.seek(io::SeekFrom::End(-8)).map_err(wrap)?;
            read_u64(&mut f).map_err(wrap)?
        } else {
            let mut w = ChecksumWriter::new(io::sink());
            w.write_all(&magic)?;
            io::copy(&mut f, &mut w).map_err(wrap)?;
            w.digest()
        };
        Ok((snapshot, checksum))
    }
}

/// Prefix an I/O error with the file it came from, preserving the kind
/// (the daemon's 404-vs-400 mapping keys off it).
pub(crate) fn with_path_context(path: &Path, e: io::Error) -> io::Error {
    io::Error::new(e.kind(), format!("{}: {e}", path.display()))
}

pub(crate) fn write_frozen<W: Write>(w: &mut W, s: &FrozenSummary) -> io::Result<()> {
    write_f64(w, s.db_size())?;
    write_u32(w, s.sample_size())?;
    write_f64(w, s.word_count())?;
    write_f64(w, s.default_p_df())?;
    write_f64(w, s.default_p_tf())?;
    write_u32(w, s.len() as u32)?;
    for &t in s.terms() {
        write_u32(w, t)?;
    }
    for &p in s.p_df_column() {
        write_f64(w, p)?;
    }
    for &p in s.p_tf_column() {
        write_f64(w, p)?;
    }
    for &d in s.sample_df_column() {
        write_u32(w, d)?;
    }
    Ok(())
}

/// Chunked-column readers: the wide slabs dominate decode time, so read
/// them through a fixed stack buffer (one `read_exact` per ~1k elements
/// instead of one per element) and convert in place. The buffer is
/// bounded, so a corrupt length still can't trigger an oversized
/// allocation — the `Vec` only grows as bytes actually arrive.
const COLUMN_CHUNK: usize = 1024;

fn read_f64_column<R: Read>(r: &mut R, len: usize) -> io::Result<Vec<f64>> {
    let mut out = Vec::new();
    let mut buf = [0u8; COLUMN_CHUNK * 8];
    let mut remaining = len;
    while remaining > 0 {
        let take = remaining.min(COLUMN_CHUNK);
        let bytes = &mut buf[..take * 8];
        r.read_exact(bytes)?;
        for chunk in bytes.chunks_exact(8) {
            let v = f64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            if v.is_nan() {
                return Err(corrupt("NaN float field"));
            }
            out.push(v);
        }
        remaining -= take;
    }
    Ok(out)
}

fn read_u32_column<R: Read>(r: &mut R, len: usize) -> io::Result<Vec<u32>> {
    let mut out = Vec::new();
    let mut buf = [0u8; COLUMN_CHUNK * 4];
    let mut remaining = len;
    while remaining > 0 {
        let take = remaining.min(COLUMN_CHUNK);
        let bytes = &mut buf[..take * 4];
        r.read_exact(bytes)?;
        for chunk in bytes.chunks_exact(4) {
            out.push(u32::from_le_bytes(chunk.try_into().expect("4-byte chunk")));
        }
        remaining -= take;
    }
    Ok(out)
}

fn read_bool_column<R: Read>(r: &mut R, len: usize) -> io::Result<Vec<bool>> {
    let mut out = Vec::new();
    let mut buf = [0u8; COLUMN_CHUNK];
    let mut remaining = len;
    while remaining > 0 {
        let take = remaining.min(COLUMN_CHUNK);
        let bytes = &mut buf[..take];
        r.read_exact(bytes)?;
        for &b in bytes.iter() {
            match b {
                0 => out.push(false),
                1 => out.push(true),
                _ => return Err(corrupt("effective flag must be 0 or 1")),
            }
        }
        remaining -= take;
    }
    Ok(out)
}

pub(crate) fn read_frozen<R: Read>(r: &mut R) -> io::Result<FrozenSummary> {
    let db_size = read_f64(r)?;
    let sample_size = read_u32(r)?;
    let word_count = read_f64(r)?;
    let default_p_df = read_f64(r)?;
    let default_p_tf = read_f64(r)?;
    let len = read_len(r)?;
    let terms = read_u32_column(r, len)?;
    let p_df = read_f64_column(r, len)?;
    let p_tf = read_f64_column(r, len)?;
    let sample_df = read_u32_column(r, len)?;
    FrozenSummary::from_raw_parts(
        db_size,
        sample_size,
        word_count,
        default_p_df,
        default_p_tf,
        terms,
        p_df,
        p_tf,
        sample_df,
    )
    .map_err(corrupt)
}

fn read_payload<R: Read>(r: &mut R, version: u8) -> io::Result<ServingSnapshot> {
    let mut dict = TermDict::new();
    let dict_len = read_len(r)?;
    for i in 0..dict_len {
        let term = read_str(r)?;
        let id = dict.intern(&term);
        if id as usize != i {
            return Err(corrupt("duplicate term in snapshot dictionary"));
        }
    }

    let n = read_len(r)?;
    let mut names = Vec::new();
    let mut categories = Vec::new();
    let mut gammas = Vec::new();
    for _ in 0..n {
        names.push(read_str(r)?);
        categories.push(read_str(r)?);
        gammas.push(read_f64(r)?);
    }
    let mcw = read_f64(r)?;
    let mut unshrunk = Vec::new();
    for _ in 0..n {
        unshrunk.push(read_frozen(r)?);
    }
    let mut shrunk = Vec::new();
    for _ in 0..n {
        shrunk.push(read_frozen(r)?);
    }

    let term_count = read_len(r)?;
    let terms = read_u32_column(r, term_count)?;
    let offsets = read_u32_column(r, term_count + 1)?;
    let slab_len = read_len(r)?;
    let dbs = read_u32_column(r, slab_len)?;
    let p_df = read_f64_column(r, slab_len)?;
    let sample_df = read_u32_column(r, slab_len)?;
    let effective = read_bool_column(r, slab_len)?;
    let mut index =
        PostingIndex::from_raw_parts(n, terms, offsets, dbs, p_df, sample_df, effective)
            .map_err(corrupt)?;
    if version >= 3 {
        let p_tf = read_f64_column(r, slab_len)?;
        let max_df = read_f64_column(r, term_count)?;
        let max_p_df = read_f64_column(r, term_count)?;
        let max_p_tf = read_f64_column(r, term_count)?;
        // Soundness gate: the maxima are pruning upper bounds, so a stored
        // maximum below any posting it covers would let the pruned top-k
        // path silently drop a true top-k entry. Reject such files.
        for (pos, window) in index.offsets().windows(2).enumerate() {
            for at in window[0] as usize..window[1] as usize {
                let db = index.dbs()[at] as usize;
                let size = unshrunk[db].db_size();
                if max_p_df[pos] < index.p_df()[at]
                    || max_p_tf[pos] < p_tf[at]
                    || max_df[pos] < index.p_df()[at] * size
                {
                    return Err(corrupt("term maxima do not dominate postings"));
                }
            }
        }
        index
            .set_aux(p_tf, max_df, max_p_df, max_p_tf)
            .map_err(corrupt)?;
    }

    let lm_len = read_len(r)?;
    let mut lm_global: Vec<(TermId, f64)> = Vec::new();
    for _ in 0..lm_len {
        let t = read_u32(r)?;
        if let Some(&(prev, _)) = lm_global.last() {
            if t <= prev {
                return Err(corrupt("global model terms not strictly ascending"));
            }
        }
        let p = read_f64(r)?;
        if p < 0.0 {
            return Err(corrupt("negative global model probability"));
        }
        lm_global.push((t, p));
    }

    let catalog =
        Catalog::from_raw_parts(names, unshrunk, shrunk, gammas, mcw, index).map_err(corrupt)?;
    Ok(ServingSnapshot {
        dict,
        categories,
        lm_global,
        catalog,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CollectionStore, StoredDatabase};
    use dbselect_core::hierarchy::Hierarchy;
    use dbselect_core::summary::ContentSummary;
    use proptest::prelude::*;
    use textindex::Document;

    /// A small mixed store: a γ-fitted database, a γ-fallback one, and an
    /// empty-sample one (exercising every encoding edge the codec has).
    fn fixture_store() -> CollectionStore {
        let mut dict = TermDict::new();
        let terms: Vec<u32> = ["alpha", "beta", "gamma", "delta", "epsilon"]
            .iter()
            .map(|t| dict.intern(t))
            .collect();
        let mut hierarchy = Hierarchy::new("Root");
        let heart = hierarchy.ensure_path("Health/Heart");
        let soccer = hierarchy.ensure_path("Sports/Soccer");
        let docs1 = [
            Document::from_tokens(0, vec![terms[0], terms[1], terms[1]]),
            Document::from_tokens(1, vec![terms[0], terms[2]]),
        ];
        let docs2 = [Document::from_tokens(0, vec![terms[3], terms[1]])];
        let mut s1 = ContentSummary::from_sample(docs1.iter(), 800.0);
        s1.set_gamma(-1.9);
        let s2 = ContentSummary::from_sample(docs2.iter(), 120.0);
        let empty = ContentSummary::from_sample(std::iter::empty(), 0.0);
        CollectionStore {
            dict,
            hierarchy,
            databases: vec![
                StoredDatabase {
                    name: "heart-db".into(),
                    classification: heart,
                    summary: s1,
                    sample_docs: Vec::new(),
                },
                StoredDatabase {
                    name: "soccer-db".into(),
                    classification: soccer,
                    summary: s2,
                    sample_docs: Vec::new(),
                },
                StoredDatabase {
                    name: "empty-db".into(),
                    classification: heart,
                    summary: empty,
                    sample_docs: Vec::new(),
                },
            ],
        }
    }

    fn fixture_snapshot() -> ServingSnapshot {
        let frozen = StoredCatalog::freeze(fixture_store(), CategoryWeighting::BySize);
        ServingSnapshot::from_stored(&frozen)
    }

    fn assert_catalogs_bit_identical(a: &Catalog, b: &Catalog) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.names(), b.names());
        assert_eq!(a.mcw().to_bits(), b.mcw().to_bits());
        for db in 0..a.len() {
            assert_eq!(a.gamma(db).to_bits(), b.gamma(db).to_bits());
            assert_eq!(a.unshrunk(db), b.unshrunk(db));
            assert_eq!(a.shrunk(db), b.shrunk(db));
        }
        assert_eq!(a.posting_index(), b.posting_index());
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        let snapshot = fixture_snapshot();
        let mut bytes = Vec::new();
        snapshot.write_to(&mut bytes).unwrap();
        let restored = ServingSnapshot::read_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(restored.dict.len(), snapshot.dict.len());
        for id in 0..snapshot.dict.len() as u32 {
            assert_eq!(restored.dict.term(id), snapshot.dict.term(id));
        }
        assert_eq!(restored.categories, snapshot.categories);
        assert_eq!(restored.lm_global.len(), snapshot.lm_global.len());
        for (a, b) in restored.lm_global.iter().zip(&snapshot.lm_global) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
        assert_catalogs_bit_identical(&restored.catalog, &snapshot.catalog);
    }

    #[test]
    fn snapshot_catalog_matches_v1_rebuild() {
        // The frozen catalog inside the snapshot must be the same catalog
        // the v1 path builds — same arrays, same bits.
        let frozen = StoredCatalog::freeze(fixture_store(), CategoryWeighting::BySize);
        let snapshot = ServingSnapshot::from_stored(&frozen);
        assert_catalogs_bit_identical(&snapshot.catalog, &frozen.to_catalog());
    }

    #[test]
    fn save_load_and_format_sniffing() {
        let dir = std::env::temp_dir();
        let v2 = dir.join(format!("dbsel-snap-test-{}.v2", std::process::id()));
        let v1 = dir.join(format!("dbsel-snap-test-{}.v1", std::process::id()));
        let frozen = StoredCatalog::freeze(fixture_store(), CategoryWeighting::BySize);
        let snapshot = ServingSnapshot::from_stored(&frozen);
        snapshot.save(&v2).unwrap();
        frozen.save(&v1).unwrap();
        // load_any takes both formats to the same serving catalog.
        let from_v2 = ServingSnapshot::load_any(&v2).unwrap();
        let from_v1 = ServingSnapshot::load_any(&v1).unwrap();
        assert_catalogs_bit_identical(&from_v2.catalog, &from_v1.catalog);
        assert_eq!(from_v2.categories, from_v1.categories);
        // Trailing garbage is rejected on the v2 path.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new().append(true).open(&v2).unwrap();
            f.write_all(b"junk").unwrap();
        }
        assert!(ServingSnapshot::load(&v2).is_err());
        std::fs::remove_file(&v2).ok();
        std::fs::remove_file(&v1).ok();
    }

    #[test]
    fn checksum_is_stable_and_format_independent() {
        let dir = std::env::temp_dir();
        let v2 = dir.join(format!("dbsel-snap-cksum-{}.v2", std::process::id()));
        let v1 = dir.join(format!("dbsel-snap-cksum-{}.v1", std::process::id()));
        let frozen = StoredCatalog::freeze(fixture_store(), CategoryWeighting::BySize);
        let snapshot = ServingSnapshot::from_stored(&frozen);
        snapshot.save(&v2).unwrap();
        frozen.save(&v1).unwrap();

        let (_, a) = ServingSnapshot::load_any_with_checksum(&v2).unwrap();
        let (_, b) = ServingSnapshot::load_any_with_checksum(&v2).unwrap();
        assert_eq!(a, b, "same bytes, same checksum");
        assert_ne!(a, 0);

        // The v2 checksum is the stored trailing payload digest.
        let bytes = std::fs::read(&v2).unwrap();
        let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
        assert_eq!(a, stored);

        // v1 files expose a fingerprint too, and a different one (the
        // bytes differ).
        let (_, c) = ServingSnapshot::load_any_with_checksum(&v1).unwrap();
        assert_ne!(c, 0);
        assert_ne!(a, c);

        std::fs::remove_file(&v2).ok();
        std::fs::remove_file(&v1).ok();
    }

    #[test]
    fn v2_snapshots_backward_load_bit_identically() {
        // Older snapshots lack the kernel aux columns; loading one must
        // recompute them and land on the exact catalog a v3 file carries —
        // including the persisted-vs-recomputed aux slabs, which the
        // posting-index equality covers bit for bit.
        let snapshot = fixture_snapshot();
        let mut v3 = Vec::new();
        snapshot.write_to(&mut v3).unwrap();
        let mut v2 = Vec::new();
        snapshot.write_versioned(&mut v2, 2).unwrap();
        assert!(v2.len() < v3.len(), "v2 must omit the aux columns");
        assert_eq!(&v2[..8], SNAPSHOT_MAGIC_V2);
        let from_v3 = ServingSnapshot::read_from(&mut v3.as_slice()).unwrap();
        let from_v2 = ServingSnapshot::read_from(&mut v2.as_slice()).unwrap();
        assert!(from_v2.catalog.kernel_ready(), "v2 load recomputes aux");
        assert_catalogs_bit_identical(&from_v2.catalog, &from_v3.catalog);
        assert_eq!(from_v2.categories, from_v3.categories);
    }

    #[test]
    fn truncation_anywhere_is_an_error_not_a_panic() {
        let mut bytes = Vec::new();
        fixture_snapshot().write_to(&mut bytes).unwrap();
        for cut in (0..bytes.len()).step_by(13) {
            let mut slice = &bytes[..cut];
            assert!(
                ServingSnapshot::read_from(&mut slice).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn checksum_detects_payload_corruption_the_structure_misses() {
        let mut bytes = Vec::new();
        fixture_snapshot().write_to(&mut bytes).unwrap();
        // Flip one bit in a stored probability: structurally still a valid
        // snapshot, so only the checksum can catch it.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        assert!(ServingSnapshot::read_from(&mut bytes.as_slice()).is_err());
    }

    proptest! {
        /// Corruption fuzz: any single mutated byte anywhere in the file
        /// yields `io::Error` — never a panic, never a silently different
        /// catalog, never an oversized allocation (decode grows buffers
        /// only as bytes actually arrive).
        #[test]
        fn any_single_byte_mutation_is_rejected(
            position in 0usize..10_000,
            xor in 1u8..=255,
        ) {
            let mut bytes = Vec::new();
            fixture_snapshot().write_to(&mut bytes).unwrap();
            let position = position % bytes.len();
            bytes[position] ^= xor;
            prop_assert!(ServingSnapshot::read_from(&mut bytes.as_slice()).is_err());
        }

        /// Round-trip fuzz over randomized collections: encode→decode is
        /// bit-identical for arbitrary db sizes, γ presence, and sparse
        /// word sets (including empty summaries).
        #[test]
        fn randomized_snapshots_round_trip(
            specs in proptest::collection::vec(
                (
                    1.0f64..100_000.0,
                    proptest::option::of(-3.0f64..-1.0),
                    proptest::collection::vec((0u32..5, 1u32..50), 0..5),
                ),
                1..5,
            ),
        ) {
            let mut dict = TermDict::new();
            for t in ["alpha", "beta", "gamma", "delta", "epsilon"] {
                dict.intern(t);
            }
            let mut hierarchy = Hierarchy::new("Root");
            let cat = hierarchy.ensure_path("Topic/Sub");
            let databases = specs
                .iter()
                .enumerate()
                .map(|(i, (db_size, gamma, words))| {
                    let docs: Vec<Document> = words
                        .iter()
                        .enumerate()
                        .map(|(d, &(t, reps))| {
                            Document::from_tokens(d as u32, vec![t; reps as usize])
                        })
                        .collect();
                    let mut summary = ContentSummary::from_sample(docs.iter(), *db_size);
                    if let Some(g) = gamma {
                        summary.set_gamma(*g);
                    }
                    StoredDatabase {
                        name: format!("db{i}"),
                        classification: cat,
                        summary,
                        sample_docs: Vec::new(),
                    }
                })
                .collect();
            let store = CollectionStore { dict, hierarchy, databases };
            let frozen = StoredCatalog::freeze(store, CategoryWeighting::BySize);
            let snapshot = ServingSnapshot::from_stored(&frozen);
            let mut bytes = Vec::new();
            snapshot.write_to(&mut bytes).unwrap();
            let restored = ServingSnapshot::read_from(&mut bytes.as_slice()).unwrap();
            assert_catalogs_bit_identical(&restored.catalog, &snapshot.catalog);
            for (a, b) in restored.lm_global.iter().zip(&snapshot.lm_global) {
                prop_assert_eq!(a.0, b.0);
                prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
        }
    }
}
