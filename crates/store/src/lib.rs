//! `store` — binary persistence for content-summary collections.
//!
//! In the paper's workflow, content summaries are built **offline** (the λ
//! weights too: "the λi weights are computed off-line for each database when
//! the sampling-based database content summaries are created", Section 3.2)
//! and consulted at query time. A deployed metasearcher therefore needs to
//! persist what profiling learned. [`CollectionStore`] holds everything the
//! selection stage needs — the term dictionary, the topic hierarchy, and
//! one classified [`ContentSummary`] per database — in a small, versioned
//! binary format. Shrunk summaries are *not* stored: shrinkage is
//! deterministic given the store, so [`CollectionStore::shrink_all`]
//! reconstructs them on load in milliseconds.
//!
//! ```
//! use store::{CollectionStore, StoredDatabase};
//! use dbselect_core::prelude::*;
//! use textindex::{Document, TermDict};
//!
//! let mut dict = TermDict::new();
//! let blood = dict.intern("blood");
//! let mut hierarchy = Hierarchy::new("Root");
//! let heart = hierarchy.ensure_path("Health/Heart");
//! let docs = [Document::from_tokens(0, vec![blood])];
//! let summary = ContentSummary::from_sample(docs.iter(), 100.0);
//!
//! let store = CollectionStore {
//!     dict,
//!     hierarchy,
//!     databases: vec![StoredDatabase {
//!         name: "heart-db".into(),
//!         classification: heart,
//!         summary,
//!         sample_docs: Vec::new(),
//!     }],
//! };
//! let mut bytes = Vec::new();
//! store.write_to(&mut bytes).unwrap();
//! let restored = CollectionStore::read_from(&mut bytes.as_slice()).unwrap();
//! assert_eq!(restored.databases[0].name, "heart-db");
//! assert_eq!(restored.dict.term(blood), "blood");
//! ```

pub mod catalog;
pub mod codec;
pub mod delta;
pub mod manifest;
pub mod refresh;
pub mod snapshot;

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use dbselect_core::category_summary::{CategorySummaries, CategoryWeighting};
use dbselect_core::hierarchy::{CategoryId, Hierarchy};
use dbselect_core::shrinkage::{shrink, ShrinkageConfig, ShrunkSummary};
use dbselect_core::summary::{ContentSummary, WordStats};
use textindex::TermDict;

use codec::{corrupt, read_f64, read_len, read_str, read_u32, write_f64, write_str, write_u32};

/// Magic bytes + format version.
const MAGIC: &[u8; 8] = b"DBSLCT\x00\x02";

/// One profiled database as persisted.
#[derive(Debug, Clone)]
pub struct StoredDatabase {
    /// Database name.
    pub name: String,
    /// Its (directory or probe-derived) category.
    pub classification: CategoryId,
    /// The approximate content summary `Ŝ(D)`.
    pub summary: ContentSummary,
    /// The raw sample documents (token ids), kept for sample-based
    /// selection algorithms like ReDDE. May be empty (e.g. cooperative
    /// "full summary" profiling needs no sample).
    pub sample_docs: Vec<Vec<u32>>,
}

/// A persisted collection: everything the selection stage needs.
#[derive(Debug, Clone)]
pub struct CollectionStore {
    /// The shared term dictionary.
    pub dict: TermDict,
    /// The topic hierarchy databases are classified into.
    pub hierarchy: Hierarchy,
    /// The profiled databases.
    pub databases: Vec<StoredDatabase>,
}

impl CollectionStore {
    /// Serialize into `w`.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(MAGIC)?;

        // Term dictionary: terms in id order.
        let dict_len = u32::try_from(self.dict.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "dictionary too large"))?;
        write_u32(w, dict_len)?;
        for id in 0..dict_len {
            write_str(w, self.dict.term(id))?;
        }

        // Hierarchy: (name, parent+1) per node, id order. Parents always
        // precede children, so reconstruction is a single forward pass.
        write_u32(w, self.hierarchy.len() as u32)?;
        for node in self.hierarchy.ids() {
            write_str(w, self.hierarchy.name(node))?;
            let parent = self.hierarchy.parent(node).map_or(0, |p| p as u32 + 1);
            write_u32(w, parent)?;
        }

        // Databases.
        write_u32(w, self.databases.len() as u32)?;
        for db in &self.databases {
            write_str(w, &db.name)?;
            write_u32(w, db.classification as u32)?;
            write_summary(w, &db.summary)?;
            write_u32(w, db.sample_docs.len() as u32)?;
            for doc in &db.sample_docs {
                write_u32(w, doc.len() as u32)?;
                for &t in doc {
                    write_u32(w, t)?;
                }
            }
        }
        Ok(())
    }

    /// Deserialize from `r`, validating structure as it goes.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(corrupt("bad magic or unsupported version"));
        }

        let mut dict = TermDict::new();
        let dict_len = read_len(r)?;
        for i in 0..dict_len {
            let term = read_str(r)?;
            let id = dict.intern(&term);
            if id as usize != i {
                return Err(corrupt("duplicate term in dictionary"));
            }
        }

        let node_count = read_len(r)?;
        if node_count == 0 {
            return Err(corrupt("hierarchy must contain a root"));
        }
        let root_name = read_str(r)?;
        let root_parent = read_u32(r)?;
        if root_parent != 0 {
            return Err(corrupt("root node must have no parent"));
        }
        let mut hierarchy = Hierarchy::new(root_name);
        for i in 1..node_count {
            let name = read_str(r)?;
            let parent = read_u32(r)?;
            if parent == 0 || parent as usize > i {
                return Err(corrupt("hierarchy parent out of order"));
            }
            hierarchy.add_child(parent as usize - 1, name);
        }

        let db_count = read_len(r)?;
        let mut databases = Vec::with_capacity(db_count);
        for _ in 0..db_count {
            let name = read_str(r)?;
            let classification = read_u32(r)? as usize;
            if classification >= hierarchy.len() {
                return Err(corrupt("classification refers to unknown category"));
            }
            let summary = read_summary(r, dict.len() as u32)?;
            let n_docs = read_len(r)?;
            let mut sample_docs = Vec::with_capacity(n_docs);
            for _ in 0..n_docs {
                let len = read_len(r)?;
                let mut doc = Vec::with_capacity(len);
                for _ in 0..len {
                    let t = read_u32(r)?;
                    if t >= dict.len() as u32 {
                        return Err(corrupt("sample token outside dictionary"));
                    }
                    doc.push(t);
                }
                sample_docs.push(doc);
            }
            databases.push(StoredDatabase {
                name,
                classification,
                summary,
                sample_docs,
            });
        }
        Ok(CollectionStore {
            dict,
            hierarchy,
            databases,
        })
    }

    /// Save to a file (buffered).
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        self.write_to(&mut w)?;
        w.flush()
    }

    /// Load from a file (buffered).
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut r = BufReader::new(File::open(path)?);
        let store = Self::read_from(&mut r)?;
        // Trailing garbage means the file is not what it claims to be.
        let mut probe = [0u8; 1];
        if r.read(&mut probe)? != 0 {
            return Err(corrupt("trailing bytes after store"));
        }
        Ok(store)
    }

    /// Reconstruct the shrunk summaries (Definition 4) for every database —
    /// deterministic given the store contents.
    pub fn shrink_all(&self, weighting: CategoryWeighting) -> Vec<ShrunkSummary> {
        let refs: Vec<(CategoryId, &ContentSummary)> = self
            .databases
            .iter()
            .map(|db| (db.classification, &db.summary))
            .collect();
        let categories = CategorySummaries::build(&self.hierarchy, &refs, weighting);
        let config = ShrinkageConfig {
            uniform_p: 1.0 / self.dict.len().max(1) as f64,
            ..Default::default()
        };
        self.databases
            .iter()
            .map(|db| {
                let comps = categories.components_for(
                    &self.hierarchy,
                    db.classification,
                    &db.summary,
                    true,
                );
                shrink(&db.summary, &comps, &config)
            })
            .collect()
    }

    /// The Root category summary (LM's global model), rebuilt from the
    /// stored summaries.
    pub fn root_summary(&self, weighting: CategoryWeighting) -> ContentSummary {
        let refs: Vec<(CategoryId, &ContentSummary)> = self
            .databases
            .iter()
            .map(|db| (db.classification, &db.summary))
            .collect();
        CategorySummaries::build(&self.hierarchy, &refs, weighting)
            .category_summary(Hierarchy::ROOT)
    }
}

fn write_summary<W: Write>(w: &mut W, summary: &ContentSummary) -> io::Result<()> {
    write_f64(w, summary.db_size())?;
    write_u32(w, summary.sample_size())?;
    // Option<f64> gamma: NaN is never a legal value, so encode None as NaN
    // would be tempting — but the reader rejects NaN, so use a flag byte.
    match summary.gamma() {
        Some(g) => {
            write_u32(w, 1)?;
            write_f64(w, g)?;
        }
        None => write_u32(w, 0)?,
    }
    write_u32(w, summary.vocabulary_size() as u32)?;
    // Sorted for a canonical byte representation.
    let mut words: Vec<(u32, WordStats)> = summary.iter().map(|(t, s)| (t, *s)).collect();
    words.sort_unstable_by_key(|&(t, _)| t);
    for (term, stats) in words {
        write_u32(w, term)?;
        write_u32(w, stats.sample_df)?;
        write_f64(w, stats.df)?;
        write_f64(w, stats.tf)?;
    }
    Ok(())
}

fn read_summary<R: Read>(r: &mut R, dict_len: u32) -> io::Result<ContentSummary> {
    let db_size = read_f64(r)?;
    if db_size < 0.0 {
        return Err(corrupt("negative database size"));
    }
    let sample_size = read_u32(r)?;
    let gamma = match read_u32(r)? {
        0 => None,
        1 => Some(read_f64(r)?),
        _ => return Err(corrupt("invalid gamma flag")),
    };
    let vocab = read_len(r)?;
    let mut words = std::collections::HashMap::with_capacity(vocab);
    for _ in 0..vocab {
        let term = read_u32(r)?;
        if term >= dict_len {
            return Err(corrupt("summary term outside dictionary"));
        }
        let sample_df = read_u32(r)?;
        let df = read_f64(r)?;
        let tf = read_f64(r)?;
        if df < 0.0 || tf < 0.0 {
            return Err(corrupt("negative frequency"));
        }
        if words
            .insert(term, WordStats { sample_df, df, tf })
            .is_some()
        {
            return Err(corrupt("duplicate term in summary"));
        }
    }
    let mut summary = ContentSummary::new(db_size, sample_size, words);
    if let Some(g) = gamma {
        summary.set_gamma(g);
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use textindex::Document;

    fn sample_store() -> CollectionStore {
        let mut dict = TermDict::new();
        let a = dict.intern("alpha");
        let b = dict.intern("beta");
        let mut hierarchy = Hierarchy::new("Root");
        let heart = hierarchy.ensure_path("Health/Heart");
        let soccer = hierarchy.ensure_path("Sports/Soccer");
        let docs1 = [
            Document::from_tokens(0, vec![a, b]),
            Document::from_tokens(1, vec![a]),
        ];
        let docs2 = [Document::from_tokens(0, vec![b])];
        let mut s1 = ContentSummary::from_sample(docs1.iter(), 500.0);
        s1.set_gamma(-1.8);
        let s2 = ContentSummary::from_sample(docs2.iter(), 90.0);
        CollectionStore {
            dict,
            hierarchy,
            databases: vec![
                StoredDatabase {
                    name: "heart-db".into(),
                    classification: heart,
                    summary: s1,
                    sample_docs: vec![vec![a, b], vec![a]],
                },
                StoredDatabase {
                    name: "soccer-db".into(),
                    classification: soccer,
                    summary: s2,
                    sample_docs: Vec::new(),
                },
            ],
        }
    }

    fn round_trip(store: &CollectionStore) -> CollectionStore {
        let mut bytes = Vec::new();
        store.write_to(&mut bytes).unwrap();
        CollectionStore::read_from(&mut bytes.as_slice()).unwrap()
    }

    #[test]
    fn full_round_trip_preserves_everything() {
        let store = sample_store();
        let restored = round_trip(&store);
        assert_eq!(restored.dict.len(), store.dict.len());
        assert_eq!(restored.dict.term(0), "alpha");
        assert_eq!(restored.hierarchy.len(), store.hierarchy.len());
        assert_eq!(
            restored
                .hierarchy
                .full_name(restored.databases[0].classification),
            "Root/Health/Heart"
        );
        assert_eq!(restored.databases.len(), 2);
        let (orig, new) = (&store.databases[0].summary, &restored.databases[0].summary);
        assert_eq!(new.db_size(), orig.db_size());
        assert_eq!(new.sample_size(), orig.sample_size());
        assert_eq!(new.gamma(), orig.gamma());
        assert_eq!(new.vocabulary_size(), orig.vocabulary_size());
        for (term, stats) in orig.iter() {
            let restored_stats = new.word(term).expect("word survived");
            assert_eq!(restored_stats.sample_df, stats.sample_df);
            assert_eq!(restored_stats.df, stats.df);
            assert_eq!(restored_stats.tf, stats.tf);
        }
    }

    #[test]
    fn shrink_all_reproduces_identical_lambdas() {
        let store = sample_store();
        let restored = round_trip(&store);
        let a = store.shrink_all(CategoryWeighting::BySize);
        let b = restored.shrink_all(CategoryWeighting::BySize);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.lambdas(),
                y.lambdas(),
                "shrinkage is deterministic across save/load"
            );
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = Vec::new();
        sample_store().write_to(&mut bytes).unwrap();
        bytes[0] ^= 0xFF;
        assert!(CollectionStore::read_from(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn truncation_anywhere_is_an_error_not_a_panic() {
        let mut bytes = Vec::new();
        sample_store().write_to(&mut bytes).unwrap();
        // Probe a spread of truncation points (every 7 bytes keeps it fast).
        for cut in (8..bytes.len()).step_by(7) {
            let mut slice = &bytes[..cut];
            assert!(
                CollectionStore::read_from(&mut slice).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn classification_out_of_range_is_rejected() {
        let mut store = sample_store();
        store.databases[0].classification = 999;
        let mut bytes = Vec::new();
        store.write_to(&mut bytes).unwrap();
        assert!(CollectionStore::read_from(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn save_and_load_via_filesystem() {
        let path =
            std::env::temp_dir().join(format!("dbsel-store-test-{}.bin", std::process::id()));
        let store = sample_store();
        store.save(&path).unwrap();
        let restored = CollectionStore::load(&path).unwrap();
        assert_eq!(restored.databases[1].name, "soccer-db");
        // Trailing garbage is rejected.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(b"junk").unwrap();
        }
        assert!(CollectionStore::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn root_summary_aggregates_all_databases() {
        let store = sample_store();
        let root = store.root_summary(CategoryWeighting::BySize);
        assert_eq!(root.db_size(), 590.0);
        assert!(root.p_df(0) > 0.0);
        assert!(root.p_df(1) > 0.0);
    }
}
