//! Property-based tests: any store round-trips bit-faithfully, and no
//! byte-level corruption can cause a panic.

use proptest::prelude::*;
use std::collections::HashMap;

use dbselect_core::hierarchy::Hierarchy;
use dbselect_core::summary::{ContentSummary, WordStats};
use store::{CollectionStore, StoredDatabase};
use textindex::TermDict;

fn store_strategy() -> impl Strategy<Value = CollectionStore> {
    let dbs = prop::collection::vec(
        (
            "[a-z]{1,12}",
            prop::collection::hash_map(
                0u32..20,
                (0u32..500, 0.0..5000.0f64, 0.0..9000.0f64),
                0..15,
            ),
            1.0..10_000.0f64,
            0u32..400,
            prop::option::of(-3.0..-0.1f64),
            0usize..4, // which path to classify under
        ),
        0..6,
    );
    dbs.prop_map(|dbs| {
        let mut dict = TermDict::new();
        for i in 0..20 {
            dict.intern(&format!("w{i}"));
        }
        let mut hierarchy = Hierarchy::new("Root");
        let paths = ["A/B", "A/C", "D", "D/E/F"];
        let cats: Vec<_> = paths.iter().map(|p| hierarchy.ensure_path(p)).collect();
        let databases = dbs
            .into_iter()
            .enumerate()
            .map(|(i, (name, words, db_size, sample_size, gamma, path))| {
                let words: HashMap<u32, WordStats> = words
                    .into_iter()
                    .map(|(t, (sample_df, df, tf))| (t, WordStats { sample_df, df, tf }))
                    .collect();
                let mut summary = ContentSummary::new(db_size, sample_size, words);
                if let Some(g) = gamma {
                    summary.set_gamma(g);
                }
                // Reuse the word ids as a small synthetic sample.
                let sample_docs: Vec<Vec<u32>> = (0..i % 3)
                    .map(|j| vec![j as u32, (j + 1) as u32 % 20])
                    .collect();
                StoredDatabase {
                    name: format!("{name}-{i}"),
                    classification: cats[path],
                    summary,
                    sample_docs,
                }
            })
            .collect();
        CollectionStore {
            dict,
            hierarchy,
            databases,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Write → read reproduces every field exactly.
    #[test]
    fn round_trip_is_exact(store in store_strategy()) {
        let mut bytes = Vec::new();
        store.write_to(&mut bytes).unwrap();
        let restored = CollectionStore::read_from(&mut bytes.as_slice()).unwrap();
        prop_assert_eq!(restored.dict.len(), store.dict.len());
        prop_assert_eq!(restored.hierarchy.len(), store.hierarchy.len());
        prop_assert_eq!(restored.databases.len(), store.databases.len());
        for (a, b) in store.databases.iter().zip(&restored.databases) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(a.classification, b.classification);
            prop_assert_eq!(a.summary.db_size(), b.summary.db_size());
            prop_assert_eq!(a.summary.sample_size(), b.summary.sample_size());
            prop_assert_eq!(a.summary.gamma(), b.summary.gamma());
            prop_assert_eq!(a.summary.vocabulary_size(), b.summary.vocabulary_size());
            for (term, stats) in a.summary.iter() {
                let restored_stats = b.summary.word(term).expect("term survives");
                prop_assert_eq!(restored_stats.sample_df, stats.sample_df);
                prop_assert_eq!(restored_stats.df, stats.df);
                prop_assert_eq!(restored_stats.tf, stats.tf);
            }
        }
        // A second serialization is byte-identical (canonical encoding).
        let mut again = Vec::new();
        restored.write_to(&mut again).unwrap();
        prop_assert_eq!(bytes, again);
    }

    /// Single-byte corruption anywhere either round-trips to a valid store
    /// or fails with an error — never a panic, never a hang.
    #[test]
    fn corruption_never_panics(store in store_strategy(), pos_frac in 0.0..1.0f64, xor in 1u8..255) {
        let mut bytes = Vec::new();
        store.write_to(&mut bytes).unwrap();
        prop_assume!(!bytes.is_empty());
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= xor;
        let _ = CollectionStore::read_from(&mut bytes.as_slice());
    }

    /// Arbitrary bytes never panic the reader.
    #[test]
    fn garbage_input_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = CollectionStore::read_from(&mut bytes.as_slice());
    }
}
