//! Delta-chain integration tests: refresh rounds persisted as chained
//! deltas must replay bit-identically to a full freeze of the same
//! post-refresh state, and every corruption of a chain must be rejected
//! atomically with the failing file and chain position in the error.

use std::path::{Path, PathBuf};

use broker::Catalog;
use dbselect_core::category_summary::CategoryWeighting;
use dbselect_core::hierarchy::Hierarchy;
use dbselect_core::summary::ContentSummary;
use proptest::prelude::*;
use store::catalog::StoredCatalog;
use store::delta::{self, ChainWriter, DbPatch};
use store::refresh::RefreshSession;
use store::snapshot::ServingSnapshot;
use store::{CollectionStore, StoredDatabase};
use textindex::{Document, TermDict};

/// Six databases over four categories — the same shape the server's
/// fixture uses, small enough to freeze in microseconds.
fn fixture_store() -> CollectionStore {
    let mut dict = TermDict::new();
    let words = [
        "aorta", "stent", "valve", "striker", "corner", "keeper", "ticker", "yield", "virus",
        "spore", "plasma", "serum", "goal", "pitch", "bond", "cell",
    ];
    let ids: Vec<u32> = words.iter().map(|w| dict.intern(w)).collect();
    let mut hierarchy = Hierarchy::new("Root");
    let heart = hierarchy.ensure_path("Health/Heart");
    let path_ = hierarchy.ensure_path("Health/Pathology");
    let soccer = hierarchy.ensure_path("Sports/Soccer");
    let finance = hierarchy.ensure_path("Finance");
    let db = |name: &str, cat, size: f64, gamma: Option<f64>, docs: &[&[usize]]| {
        let docs: Vec<Document> = docs
            .iter()
            .enumerate()
            .map(|(i, toks)| Document::from_tokens(i as u32, toks.iter().map(|&t| ids[t]).collect()))
            .collect();
        let mut summary = ContentSummary::from_sample(docs.iter(), size);
        if let Some(g) = gamma {
            summary.set_gamma(g);
        }
        StoredDatabase {
            name: name.into(),
            classification: cat,
            summary,
            sample_docs: Vec::new(),
        }
    };
    CollectionStore {
        dict,
        hierarchy,
        databases: vec![
            db("cardio", heart, 900.0, Some(-1.8), &[&[0, 1, 2], &[0, 0, 11]]),
            db("surgery", heart, 400.0, None, &[&[1, 2, 15], &[2, 11]]),
            db("goal-net", soccer, 1500.0, Some(-2.1), &[&[3, 4, 5], &[12, 13, 3]]),
            db("terrace", soccer, 300.0, None, &[&[4, 13]]),
            db("tickerwire", finance, 2500.0, Some(-1.6), &[&[6, 7, 14], &[6, 14]]),
            db("pathogen", path_, 700.0, None, &[&[8, 9, 10], &[8, 15]]),
        ],
    }
}

/// A synthetic re-probe summary for `db`: drifts term content, may
/// intern brand-new vocabulary, may change the size estimate and γ.
fn probe(session: &mut RefreshSession, db: usize, round: u64) -> ContentSummary {
    let fresh = session
        .dict_mut()
        .intern(&format!("drift-{db}-r{round}"));
    let old_terms: Vec<u32> = session.summary(db).iter().map(|(t, _)| t).collect();
    let mut docs = vec![Document::from_tokens(0, vec![fresh, fresh])];
    for (i, &t) in old_terms.iter().enumerate().skip(round as usize % 2) {
        docs.push(Document::from_tokens(1 + i as u32, vec![t, fresh]));
    }
    let mut summary = ContentSummary::from_sample(docs.iter(), 1000.0 + 37.0 * round as f64);
    if db % 2 == 0 {
        summary.set_gamma(-1.5 - 0.1 * round as f64);
    }
    summary
}

fn temp_chain(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dbsel-chain-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn assert_catalogs_bit_identical(a: &Catalog, b: &Catalog) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.names(), b.names());
    assert_eq!(a.mcw().to_bits(), b.mcw().to_bits());
    assert_eq!(a.min_word_count().to_bits(), b.min_word_count().to_bits());
    for db in 0..a.len() {
        assert_eq!(a.gamma(db).to_bits(), b.gamma(db).to_bits());
        assert_eq!(a.unshrunk(db), b.unshrunk(db));
        assert_eq!(a.shrunk(db), b.shrunk(db));
    }
    assert_eq!(a.posting_index(), b.posting_index());
}

/// Build a 3-round chain in `dir`, touching `budget` databases per round
/// round-robin, and return the session (whose state is the post-refresh
/// reference).
fn build_chain(dir: &Path, budget: usize) -> RefreshSession {
    let stored = StoredCatalog::freeze(fixture_store(), CategoryWeighting::BySize);
    let mut session = RefreshSession::new(stored);
    let mut writer = ChainWriter::create(dir, &session.freeze_full()).unwrap();
    let n = session.len();
    for round in 1u64..=3 {
        let picks: Vec<usize> = (0..budget)
            .map(|i| ((round as usize - 1) * budget + i) % n)
            .collect();
        let mut patches: Vec<DbPatch> = Vec::new();
        for &db in &picks {
            let summary = probe(&mut session, db, round);
            patches.push(session.apply_probe(db, summary));
        }
        patches.sort_by_key(|p| p.db);
        writer.append_round(session.dict(), patches).unwrap();
    }
    assert_eq!(writer.generation(), 3);
    session
}

#[test]
fn chain_replay_is_bit_identical_to_full_freeze() {
    let dir = temp_chain("replay");
    let session = build_chain(&dir, 2);
    let replayed = delta::load_chain(&dir).unwrap();
    assert_eq!(replayed.generation, 3);

    let reference = session.freeze_full();
    assert_catalogs_bit_identical(&replayed.snapshot.catalog, &reference.catalog);
    assert_eq!(replayed.snapshot.categories, reference.categories);
    assert_eq!(replayed.snapshot.dict.len(), reference.dict.len());
    for id in 0..reference.dict.len() as u32 {
        assert_eq!(replayed.snapshot.dict.term(id), reference.dict.term(id));
    }
    for (a, b) in replayed.snapshot.lm_global.iter().zip(&reference.lm_global) {
        assert_eq!(a.0, b.0);
        assert_eq!(a.1.to_bits(), b.1.to_bits());
    }
    // The v3 dominance invariant holds on the chained load: per-term
    // maxima still dominate every posting after in-place row updates.
    let index = replayed.snapshot.catalog.posting_index();
    assert!(replayed.snapshot.catalog.kernel_ready());
    for &term in index.terms() {
        let p = replayed.snapshot.catalog.postings(term).unwrap();
        for (j, &db) in p.dbs.iter().enumerate() {
            let s = replayed.snapshot.catalog.unshrunk(db as usize);
            assert!(p.bound.max_p_df >= p.p_df[j]);
            assert!(p.bound.max_p_tf >= p.p_tf[j]);
            assert!(p.bound.max_df >= p.p_df[j] * s.db_size());
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn deltas_write_only_touched_databases() {
    let dir = temp_chain("size");
    build_chain(&dir, 1);
    let base = std::fs::metadata(dir.join(delta::BASE_FILE)).unwrap().len();
    for generation in 1..=3u64 {
        let delta = std::fs::metadata(dir.join(delta::delta_file_name(generation)))
            .unwrap()
            .len();
        // One touched database out of six: the round's bytes are a small
        // fraction of the full snapshot, not another copy of it.
        assert!(
            delta * 2 < base,
            "delta {generation} is {delta} bytes vs base {base}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn load_any_replays_chain_directories() {
    let dir = temp_chain("loadany");
    let session = build_chain(&dir, 2);
    let via_any = ServingSnapshot::load_any(&dir).unwrap();
    assert_catalogs_bit_identical(&via_any.catalog, &session.freeze_full().catalog);
    let (_, checksum) = ServingSnapshot::load_any_with_checksum(&dir).unwrap();
    let replayed = delta::load_chain(&dir).unwrap();
    assert_eq!(checksum, replayed.checksum);
    assert_eq!(delta::chain_tip_generation(&dir).unwrap(), 3);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replaced_base_is_rejected_with_chain_position() {
    let dir = temp_chain("rebase");
    build_chain(&dir, 2);
    // Replace the base with a *valid* snapshot of a different store —
    // every byte of the new base checks out on its own; only the chain
    // linkage can catch the swap.
    let mut other = fixture_store();
    other.databases.pop();
    let other = StoredCatalog::freeze(other, CategoryWeighting::BySize);
    ServingSnapshot::from_stored(&other)
        .save(dir.join(delta::BASE_FILE))
        .unwrap();
    let err = delta::load_chain(&dir).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let msg = err.to_string();
    assert!(msg.contains("chain delta 1"), "missing position: {msg}");
    assert!(msg.contains("parent checksum"), "missing cause: {msg}");
    assert!(msg.contains("delta-000001.snap"), "missing path: {msg}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chain_errors_carry_path_and_generation_context() {
    let dir = temp_chain("context");
    build_chain(&dir, 2);

    // A corrupt mid-chain delta names itself, not the base.
    let victim = dir.join(delta::delta_file_name(2));
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&victim, &bytes).unwrap();
    let err = delta::load_chain(&dir).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("chain delta 2"), "{msg}");
    assert!(msg.contains("delta-000002.snap"), "{msg}");

    // A gap in the numbering is its own, position-naming error.
    std::fs::rename(&victim, dir.join(delta::delta_file_name(9))).unwrap();
    let err = delta::load_chain(&dir).unwrap_err();
    assert!(err.to_string().contains("gap in delta chain"), "{err}");

    // A missing base is NotFound and names the directory member.
    let nochain = temp_chain("nochain");
    std::fs::create_dir_all(&nochain).unwrap();
    let err = delta::load_chain(&nochain).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    assert!(err.to_string().contains("base.snap"), "{err}");

    // Plain-file loads carry the path too (the load_any satellite fix).
    let missing = nochain.join("nope.snap");
    let err = ServingSnapshot::load_any(&missing).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    assert!(err.to_string().contains("nope.snap"), "{err}");

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&nochain).ok();
}

proptest! {
    /// The single-byte-mutation fuzz, extended to chains: flipping any
    /// byte of any chain member (base or any delta) makes the chain load
    /// fail — never a panic, never a silently different catalog.
    #[test]
    fn any_single_byte_mutation_in_any_chain_member_is_rejected(
        member in 0usize..4,
        position in 0usize..100_000,
        xor in 1u8..=255,
    ) {
        let dir = temp_chain("fuzz");
        build_chain(&dir, 2);
        let victim = if member == 0 {
            dir.join(delta::BASE_FILE)
        } else {
            dir.join(delta::delta_file_name(member as u64))
        };
        let mut bytes = std::fs::read(&victim).unwrap();
        let position = position % bytes.len();
        bytes[position] ^= xor;
        std::fs::write(&victim, &bytes).unwrap();
        prop_assert!(delta::load_chain(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn untouched_databases_never_change_under_refresh() {
    // The pinned-epoch guarantee that makes deltas sound: applying a
    // probe to one database leaves every other database's frozen columns
    // bit-identical.
    let stored = StoredCatalog::freeze(fixture_store(), CategoryWeighting::BySize);
    let mut session = RefreshSession::new(stored);
    let before = session.freeze_full();
    let summary = probe(&mut session, 2, 1);
    session.apply_probe(2, summary);
    let after = session.freeze_full();
    for db in 0..before.catalog.len() {
        if db == 2 {
            assert_ne!(before.catalog.unshrunk(db), after.catalog.unshrunk(db));
            continue;
        }
        assert_eq!(before.catalog.unshrunk(db), after.catalog.unshrunk(db));
        assert_eq!(before.catalog.shrunk(db), after.catalog.shrunk(db));
        assert_eq!(
            before.catalog.gamma(db).to_bits(),
            after.catalog.gamma(db).to_bits()
        );
    }
}

#[test]
fn session_freeze_at_generation_zero_matches_from_stored() {
    // `dbselect freeze` output can seed a chain: the session's reference
    // freeze with no probes applied is the stock snapshot, bit for bit.
    let stored = StoredCatalog::freeze(fixture_store(), CategoryWeighting::BySize);
    let from_stored = ServingSnapshot::from_stored(&stored);
    let session = RefreshSession::new(stored);
    assert_catalogs_bit_identical(&session.freeze_full().catalog, &from_stored.catalog);
}
