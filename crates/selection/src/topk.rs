//! Top-k pruned, batch-friendly scoring kernels.
//!
//! The per-entry scoring path ([`SelectionAlgorithm::score_db`]) walks one
//! database at a time: it allocates a per-database `Vec<f64>` of word
//! probabilities, binary-searches the summary per query word, and calls
//! through a virtual `score_with_p` per database. For a serving engine that
//! only needs the *top k* databases, that is both too much memory traffic
//! and too much work: most databases provably cannot enter the top k.
//!
//! This module provides the two pieces the broker's `route_topk` path
//! composes:
//!
//! * [`ScoreKernel`] — a batch scoring interface: flat row-major probability
//!   slices in, flat score slices out, no per-database allocation and no
//!   virtual dispatch inside the loop. Each kernel's `score_rows` is
//!   **bit-identical** (`f64::to_bits`) to calling `score_with_p` row by
//!   row: the float operations are replicated op for op, in the same order,
//!   with per-query constants hoisted only where hoisting provably preserves
//!   bits (a precomputed subexpression of deterministic inputs evaluates to
//!   the same `f64` as the inline form).
//! * [`TopK`] — a bounded heap over [`RankedDatabase`] under the global
//!   [`ranking_order`], whose final sorted content equals truncating the
//!   full ranking, independent of insertion order (scores are exact and
//!   `(score, index)` pairs are distinct per database).
//!
//! Pruning soundness rests on per-term *upper bounds* ([`TermBound`],
//! persisted per posting-list term by the broker catalog). `upper_bound`
//! returns a value `≥` any score the kernel can emit for a row consistent
//! with the given presence mask. Where the bound relies on real-arithmetic
//! monotonicity (CORI's `df/(df+denom)` saturation), the float result is
//! inflated by a relative `1e-9` plus an absolute `1e-300` — many orders of
//! magnitude above the accumulated rounding error of a query-length chain
//! of operations — so a bound can only be *loose*, never unsound. A loose
//! bound costs a wasted scoring of one row; it never changes the ranking.

use textindex::TermId;

use crate::bgloss::BGloss;
use crate::context::{ranking_order, CollectionContext, RankedDatabase};
use crate::cori::Cori;
use crate::lm::Lm;

/// Which probability column a kernel consumes (mirrors
/// [`SelectionAlgorithm::word_probability`]): document-frequency fractions
/// for CORI and bGlOSS, token-frequency probabilities for LM.
///
/// [`SelectionAlgorithm::word_probability`]: crate::context::SelectionAlgorithm::word_probability
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbabilitySpace {
    /// `p̂(w|D)` — fraction of documents containing `w`.
    DocumentFrequency,
    /// `p_tf(w|D)` — fraction of tokens equal to `w`.
    TokenFrequency,
}

/// Per-term maxima over a catalog's unshrunk postings, the raw material of
/// score upper bounds. Raw maxima (rather than per-algorithm bounds) are
/// persisted so custom algorithm constants never invalidate a snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TermBound {
    /// `max_D fl(p̂(w|D) · |D|)` — the exact float products the CORI kernel
    /// computes, so `df ≤ max_df` holds bit-exactly per posting.
    pub max_df: f64,
    /// `max_D p̂(w|D)`.
    pub max_p_df: f64,
    /// `max_D p_tf(w|D)`.
    pub max_p_tf: f64,
}

impl TermBound {
    /// The bound of a term no database mentions.
    pub fn absent() -> TermBound {
        TermBound::default()
    }
}

/// Query-constant state a kernel computes once per `(query, context)` and
/// reuses across every row: the default score and drop threshold the ranker
/// applies, per-position constants, and per-position upper-bound factors.
#[derive(Debug, Clone)]
pub struct PreparedKernel {
    query_len: usize,
    /// The algorithm's database-independent default score for this query
    /// (all three kernel algorithms have one — CORI and bGlOSS score 0 with
    /// no evidence, LM scores the global-model-only product).
    pub default_score: f64,
    /// The ranker's drop threshold: rows must score strictly above it to
    /// enter a ranking, exactly as in `rank_databases_with_context`.
    pub drop_threshold: f64,
    /// Per-position constants: CORI's `I_k`, LM's `(1−λ)·p̂(w_k|G)`;
    /// unused (empty) for bGlOSS.
    term_const: Vec<f64>,
    /// Per-position upper-bound factors: CORI's bounded per-word belief,
    /// LM's present-word factor bound, bGlOSS's `max_p_df`.
    term_ub: Vec<f64>,
    /// CORI's `mcw` (needed per row for the `cw/mcw` denominator).
    mcw: f64,
    /// Whether `upper_bound` may prune at all. False when algorithm
    /// constants leave the bound derivation unsound (negative λ, negative
    /// belief constants); pruning then degrades to batch scoring only.
    prunable: bool,
}

impl PreparedKernel {
    /// Number of query positions each row must carry.
    pub fn query_len(&self) -> usize {
        self.query_len
    }
}

/// Relative-plus-absolute slack making a real-arithmetic upper bound sound
/// under float rounding: a chain of `O(query_len)` monotone operations
/// accumulates relative error ≪ 1e-9, and 1e-300 absorbs subnormal edges.
#[inline]
fn inflate(ub: f64) -> f64 {
    ub * (1.0 + 1e-9) + 1e-300
}

/// Presence of query position `k` in a row's 64-bit mask. Positions beyond
/// 64 are conservatively treated as present — sound, because every kernel's
/// present-position bound factor dominates its absent-position factor.
#[inline]
fn present(mask: u64, k: usize) -> bool {
    k >= 64 || mask & (1u64 << k) != 0
}

/// A batch scoring kernel for one [`SelectionAlgorithm`].
///
/// Contract: for every row `r`, `out[r]` must equal — bit for bit — what
/// `score_with_p(query, row_r, summary_r, ctx)` returns for a summary with
/// the row's `db_size`/`word_count`, and `upper_bound(prep, mask, db_size)`
/// must be `≥ out[r]` for every row consistent with `mask` (bit `k` clear ⇒
/// `p[k] == 0.0`; bits at positions `≥ 64` carry no information).
///
/// [`SelectionAlgorithm`]: crate::context::SelectionAlgorithm
pub trait ScoreKernel {
    /// The probability column rows are gathered from.
    fn space(&self) -> ProbabilitySpace;

    /// Hoist the query-constant state. `bounds[k]` are the per-term maxima
    /// of query position `k`; `min_word_count` is the smallest unshrunk
    /// `cw(D)` any scored row can carry.
    fn prepare(
        &self,
        query: &[TermId],
        ctx: &CollectionContext,
        bounds: &[TermBound],
        min_word_count: f64,
    ) -> PreparedKernel;

    /// Score `db_size.len()` rows. `p` is row-major,
    /// `db_size.len() * prep.query_len()` long; `out` receives one score
    /// per row.
    fn score_rows(
        &self,
        prep: &PreparedKernel,
        p: &[f64],
        db_size: &[f64],
        word_count: &[f64],
        out: &mut [f64],
    );

    /// An upper bound on the score of any row consistent with `mask`.
    fn upper_bound(&self, prep: &PreparedKernel, mask: u64, db_size: f64) -> f64;
}

impl ScoreKernel for Cori {
    fn space(&self) -> ProbabilitySpace {
        ProbabilitySpace::DocumentFrequency
    }

    fn prepare(
        &self,
        query: &[TermId],
        ctx: &CollectionContext,
        bounds: &[TermBound],
        min_word_count: f64,
    ) -> PreparedKernel {
        let m = ctx.m as f64;
        // I_k is a pure function of (m, cf[k]); hoisting it evaluates the
        // identical expression on identical inputs — same bits as inline.
        let term_const: Vec<f64> = (0..query.len())
            .map(|k| {
                let cf = ctx.cf.get(k).copied().unwrap_or(0);
                if cf > 0 {
                    ((m + 0.5) / f64::from(cf)).ln() / (m + 1.0).ln()
                } else {
                    0.0
                }
            })
            .collect();
        // With all-zero probabilities every term is skipped by the
        // `round(df) < 1` rule, so the default score is exactly +0.0.
        let default_score = 0.0f64;
        let drop_threshold = default_score + default_score.abs() * 1e-9 + 1e-300;
        // T = df/(df+denom) grows with df and shrinks with denom, so the
        // per-word belief is bounded by substituting the term's max df and
        // the smallest denominator any row can have.
        let cw_ratio_min = if ctx.mcw > 0.0 {
            min_word_count / ctx.mcw
        } else {
            1.0
        };
        let denom_min = self.df_base + self.df_scale * cw_ratio_min;
        let prunable = denom_min > 0.0
            && self.default_belief >= 0.0
            && (1.0 - self.default_belief) >= 0.0
            && min_word_count >= 0.0;
        let term_ub: Vec<f64> = if prunable {
            (0..query.len())
                .map(|k| {
                    let max_df = bounds[k].max_df.max(0.0);
                    let t_ub = max_df / (max_df + denom_min);
                    (self.default_belief + (1.0 - self.default_belief) * t_ub * term_const[k])
                        .max(0.0)
                })
                .collect()
        } else {
            vec![f64::INFINITY; query.len()]
        };
        PreparedKernel {
            query_len: query.len(),
            default_score,
            drop_threshold,
            term_const,
            term_ub,
            mcw: ctx.mcw,
            prunable,
        }
    }

    fn score_rows(
        &self,
        prep: &PreparedKernel,
        p: &[f64],
        db_size: &[f64],
        word_count: &[f64],
        out: &mut [f64],
    ) {
        let qlen = prep.query_len;
        for (r, o) in out.iter_mut().enumerate().take(db_size.len()) {
            if qlen == 0 {
                *o = 0.0;
                continue;
            }
            let ds = db_size[r];
            let cw_ratio = if prep.mcw > 0.0 {
                word_count[r] / prep.mcw
            } else {
                1.0
            };
            let denom_extra = self.df_base + self.df_scale * cw_ratio;
            let row = &p[r * qlen..r * qlen + qlen];
            let mut score = 0.0;
            for k in 0..qlen {
                let df = row[k] * ds;
                // A select, not a branch: the skipped arm contributes +0.0,
                // which cannot perturb a non-negative accumulator.
                score += if df.round() < 1.0 {
                    0.0
                } else {
                    let t = df / (df + denom_extra);
                    self.default_belief + (1.0 - self.default_belief) * t * prep.term_const[k]
                };
            }
            *o = score / qlen as f64;
        }
    }

    fn upper_bound(&self, prep: &PreparedKernel, mask: u64, _db_size: f64) -> f64 {
        if !prep.prunable {
            return f64::INFINITY;
        }
        let mut sum = 0.0;
        for (k, &ub) in prep.term_ub.iter().enumerate() {
            if present(mask, k) {
                sum += ub;
            }
        }
        inflate(sum / prep.query_len as f64)
    }
}

impl ScoreKernel for BGloss {
    fn space(&self) -> ProbabilitySpace {
        ProbabilitySpace::DocumentFrequency
    }

    fn prepare(
        &self,
        query: &[TermId],
        _ctx: &CollectionContext,
        bounds: &[TermBound],
        _min_word_count: f64,
    ) -> PreparedKernel {
        // bGlOSS overrides default_score to a literal 0.0.
        let default_score = 0.0f64;
        let drop_threshold = default_score + default_score.abs() * 1e-9 + 1e-300;
        let term_ub: Vec<f64> = bounds.iter().map(|b| b.max_p_df).collect();
        // Float multiplication is monotone, so per-factor maxima bound the
        // product exactly — provided every factor is non-negative.
        let prunable = term_ub.iter().all(|&x| x >= 0.0);
        PreparedKernel {
            query_len: query.len(),
            default_score,
            drop_threshold,
            term_const: Vec::new(),
            term_ub,
            mcw: 0.0,
            prunable,
        }
    }

    fn score_rows(
        &self,
        prep: &PreparedKernel,
        p: &[f64],
        db_size: &[f64],
        _word_count: &[f64],
        out: &mut [f64],
    ) {
        let qlen = prep.query_len;
        for (r, o) in out.iter_mut().enumerate().take(db_size.len()) {
            if qlen == 0 {
                *o = 0.0;
                continue;
            }
            let row = &p[r * qlen..r * qlen + qlen];
            // `p.iter().product::<f64>()` is a left fold from 1.0.
            let mut acc = 1.0;
            for &pw in row {
                acc *= pw;
            }
            *o = db_size[r] * acc;
        }
    }

    fn upper_bound(&self, prep: &PreparedKernel, mask: u64, db_size: f64) -> f64 {
        if !prep.prunable {
            return f64::INFINITY;
        }
        // Any provably-absent word zeroes the product: the row scores an
        // exact 0.0 and the ranker drops it, so the bound is 0.
        let low = prep.query_len.min(64);
        let full_low = if low == 64 {
            u64::MAX
        } else {
            (1u64 << low) - 1
        };
        if mask & full_low != full_low {
            return 0.0;
        }
        let mut acc = 1.0;
        for &ub in &prep.term_ub {
            acc *= ub;
        }
        inflate(db_size * acc)
    }
}

impl ScoreKernel for Lm {
    fn space(&self) -> ProbabilitySpace {
        ProbabilitySpace::TokenFrequency
    }

    fn prepare(
        &self,
        query: &[TermId],
        _ctx: &CollectionContext,
        bounds: &[TermBound],
        _min_word_count: f64,
    ) -> PreparedKernel {
        // (1−λ)·p̂(w|G) is query-constant; hoisted, it is the identical
        // expression on identical inputs — same bits as inline.
        let term_const: Vec<f64> = query
            .iter()
            .map(|&w| (1.0 - self.lambda) * self.global_p(w))
            .collect();
        // The default score replicates score_with_p over all-zero
        // probabilities, factor by factor, fold from 1.0.
        let mut default_score = 1.0;
        for &g in &term_const {
            default_score *= self.lambda * 0.0 + g;
        }
        let drop_threshold = default_score + default_score.abs() * 1e-9 + 1e-300;
        let term_ub: Vec<f64> = bounds
            .iter()
            .zip(&term_const)
            .map(|(b, &g)| self.lambda * b.max_p_tf + g)
            .collect();
        // Monotone float products need every factor non-negative; a
        // negative λ or global probability disables pruning.
        let prunable = self.lambda >= 0.0
            && term_const.iter().all(|&g| g >= 0.0)
            && term_ub.iter().all(|&u| u.is_finite() && u >= 0.0);
        PreparedKernel {
            query_len: query.len(),
            default_score,
            drop_threshold,
            term_const,
            term_ub,
            mcw: 0.0,
            prunable,
        }
    }

    fn score_rows(
        &self,
        prep: &PreparedKernel,
        p: &[f64],
        db_size: &[f64],
        _word_count: &[f64],
        out: &mut [f64],
    ) {
        let qlen = prep.query_len;
        for (r, o) in out.iter_mut().enumerate().take(db_size.len()) {
            if qlen == 0 {
                *o = 0.0;
                continue;
            }
            let row = &p[r * qlen..r * qlen + qlen];
            let mut acc = 1.0;
            for k in 0..qlen {
                acc *= self.lambda * row[k] + prep.term_const[k];
            }
            *o = acc;
        }
    }

    fn upper_bound(&self, prep: &PreparedKernel, mask: u64, _db_size: f64) -> f64 {
        if !prep.prunable {
            return f64::INFINITY;
        }
        let mut acc = 1.0;
        for k in 0..prep.query_len {
            // An absent word's factor is exactly the global-model constant;
            // a present word's is at most λ·max_p_tf + that constant.
            acc *= if present(mask, k) {
                prep.term_ub[k]
            } else {
                prep.term_const[k]
            };
        }
        inflate(acc)
    }
}

/// A bounded "worst-out" heap over [`RankedDatabase`] under
/// [`ranking_order`]: keeps the best `cap` entries seen so far; the root is
/// the worst kept entry, so a capacity-full heap rejects in O(1) and
/// replaces in O(log cap).
///
/// Because every pushed entry carries its exact score and a distinct
/// database index, [`ranking_order`] is a total order over them and the
/// final sorted content is *the* top-`cap` prefix of the full ranking,
/// whatever order entries arrive in.
#[derive(Debug, Clone)]
pub struct TopK {
    cap: usize,
    heap: Vec<RankedDatabase>,
}

/// `a` ranks strictly worse than `b`.
#[inline]
fn worse(a: &RankedDatabase, b: &RankedDatabase) -> bool {
    ranking_order(a, b) == std::cmp::Ordering::Greater
}

impl TopK {
    /// A heap keeping the best `cap` entries.
    pub fn new(cap: usize) -> TopK {
        TopK {
            cap,
            heap: Vec::with_capacity(cap.min(1024)),
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no entry is held.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// True once `cap` entries are held (always true for `cap == 0`).
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.cap
    }

    /// The score of the worst kept entry, available only once the heap is
    /// full — the pruning threshold θ. A candidate with an upper bound
    /// strictly below θ can never displace a kept entry; a bound *equal* to
    /// θ still can (a tied score with a lower index wins), so callers must
    /// skip only on strict `ub < worst_score()`.
    pub fn worst_score(&self) -> Option<f64> {
        (self.cap > 0 && self.is_full()).then(|| self.heap[0].score)
    }

    /// Offer an entry; kept only if the heap has room or the entry beats
    /// the current worst.
    pub fn push(&mut self, entry: RankedDatabase) {
        if self.cap == 0 {
            return;
        }
        if self.heap.len() < self.cap {
            self.heap.push(entry);
            self.sift_up(self.heap.len() - 1);
        } else if worse(&self.heap[0], &entry) {
            self.heap[0] = entry;
            self.sift_down(0);
        }
    }

    /// The kept entries, sorted by [`ranking_order`] — the exact top-`cap`
    /// prefix of the full ranking over everything pushed.
    pub fn into_sorted(mut self) -> Vec<RankedDatabase> {
        self.heap.sort_by(ranking_order);
        self.heap
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if worse(&self.heap[i], &self.heap[parent]) {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut worst = i;
            if l < self.heap.len() && worse(&self.heap[l], &self.heap[worst]) {
                worst = l;
            }
            if r < self.heap.len() && worse(&self.heap[r], &self.heap[worst]) {
                worst = r;
            }
            if worst == i {
                break;
            }
            self.heap.swap(i, worst);
            i = worst;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::test_support::summary;
    use crate::context::SelectionAlgorithm;
    use dbselect_core::summary::SummaryView;
    use proptest::prelude::*;
    use std::collections::HashMap;

    fn lm() -> Lm {
        Lm::from_global_map(
            0.5,
            HashMap::from([(1, 0.01), (2, 0.003), (3, 0.0004), (9, 0.02)]),
        )
    }

    /// Score a summary through the kernel (one-row batch) and through the
    /// reference `score_with_p`, asserting bit equality.
    fn assert_kernel_matches<A: SelectionAlgorithm + ScoreKernel>(
        algo: &A,
        query: &[TermId],
        dbs: &[(f64, Vec<(TermId, f64)>)],
    ) {
        let summaries: Vec<_> = dbs.iter().map(|(n, dfs)| summary(*n, dfs)).collect();
        let views: Vec<&dyn SummaryView> = summaries.iter().map(|s| s as _).collect();
        let ctx = CollectionContext::build(query, &views);
        let min_wc = views
            .iter()
            .map(|v| v.word_count())
            .fold(f64::INFINITY, f64::min);
        let min_wc = if min_wc.is_finite() { min_wc } else { 0.0 };
        // Per-term maxima over the same probability values the rows carry.
        let bounds: Vec<TermBound> = query
            .iter()
            .map(|&w| {
                let mut b = TermBound::absent();
                for v in &views {
                    b.max_df = b.max_df.max(v.p_df(w) * v.db_size());
                    b.max_p_df = b.max_p_df.max(v.p_df(w));
                    b.max_p_tf = b.max_p_tf.max(v.p_tf(w));
                }
                b
            })
            .collect();
        let prep = algo.prepare(query, &ctx, &bounds, min_wc);
        // Gather rows exactly as the engine does: native-space probability
        // per query position.
        let mut rows = Vec::new();
        let mut sizes = Vec::new();
        let mut wcs = Vec::new();
        let mut masks = Vec::new();
        for v in &views {
            let mut mask = 0u64;
            for (k, &w) in query.iter().enumerate() {
                let pw = match algo.space() {
                    ProbabilitySpace::DocumentFrequency => v.p_df(w),
                    ProbabilitySpace::TokenFrequency => v.p_tf(w),
                };
                rows.push(pw);
                if pw != 0.0 && k < 64 {
                    mask |= 1 << k;
                }
            }
            sizes.push(v.db_size());
            wcs.push(v.word_count());
            masks.push(mask);
        }
        let mut out = vec![0.0; views.len()];
        algo.score_rows(&prep, &rows, &sizes, &wcs, &mut out);
        for (i, v) in views.iter().enumerate() {
            let p: Vec<f64> = query
                .iter()
                .map(|&w| match algo.space() {
                    ProbabilitySpace::DocumentFrequency => v.p_df(w),
                    ProbabilitySpace::TokenFrequency => v.p_tf(w),
                })
                .collect();
            let want = algo.score_with_p(query, &p, *v, &ctx);
            assert_eq!(
                out[i].to_bits(),
                want.to_bits(),
                "{} row {i}: kernel {} vs reference {}",
                algo.name(),
                out[i],
                want
            );
            let ub = ScoreKernel::upper_bound(algo, &prep, masks[i], sizes[i]);
            assert!(
                ub >= want,
                "{} row {i}: upper bound {ub} below score {want}",
                algo.name()
            );
        }
        // The kernel's default score and threshold replicate the ranker's.
        let zeros = vec![0.0; query.len()];
        let want_default = algo.score_with_p(query, &zeros, views[0], &ctx);
        assert_eq!(prep.default_score.to_bits(), want_default.to_bits());
        let want_threshold = want_default + want_default.abs() * 1e-9 + 1e-300;
        assert_eq!(prep.drop_threshold.to_bits(), want_threshold.to_bits());
    }

    fn testbed() -> Vec<(f64, Vec<(TermId, f64)>)> {
        vec![
            (1000.0, vec![(1, 100.0), (2, 50.0)]),
            (320.0, vec![(1, 150.0), (3, 12.0)]),
            (100_000.0, vec![(2, 3.0), (3, 1.0)]),
            (2_000.0, vec![(9, 60.0)]),
            (50.0, vec![]),
        ]
    }

    #[test]
    fn cori_kernel_is_bit_identical() {
        for q in [vec![1u32, 2], vec![1, 2, 3, 9], vec![7], vec![1, 1, 2]] {
            assert_kernel_matches(&Cori::default(), &q, &testbed());
        }
    }

    #[test]
    fn bgloss_kernel_is_bit_identical() {
        for q in [vec![1u32, 2], vec![1, 2, 3, 9], vec![7], vec![1, 1, 2]] {
            assert_kernel_matches(&BGloss, &q, &testbed());
        }
    }

    #[test]
    fn lm_kernel_is_bit_identical() {
        for q in [vec![1u32, 2], vec![1, 2, 3, 9], vec![7], vec![1, 1, 2]] {
            assert_kernel_matches(&lm(), &q, &testbed());
        }
    }

    #[test]
    fn bgloss_bound_is_zero_for_incomplete_masks() {
        let query = [1u32, 2];
        let ctx = CollectionContext {
            m: 1,
            cf: vec![1, 1],
            mcw: 100.0,
        };
        let bounds = [
            TermBound {
                max_df: 10.0,
                max_p_df: 0.5,
                max_p_tf: 0.2,
            };
            2
        ];
        let prep = ScoreKernel::prepare(&BGloss, &query, &ctx, &bounds, 10.0);
        assert_eq!(ScoreKernel::upper_bound(&BGloss, &prep, 0b01, 1000.0), 0.0);
        assert!(ScoreKernel::upper_bound(&BGloss, &prep, 0b11, 1000.0) > 0.0);
    }

    #[test]
    fn top_k_heap_keeps_the_best_entries() {
        let entries: Vec<RankedDatabase> = [
            (0, 0.5),
            (1, 0.9),
            (2, 0.1),
            (3, 0.9),
            (4, 0.7),
            (5, 0.3),
        ]
        .iter()
        .map(|&(index, score)| RankedDatabase { index, score })
        .collect();
        let mut heap = TopK::new(3);
        assert!(heap.worst_score().is_none(), "no θ before the heap fills");
        for &e in &entries {
            heap.push(e);
        }
        assert_eq!(heap.worst_score(), Some(0.7));
        let top = heap.into_sorted();
        let mut full = entries.clone();
        full.sort_by(ranking_order);
        full.truncate(3);
        assert_eq!(top, full);
        // Ties: equal scores ordered by index.
        assert_eq!(top[0].index, 1);
        assert_eq!(top[1].index, 3);
    }

    #[test]
    fn zero_capacity_heap_stays_empty() {
        let mut heap = TopK::new(0);
        heap.push(RankedDatabase {
            index: 0,
            score: 1.0,
        });
        assert!(heap.is_empty());
        assert!(heap.is_full());
        assert!(heap.worst_score().is_none());
        assert!(heap.into_sorted().is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// For any insertion order and capacity, the heap's sorted content
        /// equals truncating the fully sorted input.
        #[test]
        fn heap_equals_truncated_sort(
            scores in proptest::collection::vec(0.0f64..1.0, 0..40),
            cap in 0usize..12,
        ) {
            // Quantize so score ties actually occur.
            let entries: Vec<RankedDatabase> = scores
                .iter()
                .enumerate()
                .map(|(index, &s)| RankedDatabase { index, score: (s * 8.0).round() / 8.0 })
                .collect();
            let mut heap = TopK::new(cap);
            for &e in &entries {
                heap.push(e);
            }
            let mut want = entries.clone();
            want.sort_by(ranking_order);
            want.truncate(cap);
            prop_assert_eq!(heap.into_sorted(), want);
        }

        /// Kernels stay bit-identical to the reference on random testbeds,
        /// and upper bounds dominate the realized scores.
        #[test]
        fn kernels_bit_identical_on_random_testbeds(
            dbs in proptest::collection::vec(
                (10.0f64..100_000.0, proptest::collection::vec((1u32..6, 0.0f64..1000.0), 0..5)),
                1..6,
            ),
            query in proptest::collection::vec(1u32..7, 1..5),
        ) {
            let dbs: Vec<(f64, Vec<(TermId, f64)>)> = dbs
                .into_iter()
                .map(|(n, words)| {
                    let mut dedup: Vec<(TermId, f64)> = Vec::new();
                    for (t, df) in words {
                        if !dedup.iter().any(|&(u, _)| u == t) {
                            dedup.push((t, df.min(n).floor()));
                        }
                    }
                    (n, dedup)
                })
                .collect();
            assert_kernel_matches(&Cori::default(), &query, &dbs);
            assert_kernel_matches(&BGloss, &query, &dbs);
            assert_kernel_matches(&lm(), &query, &dbs);
        }
    }
}
