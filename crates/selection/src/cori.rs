//! The CORI database selection algorithm (Callan et al.; evaluated by
//! French et al., SIGIR 1999), as specified in Section 5.3:
//!
//! ```text
//! s(q, D) = Σ_{w ∈ q} (0.4 + 0.6·T·I) / |q|
//! T = df / (df + 50 + 150·cw(D)/mcw)        df = p̂(w|D)·|D|
//! I = log((m + 0.5)/cf(w)) / log(m + 1.0)
//! ```
//!
//! where `cf(w)` is the number of databases containing `w`, `m` the number
//! of databases being ranked, `cw(D)` the word count of `D`, and `mcw` the
//! mean word count. Under shrinkage every word has non-zero probability in
//! every summary, so `cf` counts a word as present only when
//! `round(|D̂|·p̂_R(w|D)) ≥ 1` (handled by
//! [`CollectionContext::build`]).

use dbselect_core::summary::SummaryView;
use textindex::TermId;

use crate::context::{CollectionContext, SelectionAlgorithm};

/// The CORI scorer with its classic constants.
#[derive(Debug, Clone, Copy)]
pub struct Cori {
    /// The default-belief constant (0.4 in the literature).
    pub default_belief: f64,
    /// The `df` saturation constant (50).
    pub df_base: f64,
    /// The collection-length scaling constant (150).
    pub df_scale: f64,
}

impl Default for Cori {
    fn default() -> Self {
        Cori {
            default_belief: 0.4,
            df_base: 50.0,
            df_scale: 150.0,
        }
    }
}

impl SelectionAlgorithm for Cori {
    fn name(&self) -> &'static str {
        "CORI"
    }

    /// CORI's score is a bounded *average* of per-word beliefs, so its raw
    /// coefficient of variation shrinks like `1/√n` with query length.
    /// The decision therefore tests the per-word dispersion `CV·√n`, with a
    /// threshold calibrated so the adaptive test fires in the
    /// low-double-digit percentage regime of the paper's Table 10 on both
    /// long and short queries (see DESIGN.md §6).
    fn score_is_uncertain(&self, mean: f64, std_dev: f64, query_len: usize) -> bool {
        if mean <= 0.0 {
            return std_dev > 0.0;
        }
        let per_word_cv = std_dev / mean * (query_len.max(1) as f64).sqrt();
        per_word_cv > 0.8
    }

    fn score_with_p(
        &self,
        query: &[TermId],
        p: &[f64],
        summary: &dyn SummaryView,
        ctx: &CollectionContext,
    ) -> f64 {
        if query.is_empty() {
            return 0.0;
        }
        let cw_ratio = if ctx.mcw > 0.0 {
            summary.word_count() / ctx.mcw
        } else {
            1.0
        };
        let denom_extra = self.df_base + self.df_scale * cw_ratio;
        let m = ctx.m as f64;
        let mut score = 0.0;
        for (k, &pw) in p.iter().enumerate().take(query.len()) {
            let df = pw * summary.db_size();
            if df.round() < 1.0 {
                // A query term the database does not effectively contain
                // (`round(|D̂|·p̂) < 1`, the Section-5.3 rule — crucial under
                // shrinkage, where every word has non-zero probability)
                // contributes no belief at all, INQUERY-style. Keeping the
                // 0.4 default-belief floor for absent terms would make the
                // Section-4 uncertainty test `std > mean` unsatisfiable for
                // CORI, contradicting the paper's Table 10 — and would let
                // the sheer breadth of a shrunk summary outscore genuine
                // sampled evidence.
                continue;
            }
            let t = df / (df + denom_extra);
            let cf = ctx.cf.get(k).copied().unwrap_or(0);
            // With cf = 0 no database effectively contains the word; use
            // I = 0 to avoid log(∞) (T-weighted, so the term vanishes).
            let i = if cf > 0 {
                ((m + 0.5) / f64::from(cf)).ln() / (m + 1.0).ln()
            } else {
                0.0
            };
            score += self.default_belief + (1.0 - self.default_belief) * t * i;
        }
        score / query.len() as f64
    }

    /// CORI has a batch kernel (see [`crate::topk`]), unlocking the pruned
    /// top-k serving path.
    fn score_kernel(&self) -> Option<&dyn crate::topk::ScoreKernel> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::rank_databases;
    use crate::context::test_support::summary;

    #[test]
    fn default_score_is_zero_under_inquery_semantics() {
        // Absent query terms contribute no belief, so a database matching
        // nothing scores 0 (and is "not selected" by the ranker).
        let s = summary(1000.0, &[]);
        let views: Vec<&dyn SummaryView> = vec![&s];
        let ctx = CollectionContext::build(&[1, 2], &views);
        let d = Cori::default().default_score(&[1, 2], &s, &ctx);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn present_words_carry_at_least_the_default_belief() {
        let s = summary(1000.0, &[(1, 100.0)]);
        let views: Vec<&dyn SummaryView> = vec![&s];
        let ctx = CollectionContext::build(&[1], &views);
        let score = Cori::default().score_db(&[1], &s, &ctx);
        assert!(score >= 0.4, "score {score}");
    }

    #[test]
    fn higher_df_scores_higher() {
        let rich = summary(1000.0, &[(1, 500.0)]);
        let poor = summary(1000.0, &[(1, 5.0)]);
        let views: Vec<&dyn SummaryView> = vec![&poor, &rich];
        let ranking = rank_databases(&Cori::default(), &[1], &views);
        assert_eq!(ranking[0].index, 1);
        assert!(ranking[0].score > ranking[1].score);
    }

    #[test]
    fn rare_words_weigh_more_via_idf_component() {
        // Word 1 in both databases, word 2 only in database b: for b, the
        // word-2 contribution has higher I than word 1's.
        let a = summary(1000.0, &[(1, 100.0)]);
        let b = summary(1000.0, &[(1, 100.0), (2, 100.0)]);
        let views: Vec<&dyn SummaryView> = vec![&a, &b];
        let algo = Cori::default();
        let s_common = algo.score_db(&[1], &b, &CollectionContext::build(&[1], &views));
        let s_rare = algo.score_db(&[2], &b, &CollectionContext::build(&[2], &views));
        assert!(s_rare > s_common, "{s_rare} vs {s_common}");
    }

    #[test]
    fn scores_are_bounded_by_one() {
        let s = summary(1000.0, &[(1, 1000.0)]);
        let views: Vec<&dyn SummaryView> = vec![&s];
        let ctx = CollectionContext::build(&[1], &views);
        let score = Cori::default().score_db(&[1], &s, &ctx);
        assert!(score > 0.4 && score <= 1.0, "score {score}");
    }

    #[test]
    fn longer_databases_need_more_evidence() {
        // Same df, but database b has a much larger word count → lower T.
        let a = summary(1000.0, &[(1, 100.0)]);
        let mut b = summary(1000.0, &[(1, 100.0)]);
        b.set_word(
            999,
            dbselect_core::summary::WordStats {
                sample_df: 1,
                df: 1.0,
                tf: 50_000.0,
            },
        );
        let views: Vec<&dyn SummaryView> = vec![&a, &b];
        let ctx = CollectionContext::build(&[1], &views);
        let algo = Cori::default();
        let s_a = algo.score_db(&[1], &a, &ctx);
        let s_b = algo.score_db(&[1], &b, &ctx);
        assert!(s_a > s_b, "{s_a} vs {s_b}");
    }
}
