//! The hierarchical database selection baseline of Ipeirotis & Gravano
//! (VLDB 2002) — the "\[17\]" the paper compares shrinkage against
//! (QBS-Hierarchical / FPS-Hierarchical in Figures 4 and 5).
//!
//! Instead of modifying database summaries, this algorithm aggregates them
//! into *category* summaries and selects hierarchically: at each node it
//! scores the child categories (and any databases classified directly at
//! the node) with the base algorithm, then descends into the best-scoring
//! child first, committing to that choice before considering its siblings.
//! These **irreversible per-level choices** are exactly the weakness the
//! paper's flat shrinkage-based ranking fixes: when a query cuts across
//! categories, a hierarchical descent cannot interleave databases from
//! different branches.

use dbselect_core::category_summary::CategorySummaries;
use dbselect_core::hierarchy::{CategoryId, Hierarchy};
use dbselect_core::summary::{ContentSummary, SummaryView};
use textindex::TermId;

use crate::context::{rank_databases, CollectionContext, RankedDatabase, SelectionAlgorithm};

/// Hierarchical selector over a classified database collection.
pub struct HierarchicalSelector<'a> {
    hierarchy: &'a Hierarchy,
    db_summaries: &'a [ContentSummary],
    /// Direct databases per category (indices into `db_summaries`).
    direct_dbs: Vec<Vec<usize>>,
    /// Number of databases in each category's subtree.
    subtree_counts: Vec<usize>,
    /// Materialized category summary per category.
    category_summaries: Vec<ContentSummary>,
}

enum Entry {
    Category(CategoryId),
    Database(usize),
}

impl<'a> HierarchicalSelector<'a> {
    /// Build the selector: `classifications[i]` is the category of
    /// `db_summaries[i]`.
    pub fn new(
        hierarchy: &'a Hierarchy,
        db_summaries: &'a [ContentSummary],
        classifications: &[CategoryId],
        category_summaries: &CategorySummaries,
    ) -> Self {
        assert_eq!(db_summaries.len(), classifications.len());
        let mut direct_dbs = vec![Vec::new(); hierarchy.len()];
        let mut subtree_counts = vec![0usize; hierarchy.len()];
        for (i, &c) in classifications.iter().enumerate() {
            direct_dbs[c].push(i);
            for node in hierarchy.path_from_root(c) {
                subtree_counts[node] += 1;
            }
        }
        let materialized = hierarchy
            .ids()
            .map(|c| category_summaries.category_summary(c))
            .collect();
        HierarchicalSelector {
            hierarchy,
            db_summaries,
            direct_dbs,
            subtree_counts,
            category_summaries: materialized,
        }
    }

    /// Rank up to `k` databases for `query`. Returned scores are synthetic
    /// rank positions (higher = better): scores from different branches are
    /// not comparable, only the order matters.
    pub fn rank(
        &self,
        algorithm: &dyn SelectionAlgorithm,
        query: &[TermId],
        k: usize,
    ) -> Vec<RankedDatabase> {
        let mut out = Vec::with_capacity(k);
        self.explore(algorithm, query, Hierarchy::ROOT, k, &mut out);
        out.into_iter()
            .enumerate()
            .map(|(pos, index)| RankedDatabase {
                index,
                score: (k - pos) as f64,
            })
            .collect()
    }

    fn explore(
        &self,
        algorithm: &dyn SelectionAlgorithm,
        query: &[TermId],
        node: CategoryId,
        k: usize,
        out: &mut Vec<usize>,
    ) {
        if out.len() >= k {
            return;
        }
        // Candidate entries at this level: child categories with databases
        // below them, plus databases classified directly here.
        let mut entries: Vec<(Entry, &dyn SummaryView)> = Vec::new();
        for &child in self.hierarchy.children(node) {
            if self.subtree_counts[child] > 0 {
                entries.push((Entry::Category(child), &self.category_summaries[child]));
            }
        }
        for &db in &self.direct_dbs[node] {
            entries.push((Entry::Database(db), &self.db_summaries[db]));
        }
        if entries.is_empty() {
            return;
        }
        let views: Vec<&dyn SummaryView> = entries.iter().map(|(_, v)| *v).collect();
        // Rank the level with the base algorithm. Categories with no query
        // evidence are never entered, but *databases* of an entered
        // (relevant) category are selected even at their default score —
        // this is the defining behavior of [17] the paper criticizes:
        // "the hierarchical algorithm continues to select (irrelevant)
        // databases from the (relevant) category".
        let ranked = rank_databases(algorithm, query, &views);
        for r in ranked {
            if out.len() >= k {
                return;
            }
            match entries[r.index].0 {
                Entry::Database(db) => out.push(db),
                Entry::Category(child) => self.explore(algorithm, query, child, k, out),
            }
        }
        // Fill remaining slots with the unevidenced databases of this
        // (relevant, already-entered) category's subtree, largest first.
        // The root is the starting point, not a *chosen* category, so it
        // never back-fills: with no evidence anywhere, nothing is selected.
        if node == Hierarchy::ROOT {
            return;
        }
        let mut leftovers: Vec<usize> = self
            .hierarchy
            .subtree(node)
            .into_iter()
            .flat_map(|c| self.direct_dbs[c].iter().copied())
            .filter(|db| !out.contains(db))
            .collect();
        leftovers.sort_by(|&a, &b| {
            self.db_summaries[b]
                .db_size()
                .partial_cmp(&self.db_summaries[a].db_size())
                .unwrap()
                .then(a.cmp(&b))
        });
        for db in leftovers {
            if out.len() >= k {
                return;
            }
            out.push(db);
        }
    }

    /// The scoring context over the flat database collection (exposed for
    /// parity checks in tests).
    pub fn flat_context(&self, query: &[TermId]) -> CollectionContext {
        let views: Vec<&dyn SummaryView> = self
            .db_summaries
            .iter()
            .map(|s| s as &dyn SummaryView)
            .collect();
        CollectionContext::build(query, &views)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bgloss::BGloss;
    use dbselect_core::category_summary::CategoryWeighting;
    use dbselect_core::summary::WordStats;
    use std::collections::HashMap;

    fn summary(db_size: f64, dfs: &[(TermId, f64)]) -> ContentSummary {
        let words: HashMap<TermId, WordStats> = dfs
            .iter()
            .map(|&(t, df)| {
                (
                    t,
                    WordStats {
                        sample_df: df as u32,
                        df,
                        tf: df * 2.0,
                    },
                )
            })
            .collect();
        ContentSummary::new(db_size, db_size as u32, words)
    }

    /// Root → {Health → {Heart}, Sports}; term 1 = "hypertension" lives in
    /// Heart databases, term 9 = "soccer" in the Sports database.
    fn fixture() -> (Hierarchy, Vec<ContentSummary>, Vec<CategoryId>) {
        let mut h = Hierarchy::new("Root");
        let health = h.add_child(Hierarchy::ROOT, "Health");
        let heart = h.add_child(health, "Heart");
        let sports = h.add_child(Hierarchy::ROOT, "Sports");
        let summaries = vec![
            summary(100.0, &[(1, 60.0)]), // strong heart db
            summary(100.0, &[(1, 10.0)]), // weaker heart db
            summary(100.0, &[(9, 80.0)]), // sports db
        ];
        let classifications = vec![heart, heart, sports];
        (h, summaries, classifications)
    }

    fn selector<'a>(
        h: &'a Hierarchy,
        summaries: &'a [ContentSummary],
        classifications: &'a [CategoryId],
    ) -> HierarchicalSelector<'a> {
        let refs: Vec<(CategoryId, &ContentSummary)> = classifications
            .iter()
            .copied()
            .zip(summaries.iter())
            .collect();
        let cats = CategorySummaries::build(h, &refs, CategoryWeighting::BySize);
        HierarchicalSelector::new(h, summaries, classifications, &cats)
    }

    #[test]
    fn descends_into_matching_branch() {
        let (h, summaries, classifications) = fixture();
        let sel = selector(&h, &summaries, &classifications);
        let ranked = sel.rank(&BGloss, &[1], 2);
        let indices: Vec<usize> = ranked.iter().map(|r| r.index).collect();
        assert_eq!(indices, vec![0, 1], "both heart databases, strongest first");
    }

    #[test]
    fn other_branch_selected_for_other_topic() {
        let (h, summaries, classifications) = fixture();
        let sel = selector(&h, &summaries, &classifications);
        let ranked = sel.rank(&BGloss, &[9], 2);
        assert_eq!(ranked[0].index, 2);
        // bGlOSS gives zero (default) scores to the heart databases, so
        // only the sports database is returned.
        assert_eq!(ranked.len(), 1);
    }

    #[test]
    fn k_limits_results() {
        let (h, summaries, classifications) = fixture();
        let sel = selector(&h, &summaries, &classifications);
        let ranked = sel.rank(&BGloss, &[1], 1);
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].index, 0);
    }

    #[test]
    fn scores_decrease_with_rank_position() {
        let (h, summaries, classifications) = fixture();
        let sel = selector(&h, &summaries, &classifications);
        let ranked = sel.rank(&BGloss, &[1], 3);
        assert!(ranked.windows(2).all(|w| w[0].score > w[1].score));
    }

    #[test]
    fn irreversible_choice_cannot_interleave_branches() {
        // A query matching both branches: term 5 appears in a weak heart db
        // and strongly in the sports db. The hierarchical algorithm first
        // commits to whichever *category* scores higher and exhausts it.
        let mut h = Hierarchy::new("Root");
        let health = h.add_child(Hierarchy::ROOT, "Health");
        let sports = h.add_child(Hierarchy::ROOT, "Sports");
        let summaries = vec![
            summary(1000.0, &[(5, 100.0), (1, 500.0)]), // health db 0
            summary(1000.0, &[(5, 90.0)]),              // health db 1
            summary(100.0, &[(5, 60.0)]),               // sports db (highest p̂!)
        ];
        let classifications = vec![health, health, sports];
        let refs: Vec<(CategoryId, &ContentSummary)> = classifications
            .iter()
            .copied()
            .zip(summaries.iter())
            .collect();
        let cats = CategorySummaries::build(&h, &refs, CategoryWeighting::BySize);
        let sel = HierarchicalSelector::new(&h, &summaries, &classifications, &cats);
        let ranked = sel.rank(&BGloss, &[5], 2);
        let indices: Vec<usize> = ranked.iter().map(|r| r.index).collect();
        // Health (2000 docs · p ≈ 0.095 → 190 expected matches) beats Sports
        // (100 · 0.6 = 60), so both health databases are taken before the
        // sports database even though db 2 has the highest p̂(5|D).
        assert_eq!(indices, vec![0, 1]);
    }
}
