//! The bGlOSS database selection algorithm (Gravano, García-Molina &
//! Tomasic, ACM TODS 1999), as specified in Section 5.3:
//!
//! ```text
//! s(q, D) = |D| · Π_{w ∈ q} p̂(w|D)
//! ```
//!
//! bGlOSS estimates the number of documents in `D` matching *all* query
//! words under a word-independence assumption. It has no smoothing: a
//! single query word missing from the content summary zeroes the score —
//! which is why, of the three base algorithms, bGlOSS benefits most from
//! shrinkage (Section 6.2, "Adaptive vs. Universal").

use dbselect_core::summary::SummaryView;
use textindex::TermId;

use crate::context::{CollectionContext, SelectionAlgorithm};

/// The bGlOSS scorer (stateless).
#[derive(Debug, Clone, Copy, Default)]
pub struct BGloss;

impl SelectionAlgorithm for BGloss {
    fn name(&self) -> &'static str {
        "bGlOSS"
    }

    fn score_with_p(
        &self,
        _query: &[TermId],
        p: &[f64],
        summary: &dyn SummaryView,
        _ctx: &CollectionContext,
    ) -> f64 {
        if p.is_empty() {
            return 0.0;
        }
        summary.db_size() * p.iter().product::<f64>()
    }

    fn default_score(
        &self,
        _query: &[TermId],
        _summary: &dyn SummaryView,
        _ctx: &CollectionContext,
    ) -> f64 {
        // Any zero probability collapses the product, so "no evidence" is
        // exactly a zero score.
        0.0
    }

    /// bGlOSS is the canonical product form: `|D| · Π p_k`.
    fn product_form(
        &self,
        query: &[TermId],
        summary: &dyn SummaryView,
        _ctx: &CollectionContext,
    ) -> Option<(f64, Vec<(f64, f64)>)> {
        Some((summary.db_size(), vec![(1.0, 0.0); query.len()]))
    }

    /// bGlOSS has a batch kernel (see [`crate::topk`]), unlocking the
    /// pruned top-k serving path.
    fn score_kernel(&self) -> Option<&dyn crate::topk::ScoreKernel> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::rank_databases;
    use crate::context::test_support::summary;

    #[test]
    fn score_is_expected_match_count() {
        let s = summary(1000.0, &[(1, 100.0), (2, 50.0)]);
        let views: Vec<&dyn SummaryView> = vec![&s];
        let ctx = CollectionContext::build(&[1, 2], &views);
        let score = BGloss.score_db(&[1, 2], &s, &ctx);
        // 1000 · 0.1 · 0.05 = 5 expected matching documents.
        assert!((score - 5.0).abs() < 1e-9);
    }

    #[test]
    fn missing_word_zeroes_the_score() {
        let s = summary(1000.0, &[(1, 100.0)]);
        let views: Vec<&dyn SummaryView> = vec![&s];
        let ctx = CollectionContext::build(&[1, 99], &views);
        assert_eq!(BGloss.score_db(&[1, 99], &s, &ctx), 0.0);
    }

    #[test]
    fn larger_database_wins_at_equal_probabilities() {
        let big = summary(10_000.0, &[(1, 1000.0)]);
        let small = summary(100.0, &[(1, 10.0)]);
        let views: Vec<&dyn SummaryView> = vec![&small, &big];
        let ranking = rank_databases(&BGloss, &[1], &views);
        assert_eq!(ranking[0].index, 1, "same p̂ but more documents");
    }

    #[test]
    fn empty_query_scores_zero() {
        let s = summary(1000.0, &[(1, 100.0)]);
        let views: Vec<&dyn SummaryView> = vec![&s];
        let ctx = CollectionContext::build(&[], &views);
        assert_eq!(BGloss.score_db(&[], &s, &ctx), 0.0);
    }
}
