//! `selection` — database selection algorithms (Sections 4 and 5.3 of the
//! paper).
//!
//! * [`bgloss`], [`cori`], [`lm`] — the three "base" algorithms of the
//!   evaluation, all implementing [`SelectionAlgorithm`];
//! * [`hierarchical`] — the category-descent baseline of \[17\] that the
//!   shrinkage approach is compared against;
//! * [`adaptive`] — the paper's contribution: Figure 3's adaptive,
//!   per-(query, database) choice between the sample-based summary `Ŝ(D)`
//!   and the shrunk summary `R̂(D)`, driven by score-uncertainty
//!   estimation.
//!
//! All scoring is done through [`dbselect_core::summary::SummaryView`], so
//! the same algorithm code runs over approximate, perfect, shrunk, and
//! category summaries.

pub mod adaptive;
pub mod bgloss;
pub mod context;
pub mod cori;
pub mod hierarchical;
pub mod lm;
pub mod merge;
pub mod redde;
pub mod topk;

pub use adaptive::{
    adaptive_rank, score_is_uncertain, score_is_uncertain_with_posteriors, AdaptiveConfig,
    AdaptiveOutcome, ShrinkageMode, SummaryPair,
};
pub use bgloss::BGloss;
pub use context::{
    rank_databases, rank_databases_with_context, ranking_order, CollectionContext, IndexedView,
    RankedDatabase, SelectionAlgorithm,
};
pub use cori::Cori;
pub use hierarchical::HierarchicalSelector;
pub use lm::Lm;
pub use merge::{
    merge_partial_rankings, merge_rankings, merge_results, MergeStrategy, MergedResult,
    PartialMerge,
};
pub use redde::{Redde, ReddeConfig};
pub use topk::{PreparedKernel, ProbabilitySpace, ScoreKernel, TermBound, TopK};
