//! Results merging — step (3) of the metasearching loop the paper's
//! introduction defines: *"obtains the query results from each database and
//! merges them into a unified answer."*
//!
//! Three classic strategies are provided:
//!
//! * [`MergeStrategy::RoundRobin`] — interleave the per-database rankings
//!   in database-score order (no document scores required);
//! * [`MergeStrategy::RawScore`] — trust the databases' own document
//!   scores as globally comparable (only sound for homogeneous engines);
//! * [`MergeStrategy::CoriWeighted`] — the CORI merging heuristic (Callan
//!   et al.): min–max normalize both the database scores `C` and each
//!   database's document scores `D`, then rank by
//!   `D″ = (D′ + 0.4·D′·C′) / 1.4`, so documents from high-scoring
//!   databases are promoted without letting database scores dominate.

use textindex::{DocId, SearchOutcome};

use crate::context::{ranking_order, RankedDatabase};

/// A document in the merged result list.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedResult {
    /// Index of the source database (position in the input slice).
    pub database: usize,
    /// The document's id within its source database.
    pub doc: DocId,
    /// The merged score (comparable within one merged list only).
    pub score: f64,
}

/// How per-database result lists are combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergeStrategy {
    /// Take one document from each database in turn, best database first.
    RoundRobin,
    /// Sort by the databases' raw document scores.
    RawScore,
    /// CORI-weighted normalization (the default).
    #[default]
    CoriWeighted,
}

/// Merge per-database results into one ranked list.
///
/// `inputs[i] = (database_index, database_score, outcome)` — the selection
/// score the metasearcher assigned to the database and the results it
/// returned. Ties are broken by (database, doc) for determinism.
pub fn merge_results(
    inputs: &[(usize, f64, SearchOutcome)],
    strategy: MergeStrategy,
    limit: usize,
) -> Vec<MergedResult> {
    match strategy {
        MergeStrategy::RoundRobin => round_robin(inputs, limit),
        MergeStrategy::RawScore => by_score(inputs, limit, |doc_score, _| doc_score),
        MergeStrategy::CoriWeighted => cori_weighted(inputs, limit),
    }
}

/// Merge per-shard *database rankings* into one global ranking.
///
/// Each input list must already be sorted by [`ranking_order`] — which every
/// list produced by [`crate::rank_databases_with_context`] is — and the
/// lists must not share database indices (a shard partition). The output is
/// then exactly what sorting the concatenation with [`ranking_order`] would
/// give: the comparator is a total order over (score, index) pairs with
/// distinct indices, so the k-way merge reconstructs the monolithic ranking
/// bit for bit, `f64::to_bits` scores included.
///
/// This is the gather half of the broker's shard scatter-gather: shards
/// rank their databases independently (same float operations, global
/// collection context) and the merged ranking is indistinguishable from a
/// single-catalog run.
pub fn merge_rankings(shards: &[Vec<RankedDatabase>]) -> Vec<RankedDatabase> {
    match shards.len() {
        0 => return Vec::new(),
        1 => return shards[0].clone(),
        _ => {}
    }
    let total = shards.iter().map(Vec::len).sum();
    let mut cursors = vec![0usize; shards.len()];
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        let mut best: Option<(usize, &RankedDatabase)> = None;
        for (s, shard) in shards.iter().enumerate() {
            let Some(candidate) = shard.get(cursors[s]) else {
                continue;
            };
            best = match best {
                Some((_, leader)) if ranking_order(leader, candidate).is_le() => best,
                _ => Some((s, candidate)),
            };
        }
        let (s, winner) = best.expect("cursors exhausted before total reached");
        out.push(*winner);
        cursors[s] += 1;
    }
    out
}

/// The outcome of merging a shard scatter in which some shards never
/// answered: the merged ranking over the shards that did, plus the slot
/// indices of the ones that did not.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialMerge {
    /// The k-way merge of every present shard, in [`ranking_order`].
    pub ranking: Vec<RankedDatabase>,
    /// Slot indices (`shards[i] == None`) of the missing shards,
    /// ascending.
    pub missing: Vec<usize>,
}

impl PartialMerge {
    /// Whether any shard was missing from the merge.
    pub fn is_degraded(&self) -> bool {
        !self.missing.is_empty()
    }
}

/// [`merge_rankings`] over a scatter where shards may be missing — the
/// gather half of a *federated* deployment, where a shard lives behind a
/// network and can be down. Present shards merge exactly as
/// [`merge_rankings`] merges them (the comparator never consults shard
/// count, so the merged prefix over any subset is bit-identical to the
/// monolithic ranking restricted to that subset's databases); missing
/// slots are reported so the caller can mark the response degraded
/// instead of failing it.
pub fn merge_partial_rankings(shards: &[Option<Vec<RankedDatabase>>]) -> PartialMerge {
    let missing: Vec<usize> = shards
        .iter()
        .enumerate()
        .filter(|(_, shard)| shard.is_none())
        .map(|(i, _)| i)
        .collect();
    let present: Vec<Vec<RankedDatabase>> = shards.iter().flatten().cloned().collect();
    PartialMerge {
        ranking: merge_rankings(&present),
        missing,
    }
}

fn round_robin(inputs: &[(usize, f64, SearchOutcome)], limit: usize) -> Vec<MergedResult> {
    // Databases in descending selection-score order.
    let mut order: Vec<usize> = (0..inputs.len()).collect();
    order.sort_by(|&a, &b| {
        inputs[b]
            .1
            .partial_cmp(&inputs[a].1)
            .unwrap()
            .then(inputs[a].0.cmp(&inputs[b].0))
    });
    let mut out = Vec::with_capacity(limit);
    let mut depth = 0usize;
    loop {
        let mut any = false;
        for &i in &order {
            let (db, db_score, outcome) = &inputs[i];
            if let Some(&doc) = outcome.doc_ids.get(depth) {
                any = true;
                // Synthetic decreasing score preserves the interleaved order.
                let score = -((out.len()) as f64);
                let _ = db_score;
                out.push(MergedResult {
                    database: *db,
                    doc,
                    score,
                });
                if out.len() >= limit {
                    return out;
                }
            }
        }
        if !any {
            return out;
        }
        depth += 1;
    }
}

fn by_score(
    inputs: &[(usize, f64, SearchOutcome)],
    limit: usize,
    score_fn: impl Fn(f64, f64) -> f64,
) -> Vec<MergedResult> {
    let score_fn = &score_fn;
    let mut out: Vec<MergedResult> = inputs
        .iter()
        .flat_map(|(db, db_score, outcome)| {
            outcome
                .doc_ids
                .iter()
                .zip(&outcome.scores)
                .map(move |(&doc, &s)| MergedResult {
                    database: *db,
                    doc,
                    score: score_fn(s, *db_score),
                })
        })
        .collect();
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap()
            .then(a.database.cmp(&b.database))
            .then(a.doc.cmp(&b.doc))
    });
    out.truncate(limit);
    out
}

fn cori_weighted(inputs: &[(usize, f64, SearchOutcome)], limit: usize) -> Vec<MergedResult> {
    // Min–max normalize database scores.
    let (c_min, c_max) = min_max(inputs.iter().map(|(_, c, _)| *c));
    let c_range = (c_max - c_min).max(f64::MIN_POSITIVE);
    let mut out = Vec::new();
    for (db, c, outcome) in inputs {
        let c_norm = (c - c_min) / c_range;
        // Min–max normalize this database's document scores.
        let (d_min, d_max) = min_max(outcome.scores.iter().copied());
        let d_range = (d_max - d_min).max(f64::MIN_POSITIVE);
        for (&doc, &d) in outcome.doc_ids.iter().zip(&outcome.scores) {
            // Degenerate single-score lists normalize to 1, not 0, so a
            // lone result still carries its database's weight.
            let d_norm = if d_max == d_min {
                1.0
            } else {
                (d - d_min) / d_range
            };
            let merged = (d_norm + 0.4 * d_norm * c_norm) / 1.4;
            out.push(MergedResult {
                database: *db,
                doc,
                score: merged,
            });
        }
    }
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap()
            .then(a.database.cmp(&b.database))
            .then(a.doc.cmp(&b.doc))
    });
    out.truncate(limit);
    out
}

fn min_max(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for v in values {
        min = min.min(v);
        max = max.max(v);
    }
    if min > max {
        (0.0, 0.0)
    } else {
        (min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(docs: &[(DocId, f64)]) -> SearchOutcome {
        SearchOutcome {
            total_matches: docs.len(),
            doc_ids: docs.iter().map(|&(d, _)| d).collect(),
            scores: docs.iter().map(|&(_, s)| s).collect(),
        }
    }

    fn fixture() -> Vec<(usize, f64, SearchOutcome)> {
        vec![
            (0, 0.9, outcome(&[(10, 5.0), (11, 3.0)])),
            (1, 0.2, outcome(&[(20, 9.0), (21, 1.0)])),
        ]
    }

    #[test]
    fn round_robin_interleaves_best_database_first() {
        let merged = merge_results(&fixture(), MergeStrategy::RoundRobin, 10);
        let order: Vec<(usize, DocId)> = merged.iter().map(|m| (m.database, m.doc)).collect();
        assert_eq!(order, vec![(0, 10), (1, 20), (0, 11), (1, 21)]);
    }

    #[test]
    fn raw_score_ignores_database_scores() {
        let merged = merge_results(&fixture(), MergeStrategy::RawScore, 10);
        // Doc 20 has the highest raw score (9.0) despite its weak database.
        assert_eq!((merged[0].database, merged[0].doc), (1, 20));
    }

    #[test]
    fn cori_weighted_promotes_strong_databases() {
        let merged = merge_results(&fixture(), MergeStrategy::CoriWeighted, 10);
        // Both top docs normalize to D' = 1.0 within their databases, but
        // database 0's C' = 1.0 vs database 1's C' = 0.0 breaks the tie.
        assert_eq!((merged[0].database, merged[0].doc), (0, 10));
        assert_eq!((merged[1].database, merged[1].doc), (1, 20));
    }

    #[test]
    fn limit_truncates_output() {
        for strategy in [
            MergeStrategy::RoundRobin,
            MergeStrategy::RawScore,
            MergeStrategy::CoriWeighted,
        ] {
            let merged = merge_results(&fixture(), strategy, 3);
            assert_eq!(merged.len(), 3, "{strategy:?}");
        }
    }

    #[test]
    fn empty_inputs_yield_empty_output() {
        for strategy in [
            MergeStrategy::RoundRobin,
            MergeStrategy::RawScore,
            MergeStrategy::CoriWeighted,
        ] {
            assert!(merge_results(&[], strategy, 5).is_empty());
        }
    }

    #[test]
    fn single_database_preserves_its_order() {
        let inputs = vec![(3usize, 0.7, outcome(&[(1, 9.0), (2, 5.0), (3, 2.0)]))];
        for strategy in [
            MergeStrategy::RoundRobin,
            MergeStrategy::RawScore,
            MergeStrategy::CoriWeighted,
        ] {
            let merged = merge_results(&inputs, strategy, 10);
            let docs: Vec<DocId> = merged.iter().map(|m| m.doc).collect();
            assert_eq!(docs, vec![1, 2, 3], "{strategy:?}");
            assert!(merged.iter().all(|m| m.database == 3));
        }
    }

    #[test]
    fn merge_rankings_reconstructs_the_monolithic_sort() {
        let rank = |pairs: &[(usize, f64)]| -> Vec<RankedDatabase> {
            pairs
                .iter()
                .map(|&(index, score)| RankedDatabase { index, score })
                .collect()
        };
        // Disjoint indices, a cross-shard tie (dbs 2 and 5 at 0.7), and an
        // empty shard.
        let shards = vec![
            rank(&[(0, 0.9), (2, 0.7), (4, 0.1)]),
            rank(&[(5, 0.7), (1, 0.3)]),
            rank(&[]),
        ];
        let merged = merge_rankings(&shards);
        let mut expected: Vec<RankedDatabase> = shards.iter().flatten().copied().collect();
        expected.sort_by(ranking_order);
        assert_eq!(merged.len(), expected.len());
        for (m, e) in merged.iter().zip(&expected) {
            assert_eq!(m.index, e.index);
            assert_eq!(m.score.to_bits(), e.score.to_bits());
        }
        // The tie resolved by ascending index, not shard order.
        let tied: Vec<usize> = merged
            .iter()
            .filter(|r| r.score == 0.7)
            .map(|r| r.index)
            .collect();
        assert_eq!(tied, vec![2, 5]);
    }

    #[test]
    fn merge_rankings_handles_degenerate_shapes() {
        assert!(merge_rankings(&[]).is_empty());
        assert!(merge_rankings(&[vec![], vec![]]).is_empty());
        let single = vec![vec![
            RankedDatabase {
                index: 3,
                score: 1.5,
            },
            RankedDatabase {
                index: 0,
                score: 0.5,
            },
        ]];
        assert_eq!(merge_rankings(&single), single[0]);
    }

    #[test]
    fn partial_merge_reports_missing_shards_and_merges_the_rest() {
        let rank = |pairs: &[(usize, f64)]| -> Vec<RankedDatabase> {
            pairs
                .iter()
                .map(|&(index, score)| RankedDatabase { index, score })
                .collect()
        };
        let shards = vec![
            Some(rank(&[(0, 0.9), (4, 0.1)])),
            None,
            Some(rank(&[(2, 0.7), (1, 0.3)])),
        ];
        let merged = merge_partial_rankings(&shards);
        assert!(merged.is_degraded());
        assert_eq!(merged.missing, vec![1]);
        let order: Vec<usize> = merged.ranking.iter().map(|r| r.index).collect();
        assert_eq!(order, vec![0, 2, 1, 4]);
        // The present shards merge exactly as merge_rankings merges them.
        let present = vec![shards[0].clone().unwrap(), shards[2].clone().unwrap()];
        let direct = merge_rankings(&present);
        for (m, d) in merged.ranking.iter().zip(&direct) {
            assert_eq!(m.index, d.index);
            assert_eq!(m.score.to_bits(), d.score.to_bits());
        }
    }

    #[test]
    fn partial_merge_degenerate_shapes() {
        let full = merge_partial_rankings(&[Some(vec![]), Some(vec![])]);
        assert!(!full.is_degraded());
        assert!(full.ranking.is_empty());

        let all_down = merge_partial_rankings(&[None, None, None]);
        assert_eq!(all_down.missing, vec![0, 1, 2]);
        assert!(all_down.ranking.is_empty());

        assert!(!merge_partial_rankings(&[]).is_degraded());
    }

    #[test]
    fn cori_weighted_scores_are_in_unit_range() {
        let merged = merge_results(&fixture(), MergeStrategy::CoriWeighted, 10);
        for m in &merged {
            assert!((0.0..=1.0 + 1e-12).contains(&m.score), "score {}", m.score);
        }
    }
}
