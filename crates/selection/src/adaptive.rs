//! Adaptive shrinkage-based database selection — the algorithm of Figure 3.
//!
//! For each query and database the selector first decides *which* content
//! summary to trust:
//!
//! 1. **Content Summary Selection** — estimate the distribution of the
//!    score the base algorithm would assign under the posterior over true
//!    word frequencies (Section 4, Appendix B, implemented in
//!    [`dbselect_core::uncertainty`]). If the standard deviation of that
//!    distribution exceeds its mean, the sample-based summary is unreliable
//!    → use the shrunk summary `R̂(D)`; otherwise keep `Ŝ(D)`.
//! 2. **Scoring** — score every database with its chosen summary.
//! 3. **Ranking** — order databases by score (databases at their default
//!    score are not selected).

use rand::Rng;

use dbselect_core::shrinkage::ShrunkSummary;
use dbselect_core::summary::{ContentSummary, SummaryView};
use dbselect_core::uncertainty::{
    product_score_distribution, score_distribution, UncertaintyConfig, WordPosterior,
};
use textindex::TermId;

use crate::context::{rank_databases, CollectionContext, RankedDatabase, SelectionAlgorithm};

/// When to use the shrunk summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShrinkageMode {
    /// The paper's method: per (query, database) uncertainty test.
    #[default]
    Adaptive,
    /// Always use the shrunk summaries (the "universal" ablation of
    /// Section 6.2 — helps bGlOSS, hurts CORI and LM).
    Always,
    /// Never use shrinkage (the "Plain" baselines).
    Never,
}

/// Configuration of the adaptive selector.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdaptiveConfig {
    /// Shrinkage application policy.
    pub mode: ShrinkageMode,
    /// Monte-Carlo parameters for the uncertainty estimation.
    pub uncertainty: UncertaintyConfig,
    /// Use exact closed-form moments for product-form scores (the
    /// Section-4 independence shortcut) instead of Monte-Carlo sampling.
    /// Off by default so results match the recorded experiment outputs;
    /// turning it on makes the test deterministic and much faster with
    /// statistically equivalent decisions.
    pub exact_moments: bool,
}

/// The two summaries of one database the selector chooses between.
#[derive(Clone, Copy)]
pub struct SummaryPair<'a> {
    /// The sample-derived summary `Ŝ(D)`.
    pub unshrunk: &'a ContentSummary,
    /// The shrinkage-based summary `R̂(D)`.
    pub shrunk: &'a ShrunkSummary,
}

/// Outcome of one adaptive ranking.
pub struct AdaptiveOutcome {
    /// The final database ranking.
    pub ranking: Vec<RankedDatabase>,
    /// Per database: whether the shrunk summary was used.
    pub used_shrinkage: Vec<bool>,
}

/// Rank databases for `query` with adaptive shrinkage (Figure 3).
pub fn adaptive_rank<R: Rng + ?Sized>(
    algorithm: &dyn SelectionAlgorithm,
    query: &[TermId],
    databases: &[SummaryPair<'_>],
    config: &AdaptiveConfig,
    rng: &mut R,
) -> AdaptiveOutcome {
    // Content Summary Selection step.
    let used_shrinkage: Vec<bool> = match config.mode {
        ShrinkageMode::Always => vec![true; databases.len()],
        ShrinkageMode::Never => vec![false; databases.len()],
        ShrinkageMode::Adaptive => {
            // The uncertainty test scores against the *unshrunk* context:
            // it asks how trustworthy the sample-based score is.
            let unshrunk_views: Vec<&dyn SummaryView> = databases
                .iter()
                .map(|d| d.unshrunk as &dyn SummaryView)
                .collect();
            let ctx = CollectionContext::build(query, &unshrunk_views);
            databases
                .iter()
                .map(|pair| score_is_uncertain(algorithm, query, pair.unshrunk, &ctx, config, rng))
                .collect()
        }
    };

    // Scoring + Ranking steps, over the per-database chosen summaries.
    let chosen_views: Vec<&dyn SummaryView> = databases
        .iter()
        .zip(&used_shrinkage)
        .map(|(pair, &shrunk)| {
            if shrunk {
                pair.shrunk as &dyn SummaryView
            } else {
                pair.unshrunk as &dyn SummaryView
            }
        })
        .collect();
    let ranking = rank_databases(algorithm, query, &chosen_views);
    AdaptiveOutcome {
        ranking,
        used_shrinkage,
    }
}

/// The Content Summary Selection test for one database: estimate the score
/// distribution over plausible true word frequencies and compare standard
/// deviation with mean.
pub fn score_is_uncertain<R: Rng + ?Sized>(
    algorithm: &dyn SelectionAlgorithm,
    query: &[TermId],
    summary: &ContentSummary,
    ctx: &CollectionContext,
    config: &AdaptiveConfig,
    rng: &mut R,
) -> bool {
    if query.is_empty() {
        return false;
    }
    let db_size = summary.db_size();
    let sample_size = summary.sample_size();
    // γ from the Appendix-A fit when available; a generic Zipf-like
    // exponent otherwise.
    let gamma = summary.gamma().unwrap_or(-2.0);
    let posteriors: Vec<WordPosterior> = query
        .iter()
        .map(|&w| {
            let sample_df = summary.word(w).map_or(0, |s| s.sample_df);
            WordPosterior::new(
                sample_df,
                sample_size,
                db_size,
                gamma,
                config.uncertainty.grid_points,
            )
        })
        .collect();
    score_is_uncertain_with_posteriors(algorithm, query, summary, &posteriors, ctx, config, rng)
}

/// [`score_is_uncertain`] with the word posteriors supplied by the caller.
///
/// The posterior grid of a word depends only on `(sample_df, |S|, |D̂|, γ,
/// grid_points)` — all properties of the (database, word) pair, none of the
/// query — so a serving layer can build each grid once and reuse it across
/// queries. Accepts any [`std::borrow::Borrow`]`<WordPosterior>` (owned
/// grids, cached `Arc`s); given the same grids, the decision is
/// bit-identical to [`score_is_uncertain`].
pub fn score_is_uncertain_with_posteriors<R, P>(
    algorithm: &dyn SelectionAlgorithm,
    query: &[TermId],
    summary: &dyn SummaryView,
    posteriors: &[P],
    ctx: &CollectionContext,
    config: &AdaptiveConfig,
    rng: &mut R,
) -> bool
where
    R: Rng + ?Sized,
    P: std::borrow::Borrow<WordPosterior>,
{
    if query.is_empty() {
        return false;
    }
    let db_size = summary.db_size();
    // Measure the distribution of the *evidence* the score carries above
    // the default (empty-query) score. For bGlOSS the default is 0 and this
    // is exactly the paper's test; for CORI and LM the default-belief floor
    // (0.4, resp. the global-model product) would otherwise dominate the
    // mean and make `std > mean` unreachable, contradicting the non-zero
    // application rates of the paper's Table 10.
    let default = algorithm.default_score(query, summary, ctx);
    let dist = match (
        config.exact_moments,
        algorithm.product_form(query, summary, ctx),
    ) {
        (true, Some((scale, coefficients))) => {
            // Exact independence shortcut: subtracting the constant default
            // shifts the mean and leaves the variance untouched.
            let mut d = product_score_distribution(posteriors, db_size, scale, &coefficients);
            d.mean -= default;
            d
        }
        _ => score_distribution(
            posteriors,
            db_size,
            |p| algorithm.score_with_df_fractions(query, p, summary, ctx) - default,
            rng,
            &config.uncertainty,
        ),
    };
    algorithm.score_is_uncertain(dist.mean, dist.std_dev, query.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bgloss::BGloss;
    use dbselect_core::category_summary::SummaryComponent;
    use dbselect_core::shrinkage::{shrink, ShrinkageConfig};
    use dbselect_core::summary::WordStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(77)
    }

    /// A sample-based summary: `present` terms occur in half the sample.
    fn sampled_summary(db_size: f64, sample_size: u32, present: &[TermId]) -> ContentSummary {
        let mut words = HashMap::new();
        for &t in present {
            let sample_df = sample_size / 2;
            let df = f64::from(sample_df) / f64::from(sample_size) * db_size;
            words.insert(
                t,
                WordStats {
                    sample_df,
                    df,
                    tf: df * 2.0,
                },
            );
        }
        ContentSummary::new(db_size, sample_size, words)
    }

    fn shrunk_for(summary: &ContentSummary, extra: &[(TermId, f64)]) -> ShrunkSummary {
        let comp = SummaryComponent {
            p_df: extra.iter().copied().collect(),
            p_tf: extra.iter().copied().collect(),
        };
        shrink(
            summary,
            &[std::sync::Arc::new(comp)],
            &ShrinkageConfig::default(),
        )
    }

    #[test]
    fn always_and_never_modes_force_the_choice() {
        let s = sampled_summary(1000.0, 100, &[1]);
        let r = shrunk_for(&s, &[(1, 0.3)]);
        let dbs = [SummaryPair {
            unshrunk: &s,
            shrunk: &r,
        }];
        for (mode, expected) in [(ShrinkageMode::Always, true), (ShrinkageMode::Never, false)] {
            let config = AdaptiveConfig {
                mode,
                ..Default::default()
            };
            let out = adaptive_rank(&BGloss, &[1], &dbs, &config, &mut rng());
            assert_eq!(out.used_shrinkage, vec![expected]);
        }
    }

    #[test]
    fn missing_rare_word_triggers_shrinkage_for_bgloss() {
        // Query word 42 absent from the sample of a big database: bGlOSS's
        // product score is wildly uncertain → shrink.
        let s = sampled_summary(100_000.0, 300, &[1]);
        let r = shrunk_for(&s, &[(42, 0.01)]);
        let dbs = [SummaryPair {
            unshrunk: &s,
            shrunk: &r,
        }];
        let config = AdaptiveConfig::default();
        let out = adaptive_rank(&BGloss, &[1, 42], &dbs, &config, &mut rng());
        assert_eq!(out.used_shrinkage, vec![true]);
        // And thanks to shrinkage the database is actually selected.
        assert_eq!(out.ranking.len(), 1);
    }

    #[test]
    fn well_sampled_small_database_keeps_unshrunk_summary() {
        // Sample of 300 from a database of 320: nearly complete → the
        // sample-based score is trustworthy.
        let s = sampled_summary(320.0, 300, &[1, 2]);
        let r = shrunk_for(&s, &[(1, 0.2)]);
        let dbs = [SummaryPair {
            unshrunk: &s,
            shrunk: &r,
        }];
        let config = AdaptiveConfig::default();
        let out = adaptive_rank(&BGloss, &[1, 2], &dbs, &config, &mut rng());
        assert_eq!(out.used_shrinkage, vec![false]);
    }

    #[test]
    fn never_mode_reproduces_plain_ranking() {
        let s1 = sampled_summary(1000.0, 100, &[1]);
        let s2 = sampled_summary(1000.0, 100, &[]);
        let r1 = shrunk_for(&s1, &[(1, 0.1)]);
        let r2 = shrunk_for(&s2, &[(1, 0.1)]);
        let dbs = [
            SummaryPair {
                unshrunk: &s1,
                shrunk: &r1,
            },
            SummaryPair {
                unshrunk: &s2,
                shrunk: &r2,
            },
        ];
        let config = AdaptiveConfig {
            mode: ShrinkageMode::Never,
            ..Default::default()
        };
        let out = adaptive_rank(&BGloss, &[1], &dbs, &config, &mut rng());
        assert_eq!(
            out.ranking.len(),
            1,
            "db without the word is at default score"
        );
        assert_eq!(out.ranking[0].index, 0);
    }

    #[test]
    fn always_mode_recovers_databases_missing_query_words() {
        let s1 = sampled_summary(1000.0, 100, &[1]);
        let s2 = sampled_summary(1000.0, 100, &[]);
        let r1 = shrunk_for(&s1, &[(1, 0.1)]);
        let r2 = shrunk_for(&s2, &[(1, 0.1)]);
        let dbs = [
            SummaryPair {
                unshrunk: &s1,
                shrunk: &r1,
            },
            SummaryPair {
                unshrunk: &s2,
                shrunk: &r2,
            },
        ];
        let config = AdaptiveConfig {
            mode: ShrinkageMode::Always,
            ..Default::default()
        };
        let out = adaptive_rank(&BGloss, &[1], &dbs, &config, &mut rng());
        assert_eq!(
            out.ranking.len(),
            2,
            "shrinkage gives db 2 a non-zero score"
        );
        assert_eq!(out.ranking[0].index, 0, "direct evidence still wins");
    }

    #[test]
    fn short_unambiguous_queries_apply_less_shrinkage_than_long_ones() {
        // Matches the Table-10 observation: longer queries touch more
        // poorly-sampled words, triggering shrinkage more often.
        let s = sampled_summary(50_000.0, 300, &[1, 2]);
        let r = shrunk_for(&s, &[(1, 0.2)]);
        let ctx = CollectionContext::build(&[1], &[&s as &dyn SummaryView]);
        let config = AdaptiveConfig::default();
        let short = score_is_uncertain(&BGloss, &[1], &s, &ctx, &config, &mut rng());
        let long_query: Vec<TermId> = vec![1, 2, 60, 61, 62, 63];
        let ctx_long = CollectionContext::build(&long_query, &[&s as &dyn SummaryView]);
        let long = score_is_uncertain(&BGloss, &long_query, &s, &ctx_long, &config, &mut rng());
        let _ = r;
        assert!(!short, "well-sampled single word is certain");
        assert!(long, "many unseen words make the score uncertain");
    }
}

#[cfg(test)]
mod exact_moment_tests {
    use super::*;
    use crate::bgloss::BGloss;
    use dbselect_core::summary::WordStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn sampled(db_size: f64, present: &[(TermId, u32)]) -> ContentSummary {
        let words: HashMap<TermId, WordStats> = present
            .iter()
            .map(|&(t, sdf)| {
                let df = f64::from(sdf) / 300.0 * db_size;
                (
                    t,
                    WordStats {
                        sample_df: sdf,
                        df,
                        tf: df * 1.5,
                    },
                )
            })
            .collect();
        ContentSummary::new(db_size, 300, words)
    }

    /// Exact-moment and Monte-Carlo decisions agree on clear-cut cases.
    #[test]
    fn exact_and_monte_carlo_decisions_agree() {
        let cases = [
            // (db_size, sample words, query, expected uncertain)
            (320.0, vec![(1u32, 150u32), (2, 140)], vec![1u32, 2]),
            (100_000.0, vec![(1, 150)], vec![1, 42]),
            (50_000.0, vec![(1, 290), (2, 280)], vec![1, 2]),
        ];
        for (db_size, words, query) in cases {
            let s = sampled(db_size, &words);
            let ctx = CollectionContext::build(&query, &[&s as &dyn SummaryView]);
            let mut rng = StdRng::seed_from_u64(123);
            let mc_config = AdaptiveConfig::default();
            let mc = score_is_uncertain(&BGloss, &query, &s, &ctx, &mc_config, &mut rng);
            let exact_config = AdaptiveConfig {
                exact_moments: true,
                ..Default::default()
            };
            let exact = score_is_uncertain(&BGloss, &query, &s, &ctx, &exact_config, &mut rng);
            assert_eq!(mc, exact, "db_size {db_size}, query {query:?}");
        }
    }

    /// The exact path is deterministic without consuming the RNG.
    #[test]
    fn exact_path_ignores_rng_state() {
        let s = sampled(10_000.0, &[(1, 3)]);
        let ctx = CollectionContext::build(&[1, 9], &[&s as &dyn SummaryView]);
        let config = AdaptiveConfig {
            exact_moments: true,
            ..Default::default()
        };
        let a = score_is_uncertain(
            &BGloss,
            &[1, 9],
            &s,
            &ctx,
            &config,
            &mut StdRng::seed_from_u64(1),
        );
        let b = score_is_uncertain(
            &BGloss,
            &[1, 9],
            &s,
            &ctx,
            &config,
            &mut StdRng::seed_from_u64(999),
        );
        assert_eq!(a, b);
    }
}
