//! The language-modelling (LM) database selection algorithm (Si, Jin,
//! Callan & Ogilvie, CIKM 2002), as specified in Section 5.3:
//!
//! ```text
//! s(q, D) = Π_{w ∈ q} ( λ·p̂(w|D) + (1 − λ)·p̂(w|G) )
//! ```
//!
//! where `p(w|D) = tf(w,D) / Σ tf` (term-frequency based, unlike
//! Definition 1) and `G` is a "global" category — the Root category summary
//! in the paper's experiments, with `λ = 0.5`. LM is equivalent to the
//! KL-divergence based selection of Xu & Croft. Its built-in linear
//! smoothing already covers missing words, which is why the paper finds it
//! benefits from shrinkage more selectively than bGlOSS.

use std::collections::HashMap;

use dbselect_core::summary::{ContentSummary, SummaryView};
use textindex::TermId;

use crate::context::{CollectionContext, SelectionAlgorithm};

/// The LM scorer, carrying the global ("Root") language model.
#[derive(Debug, Clone)]
pub struct Lm {
    /// Interpolation weight of the database model (0.5 in the paper).
    pub lambda: f64,
    global: HashMap<TermId, f64>,
}

impl Lm {
    /// Build from the Root category summary (or any summary standing in for
    /// the global language model `G`).
    pub fn new(lambda: f64, global_summary: &ContentSummary) -> Self {
        let global = global_summary
            .iter()
            .map(|(t, _)| (t, global_summary.p_tf(t)))
            .collect();
        Lm { lambda, global }
    }

    /// Build with an explicit global model (mostly for tests).
    pub fn from_global_map(lambda: f64, global: HashMap<TermId, f64>) -> Self {
        Lm { lambda, global }
    }

    /// `p̂(w|G)`.
    pub fn global_p(&self, word: TermId) -> f64 {
        self.global.get(&word).copied().unwrap_or(0.0)
    }

    /// The per-word conversion from document-frequency fractions to LM's
    /// token-probability space (see `score_with_df_fractions`).
    fn df_to_tf_ratio(&self, summary: &dyn SummaryView, word: TermId, fallback: f64) -> f64 {
        let observed_df = summary.p_df(word);
        if observed_df > 0.0 && summary.p_tf(word) > 0.0 {
            summary.p_tf(word) / observed_df
        } else {
            fallback
        }
    }
}

impl SelectionAlgorithm for Lm {
    fn name(&self) -> &'static str {
        "LM"
    }

    /// LM reads the term-frequency based probability.
    fn word_probability(&self, summary: &dyn SummaryView, word: TermId) -> f64 {
        summary.p_tf(word)
    }

    fn score_with_p(
        &self,
        query: &[TermId],
        p: &[f64],
        _summary: &dyn SummaryView,
        _ctx: &CollectionContext,
    ) -> f64 {
        if query.is_empty() {
            return 0.0;
        }
        query
            .iter()
            .zip(p)
            .map(|(&w, &pw)| self.lambda * pw + (1.0 - self.lambda) * self.global_p(w))
            .product()
    }

    /// The uncertainty machinery substitutes *document*-frequency fractions
    /// `d_k/|D|`, but LM probabilities live in token space (`tf / Σtf`,
    /// roughly two orders of magnitude smaller). Convert with the summary's
    /// own per-word `p_tf/p_df` ratio, falling back to `1/avg_doc_len`
    /// (i.e. assuming one occurrence per containing document) for words the
    /// summary lacks.
    fn score_with_df_fractions(
        &self,
        query: &[TermId],
        p_df: &[f64],
        summary: &dyn SummaryView,
        ctx: &CollectionContext,
    ) -> f64 {
        let fallback = if summary.word_count() > 0.0 {
            summary.db_size() / summary.word_count()
        } else {
            1.0
        };
        let converted: Vec<f64> = query
            .iter()
            .zip(p_df)
            .map(|(&w, &pdf)| (pdf * self.df_to_tf_ratio(summary, w, fallback)).min(1.0))
            .collect();
        self.score_with_p(query, &converted, summary, ctx)
    }

    /// LM is an affine product over the word probabilities:
    /// `Π (λ·ratio_k·p_k + (1−λ)·p̂(w_k|G))`.
    fn product_form(
        &self,
        query: &[TermId],
        summary: &dyn SummaryView,
        _ctx: &CollectionContext,
    ) -> Option<(f64, Vec<(f64, f64)>)> {
        let fallback = if summary.word_count() > 0.0 {
            summary.db_size() / summary.word_count()
        } else {
            1.0
        };
        let coefficients = query
            .iter()
            .map(|&w| {
                let a = self.lambda * self.df_to_tf_ratio(summary, w, fallback);
                let b = (1.0 - self.lambda) * self.global_p(w);
                (a, b)
            })
            .collect();
        Some((1.0, coefficients))
    }

    /// LM has a batch kernel (see [`crate::topk`]), unlocking the pruned
    /// top-k serving path.
    fn score_kernel(&self) -> Option<&dyn crate::topk::ScoreKernel> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::rank_databases;
    use crate::context::test_support::summary;

    fn lm() -> Lm {
        Lm::from_global_map(0.5, HashMap::from([(1, 0.01), (2, 0.001), (99, 0.0001)]))
    }

    #[test]
    fn smoothing_keeps_score_positive_for_missing_words() {
        let s = summary(1000.0, &[(1, 100.0)]);
        let views: Vec<&dyn SummaryView> = vec![&s];
        let ctx = CollectionContext::build(&[1, 99], &views);
        let score = lm().score_db(&[1, 99], &s, &ctx);
        assert!(score > 0.0, "global model smooths the missing word");
    }

    #[test]
    fn default_score_is_global_only_product() {
        let s = summary(1000.0, &[]);
        let views: Vec<&dyn SummaryView> = vec![&s];
        let ctx = CollectionContext::build(&[1, 2], &views);
        let d = lm().default_score(&[1, 2], &s, &ctx);
        assert!((d - 0.5 * 0.01 * 0.5 * 0.001).abs() < 1e-15);
    }

    #[test]
    fn database_evidence_beats_default() {
        let with_word = summary(1000.0, &[(1, 200.0)]);
        let without = summary(1000.0, &[]);
        let views: Vec<&dyn SummaryView> = vec![&without, &with_word];
        let ranking = rank_databases(&lm(), &[1], &views);
        // The database lacking the word sits at default score → dropped.
        assert_eq!(ranking.len(), 1);
        assert_eq!(ranking[0].index, 1);
    }

    #[test]
    fn uses_tf_based_probability() {
        let s = summary(1000.0, &[(1, 100.0), (2, 300.0)]);
        // test_support sets tf = 2·df → p_tf(1) = 200/800.
        assert!((lm().word_probability(&s, 1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_query_scores_zero() {
        let s = summary(1000.0, &[(1, 100.0)]);
        let views: Vec<&dyn SummaryView> = vec![&s];
        let ctx = CollectionContext::build(&[], &views);
        assert_eq!(lm().score_db(&[], &s, &ctx), 0.0);
    }
}
