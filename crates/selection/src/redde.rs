//! The ReDDE database selection algorithm (Si & Callan, SIGIR 2003) —
//! *"Relevant Document Distribution Estimation"*.
//!
//! The paper's footnote 9 leaves this as future work: *"Experiments using
//! shrinkage together with ReDDE, a promising, recently proposed database
//! selection algorithm, remain as interesting future work."* This module
//! provides that extension.
//!
//! ReDDE works differently from summary-based scorers: it pools every
//! database's *document sample* into one centralized sample index, runs the
//! query against it, and treats each retrieved sample document as a proxy
//! for `|D̂| / |S_D|` documents of its source database (its "weight"). The
//! estimated number of relevant documents in `D` is the summed weight of
//! `D`'s documents among the top-ranked sample documents:
//!
//! ```text
//! rel(q, D) ∝ Σ_{d ∈ S_D ∩ topRanked(q)} |D̂| / |S_D|
//! ```
//!
//! where `topRanked(q)` is the prefix of the centralized ranking whose
//! cumulative weight reaches `ratio · Σ|D̂|` (Si & Callan's
//! `ratio` ≈ 0.003–0.005 of the collection).
//!
//! Because ReDDE consumes raw samples rather than content summaries, it
//! composes with shrinkage differently: shrinkage cannot add *documents*,
//! but the adaptive machinery still applies through the summary-based
//! scoring interface (`SelectionAlgorithm`), which this type implements by
//! falling back to a bGlOSS-style expected-match estimate for hypothetical
//! word frequencies.

use textindex::{Document, InvertedIndex, SearchEngine, TermId};

use dbselect_core::summary::SummaryView;

use crate::context::{CollectionContext, RankedDatabase, SelectionAlgorithm};

/// Configuration for ReDDE.
#[derive(Debug, Clone, Copy)]
pub struct ReddeConfig {
    /// Fraction of the (estimated) total collection that counts as
    /// "top-ranked" when accumulating sample-document weights.
    pub ratio: f64,
    /// Cap on centralized-index results examined per query.
    pub max_results: usize,
}

impl Default for ReddeConfig {
    fn default() -> Self {
        ReddeConfig {
            ratio: 0.003,
            max_results: 2000,
        }
    }
}

/// The centralized sample index plus per-database bookkeeping.
pub struct Redde {
    index: InvertedIndex,
    /// For each centralized document: its source database.
    doc_db: Vec<usize>,
    /// Per database: `|D̂| / |S_D|` — how many real documents one sample
    /// document stands for.
    doc_weight: Vec<f64>,
    /// Estimated total collection size `Σ |D̂|`.
    total_size: f64,
    config: ReddeConfig,
    num_databases: usize,
}

impl Redde {
    /// Build the centralized sample index.
    ///
    /// `samples[i]` are the documents sampled from database `i`, and
    /// `db_sizes[i]` its estimated size `|D̂|`.
    pub fn build(samples: &[Vec<Document>], db_sizes: &[f64], config: ReddeConfig) -> Self {
        assert_eq!(samples.len(), db_sizes.len());
        let mut central: Vec<Document> = Vec::new();
        let mut doc_db = Vec::new();
        let mut doc_weight = Vec::new();
        for (db, docs) in samples.iter().enumerate() {
            let weight = if docs.is_empty() {
                0.0
            } else {
                db_sizes[db] / docs.len() as f64
            };
            for doc in docs {
                let id = central.len() as u32;
                central.push(Document::from_tokens(id, doc.tokens.clone()));
                doc_db.push(db);
                doc_weight.push(weight);
            }
        }
        let index = InvertedIndex::build(&central);
        Redde {
            index,
            doc_db,
            doc_weight,
            total_size: db_sizes.iter().sum(),
            config,
            num_databases: samples.len(),
        }
    }

    /// Number of documents in the centralized sample index.
    pub fn central_size(&self) -> usize {
        self.doc_db.len()
    }

    /// Rank databases for `query` by estimated relevant-document count.
    /// Databases with zero estimated relevant documents are not selected.
    pub fn rank(&self, query: &[TermId]) -> Vec<RankedDatabase> {
        let engine = SearchEngine::new(&self.index);
        // Disjunctive retrieval: score each sample document by tf·idf over
        // the query words it contains (ReDDE uses a centralized retrieval
        // run; conjunctive matching would be far too strict for long
        // queries).
        let ranked_docs = self.disjunctive_top_docs(&engine, query);
        // Accumulate weights until the cumulative estimated document count
        // reaches ratio · total collection size.
        let budget = self.config.ratio * self.total_size;
        let mut cumulative = 0.0;
        let mut rel = vec![0.0f64; self.num_databases];
        for doc in ranked_docs {
            let w = self.doc_weight[doc as usize];
            rel[self.doc_db[doc as usize]] += w;
            cumulative += w;
            if cumulative >= budget {
                break;
            }
        }
        let mut ranking: Vec<RankedDatabase> = rel
            .into_iter()
            .enumerate()
            .filter(|&(_, score)| score > 0.0)
            .map(|(index, score)| RankedDatabase { index, score })
            .collect();
        ranking.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap()
                .then(a.index.cmp(&b.index))
        });
        ranking
    }

    fn disjunctive_top_docs(&self, engine: &SearchEngine<'_>, query: &[TermId]) -> Vec<u32> {
        let n = self.index.num_docs() as f64;
        let mut scores: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
        for &term in query {
            let Some(list) = engine.index().posting_list(term) else {
                continue;
            };
            let idf = (1.0 + n / list.document_frequency() as f64).ln();
            for &(doc, tf) in &list.postings {
                *scores.entry(doc).or_insert(0.0) += f64::from(tf) * idf;
            }
        }
        let mut ranked: Vec<(u32, f64)> = scores.into_iter().collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        ranked.truncate(self.config.max_results);
        ranked.into_iter().map(|(d, _)| d).collect()
    }
}

impl SelectionAlgorithm for Redde {
    fn name(&self) -> &'static str {
        "ReDDE"
    }

    /// Summary-based fallback used only by the adaptive uncertainty test:
    /// the expected number of documents containing all query words
    /// (bGlOSS-style), which tracks what ReDDE estimates from samples.
    fn score_with_p(
        &self,
        _query: &[TermId],
        p: &[f64],
        summary: &dyn SummaryView,
        _ctx: &CollectionContext,
    ) -> f64 {
        if p.is_empty() {
            return 0.0;
        }
        summary.db_size() * p.iter().product::<f64>()
    }

    fn default_score(
        &self,
        _query: &[TermId],
        _summary: &dyn SummaryView,
        _ctx: &CollectionContext,
    ) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(id: u32, terms: &[TermId]) -> Document {
        Document::from_tokens(id, terms.to_vec())
    }

    /// Three databases: db 0's sample is rich in term 7, db 1 has a little,
    /// db 2 none.
    fn fixture() -> Redde {
        let samples = vec![
            vec![doc(0, &[7, 7, 1]), doc(1, &[7, 2]), doc(2, &[1, 2])],
            vec![doc(0, &[7, 1]), doc(1, &[3, 4]), doc(2, &[3])],
            vec![doc(0, &[5, 6]), doc(1, &[5])],
        ];
        let sizes = vec![3000.0, 3000.0, 3000.0];
        // ratio 1.0: with three-document samples every retrieved document
        // fits the budget (the default 0.003 is tuned for 300-doc samples).
        Redde::build(
            &samples,
            &sizes,
            ReddeConfig {
                ratio: 1.0,
                ..Default::default()
            },
        )
    }

    #[test]
    fn central_index_pools_all_samples() {
        let redde = fixture();
        assert_eq!(redde.central_size(), 8);
    }

    #[test]
    fn ranks_by_estimated_relevant_documents() {
        let redde = fixture();
        let ranking = redde.rank(&[7]);
        assert_eq!(ranking[0].index, 0, "db 0 has the most term-7 sample docs");
        assert_eq!(ranking.len(), 2, "db 2 has no term-7 docs at all");
        assert!(ranking[0].score > ranking[1].score);
    }

    #[test]
    fn bigger_databases_get_bigger_estimates() {
        let samples = vec![
            vec![doc(0, &[7]), doc(1, &[1])],
            vec![doc(0, &[7]), doc(1, &[1])],
        ];
        // Same samples, but db 1 is 10× larger: each of its sample docs
        // stands for 10× more documents.
        let redde = Redde::build(
            &samples,
            &[100.0, 1000.0],
            ReddeConfig {
                ratio: 1.0,
                ..Default::default()
            },
        );
        let ranking = redde.rank(&[7]);
        assert_eq!(ranking[0].index, 1);
        assert!((ranking[0].score / ranking[1].score - 10.0).abs() < 1e-9);
    }

    #[test]
    fn no_match_means_no_selection() {
        let redde = fixture();
        assert!(redde.rank(&[99]).is_empty());
    }

    #[test]
    fn empty_samples_are_harmless() {
        let redde = Redde::build(
            &[vec![], vec![doc(0, &[1])]],
            &[100.0, 100.0],
            ReddeConfig::default(),
        );
        let ranking = redde.rank(&[1]);
        assert_eq!(ranking.len(), 1);
        assert_eq!(ranking[0].index, 1);
    }

    #[test]
    fn ratio_budget_limits_accumulation() {
        // With a tiny ratio, only the very top documents count.
        let samples = vec![
            vec![doc(0, &[7, 7, 7, 7]), doc(1, &[1])], // strongest match
            vec![doc(0, &[7]), doc(1, &[1])],
        ];
        let config = ReddeConfig {
            ratio: 0.0004,
            max_results: 100,
        };
        let redde = Redde::build(&samples, &[5000.0, 5000.0], config);
        let ranking = redde.rank(&[7]);
        // Budget = 0.0004 · 10000 = 4 docs < one sample doc's weight (2500),
        // so exactly one document is counted — the strongest.
        assert_eq!(ranking.len(), 1);
        assert_eq!(ranking[0].index, 0);
    }
}
