//! The scoring interface shared by all database selection algorithms, plus
//! the collection-level statistics (CORI's `cf`, `mcw`) and the common
//! ranking routine.

use dbselect_core::summary::SummaryView;
use textindex::TermId;

/// Collection-level statistics a selection algorithm may need.
#[derive(Debug, Clone)]
pub struct CollectionContext {
    /// Number of databases being ranked (`m` in CORI).
    pub m: usize,
    /// `cf[k]` is the number of databases that "effectively" contain the
    /// `k`-th query word — dense, indexed by query position rather than
    /// keyed by term, so the scoring hot loop does no hashing. Following
    /// Section 5.3, a word counts as present in `D` only when
    /// `round(|D̂|·p̂(w|D)) ≥ 1` — crucial under shrinkage, where every word
    /// has non-zero probability everywhere. Duplicate query words get equal
    /// entries.
    pub cf: Vec<u32>,
    /// Mean database word count (`mcw` in CORI).
    pub mcw: f64,
}

impl CollectionContext {
    /// Compute the context for `query` over the summary views actually
    /// chosen for scoring.
    pub fn build(query: &[TermId], views: &[&dyn SummaryView]) -> Self {
        let mut cf = vec![0u32; query.len()];
        for view in views {
            for (count, &w) in cf.iter_mut().zip(query) {
                if view.effectively_contains(w) {
                    *count += 1;
                }
            }
        }
        let mcw = if views.is_empty() {
            0.0
        } else {
            views.iter().map(|v| v.word_count()).sum::<f64>() / views.len() as f64
        };
        CollectionContext {
            m: views.len(),
            cf,
            mcw,
        }
    }
}

/// A "base" database selection algorithm (Section 5.3): given a query and a
/// database's content summary, produce a relevance score.
pub trait SelectionAlgorithm {
    /// Short display name ("bGlOSS", "CORI", "LM").
    fn name(&self) -> &'static str;

    /// The word probability this algorithm reads from a summary:
    /// document-frequency based by default, term-frequency based for LM.
    fn word_probability(&self, summary: &dyn SummaryView, word: TermId) -> f64 {
        summary.p_df(word)
    }

    /// Score a database assuming `p[k]` is the probability of query word
    /// `k`, expressed in the algorithm's *native* probability space (see
    /// [`Self::word_probability`]).
    fn score_with_p(
        &self,
        query: &[TermId],
        p: &[f64],
        summary: &dyn SummaryView,
        ctx: &CollectionContext,
    ) -> f64;

    /// Score a database assuming query word `k` appears in a `p_df[k]`
    /// fraction of its documents. This is the entry point for the
    /// score-uncertainty machinery (Section 4), which substitutes
    /// hypothetical `d_k/|D|` values — *document*-frequency fractions.
    /// Algorithms whose native probabilities live in a different space
    /// (LM's token probabilities) override this to convert first.
    fn score_with_df_fractions(
        &self,
        query: &[TermId],
        p_df: &[f64],
        summary: &dyn SummaryView,
        ctx: &CollectionContext,
    ) -> f64 {
        self.score_with_p(query, p_df, summary, ctx)
    }

    /// Score a database from its content summary.
    fn score_db(
        &self,
        query: &[TermId],
        summary: &dyn SummaryView,
        ctx: &CollectionContext,
    ) -> f64 {
        let p: Vec<f64> = query
            .iter()
            .map(|&w| self.word_probability(summary, w))
            .collect();
        self.score_with_p(query, &p, summary, ctx)
    }

    /// The adaptive-shrinkage decision (Section 4): given the mean and
    /// standard deviation of the score distribution over plausible word
    /// frequencies, should the shrunk summary be used?
    ///
    /// The default is the paper's literal `std > mean`, which reproduces
    /// Table 10's regime for product-form scores with a zero default
    /// (bGlOSS). The smoothed algorithms override this with a
    /// **query-length-normalized** coefficient of variation — a product of
    /// `n` independent factors has `CV² ≈ Π(1+cv_w²) − 1` and a mean of `n`
    /// terms has `CV ≈ cv_w/√n`, so a fixed threshold on the raw CV would
    /// fire almost always for long queries (products) or almost never for
    /// short ones (sums), contradicting the roughly length-stable rates of
    /// the paper's Table 10. See DESIGN.md §6.
    fn score_is_uncertain(&self, mean: f64, std_dev: f64, query_len: usize) -> bool {
        let _ = query_len;
        std_dev > mean
    }

    /// If this algorithm's score is a *product form*
    /// `scale · Π_k (a_k·p_k + b_k)` over independent per-word document
    /// frequency fractions, return `(scale, [(a_k, b_k)])` so the adaptive
    /// test can use exact moments instead of Monte-Carlo sampling (the
    /// Section-4 independence shortcut). `None` for sum-form scores.
    fn product_form(
        &self,
        query: &[TermId],
        summary: &dyn SummaryView,
        ctx: &CollectionContext,
    ) -> Option<(f64, Vec<(f64, f64)>)> {
        let _ = (query, summary, ctx);
        None
    }

    /// The *default score*: what the database would get if it matched no
    /// query word at all (equivalently, the score of an empty query).
    /// Databases at their default score are considered "not selected"
    /// (Section 6.2's Rk discussion).
    fn default_score(
        &self,
        query: &[TermId],
        summary: &dyn SummaryView,
        ctx: &CollectionContext,
    ) -> f64 {
        self.score_with_p(query, &vec![0.0; query.len()], summary, ctx)
    }

    /// The algorithm's batch scoring kernel (see [`crate::topk`]), if it
    /// has one. A kernel unlocks the pruned top-k serving path; algorithms
    /// without one (the default) are served through the full per-entry
    /// scan. A returned kernel's `score_rows` MUST be bit-identical to
    /// [`Self::score_with_p`] row by row.
    fn score_kernel(&self) -> Option<&dyn crate::topk::ScoreKernel> {
        None
    }
}

/// One entry of a database ranking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedDatabase {
    /// Index into the view slice passed to [`rank_databases`].
    pub index: usize,
    /// The selection score.
    pub score: f64,
}

/// Score and rank databases for a query. Databases whose score does not
/// exceed their default score are dropped (they have no evidence for the
/// query), which may return fewer databases than were given — exactly the
/// behavior the paper's Rk evaluation assumes.
pub fn rank_databases(
    algorithm: &dyn SelectionAlgorithm,
    query: &[TermId],
    views: &[&dyn SummaryView],
) -> Vec<RankedDatabase> {
    let ctx = CollectionContext::build(query, views);
    rank_databases_with_context(algorithm, query, views.iter().map(|v| (*v).into()), &ctx)
}

/// An item for [`rank_databases_with_context`]: a view tagged with the index
/// the ranking should report for it.
pub struct IndexedView<'a> {
    /// The index reported in [`RankedDatabase::index`].
    pub index: usize,
    /// The summary view to score.
    pub view: &'a dyn SummaryView,
}

impl<'a> From<&'a dyn SummaryView> for IndexedView<'a> {
    fn from(view: &'a dyn SummaryView) -> Self {
        IndexedView {
            index: usize::MAX,
            view,
        }
    }
}

/// The ranking order every selection ranking obeys: descending score,
/// ties broken by ascending database index. This is *the* total order of
/// [`rank_databases`] and [`rank_databases_with_context`]; anything that
/// reassembles rankings from pieces (the broker's shard scatter-gather via
/// [`crate::merge::merge_rankings`]) must use this exact comparator to stay
/// bit-identical to a monolithic sort.
///
/// Panics on NaN scores, exactly like the sort it factors out of — a NaN
/// score is a scoring bug, not an ordering question.
pub fn ranking_order(a: &RankedDatabase, b: &RankedDatabase) -> std::cmp::Ordering {
    b.score
        .partial_cmp(&a.score)
        .expect("ranking scores are never NaN")
        .then(a.index.cmp(&b.index))
}

/// The scoring core behind [`rank_databases`], with the collection context
/// supplied by the caller. This lets a serving layer compute `m`, `cf`, and
/// `mcw` from a precomputed index (posting lists) and score only candidate
/// databases, while sharing the exact float operations — and hence
/// bit-identical scores — with the full scan.
///
/// Items whose [`IndexedView::index`] is `usize::MAX` (the `From`
/// conversion's placeholder) are renumbered by position.
pub fn rank_databases_with_context<'a>(
    algorithm: &dyn SelectionAlgorithm,
    query: &[TermId],
    items: impl IntoIterator<Item = IndexedView<'a>>,
    ctx: &CollectionContext,
) -> Vec<RankedDatabase> {
    let mut ranked: Vec<RankedDatabase> = items
        .into_iter()
        .enumerate()
        .filter_map(|(position, item)| {
            let index = if item.index == usize::MAX {
                position
            } else {
                item.index
            };
            let score = algorithm.score_db(query, item.view, ctx);
            let default = algorithm.default_score(query, item.view, ctx);
            // Relative threshold: any evidence above the default counts,
            // however small (product scores over shrunk summaries can be
            // astronomically tiny yet meaningful).
            let threshold = default + default.abs() * 1e-9 + 1e-300;
            (score > threshold).then_some(RankedDatabase { index, score })
        })
        .collect();
    ranked.sort_by(ranking_order);
    ranked
}

#[cfg(test)]
pub(crate) mod test_support {
    use dbselect_core::summary::{ContentSummary, WordStats};
    use std::collections::HashMap;
    use textindex::TermId;

    /// Build a summary with explicit absolute document frequencies.
    pub fn summary(db_size: f64, dfs: &[(TermId, f64)]) -> ContentSummary {
        let words: HashMap<TermId, WordStats> = dfs
            .iter()
            .map(|&(t, df)| {
                (
                    t,
                    WordStats {
                        sample_df: df as u32,
                        df,
                        tf: df * 2.0,
                    },
                )
            })
            .collect();
        ContentSummary::new(db_size, db_size as u32, words)
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::summary;
    use super::*;

    struct SumOfP;
    impl SelectionAlgorithm for SumOfP {
        fn name(&self) -> &'static str {
            "sum"
        }
        fn score_with_p(
            &self,
            _query: &[TermId],
            p: &[f64],
            _summary: &dyn SummaryView,
            _ctx: &CollectionContext,
        ) -> f64 {
            p.iter().sum()
        }
    }

    #[test]
    fn context_counts_effective_presence() {
        let a = summary(100.0, &[(1, 50.0), (2, 0.2)]); // word 2 rounds to 0
        let b = summary(10.0, &[(1, 1.0)]);
        let views: Vec<&dyn SummaryView> = vec![&a, &b];
        let ctx = CollectionContext::build(&[1, 2, 3], &views);
        assert_eq!(ctx.cf[0], 2);
        assert_eq!(ctx.cf[1], 0, "round(0.2) < 1 means not present");
        assert_eq!(ctx.cf[2], 0);
        assert_eq!(ctx.m, 2);
    }

    #[test]
    fn rank_orders_by_score_and_drops_defaults() {
        let strong = summary(100.0, &[(1, 80.0)]);
        let weak = summary(100.0, &[(1, 10.0)]);
        let empty = summary(100.0, &[]);
        let views: Vec<&dyn SummaryView> = vec![&weak, &strong, &empty];
        let ranking = rank_databases(&SumOfP, &[1], &views);
        assert_eq!(ranking.len(), 2, "default-score database dropped");
        assert_eq!(ranking[0].index, 1);
        assert_eq!(ranking[1].index, 0);
    }

    #[test]
    fn ties_broken_by_index() {
        let a = summary(100.0, &[(1, 50.0)]);
        let b = summary(100.0, &[(1, 50.0)]);
        let views: Vec<&dyn SummaryView> = vec![&a, &b];
        let ranking = rank_databases(&SumOfP, &[1], &views);
        assert_eq!(ranking[0].index, 0);
        assert_eq!(ranking[1].index, 1);
    }

    #[test]
    fn mcw_is_mean_word_count() {
        let a = summary(10.0, &[(1, 5.0)]); // tf = 10
        let b = summary(10.0, &[(1, 10.0)]); // tf = 20
        let views: Vec<&dyn SummaryView> = vec![&a, &b];
        let ctx = CollectionContext::build(&[1], &views);
        assert!((ctx.mcw - 15.0).abs() < 1e-12);
    }
}
