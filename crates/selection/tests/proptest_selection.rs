//! Property-based tests for the selection algorithms: score bounds,
//! monotonicity, and ranking invariants for arbitrary summaries.

use std::collections::HashMap;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use dbselect_core::summary::{ContentSummary, SummaryView, WordStats};
use selection::{
    adaptive_rank, rank_databases, AdaptiveConfig, BGloss, CollectionContext, Cori, Lm,
    SelectionAlgorithm, ShrinkageMode, SummaryPair,
};

fn summary_strategy() -> impl Strategy<Value = ContentSummary> {
    (
        prop::collection::hash_map(0u32..20, 1u32..200, 0..12),
        200u32..2000,
    )
        .prop_map(|(dfs, size)| {
            let words: HashMap<u32, WordStats> = dfs
                .into_iter()
                .map(|(t, df)| {
                    let df = f64::from(df.min(size));
                    (
                        t,
                        WordStats {
                            sample_df: df as u32,
                            df,
                            tf: df * 1.7,
                        },
                    )
                })
                .collect();
            ContentSummary::new(f64::from(size), size, words)
        })
}

fn query_strategy() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::btree_set(0u32..20, 1..6).prop_map(|s| s.into_iter().collect())
}

proptest! {
    /// CORI scores are bounded by [0, 1]; bGlOSS by [0, |D|]; LM by [0, 1].
    #[test]
    fn score_bounds(summaries in prop::collection::vec(summary_strategy(), 1..6),
                    query in query_strategy()) {
        let views: Vec<&dyn SummaryView> =
            summaries.iter().map(|s| s as &dyn SummaryView).collect();
        let ctx = CollectionContext::build(&query, &views);
        let lm = Lm::from_global_map(0.5, HashMap::from([(0, 0.01), (1, 0.002)]));
        for view in &views {
            let cori = Cori::default().score_db(&query, *view, &ctx);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&cori), "CORI {cori}");
            let bg = BGloss.score_db(&query, *view, &ctx);
            prop_assert!(bg >= 0.0 && bg <= view.db_size() + 1e-9, "bGlOSS {bg}");
            let lm_score = lm.score_db(&query, *view, &ctx);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&lm_score), "LM {lm_score}");
        }
    }

    /// Rankings are strictly ordered by score with index tie-breaks, and
    /// contain no duplicate databases.
    #[test]
    fn ranking_is_sorted_and_unique(summaries in prop::collection::vec(summary_strategy(), 1..8),
                                    query in query_strategy()) {
        let views: Vec<&dyn SummaryView> =
            summaries.iter().map(|s| s as &dyn SummaryView).collect();
        for algo in [&BGloss as &dyn SelectionAlgorithm, &Cori::default()] {
            let ranking = rank_databases(algo, &query, &views);
            let ordered = ranking.windows(2).all(|w| {
                w[0].score > w[1].score || (w[0].score == w[1].score && w[0].index < w[1].index)
            });
            prop_assert!(ordered, "ranking out of order");
            let mut indices: Vec<usize> = ranking.iter().map(|r| r.index).collect();
            indices.sort_unstable();
            indices.dedup();
            prop_assert_eq!(indices.len(), ranking.len());
        }
    }

    /// bGlOSS is monotone: raising one word's probability never lowers the
    /// score.
    #[test]
    fn bgloss_monotone_in_p(p1 in 0.0..1.0f64, p2 in 0.0..1.0f64, bump in 0.0..0.5f64) {
        let s = ContentSummary::new(100.0, 100, HashMap::new());
        let ctx = CollectionContext::build(&[1, 2], &[&s as &dyn SummaryView]);
        let base = BGloss.score_with_p(&[1, 2], &[p1, p2], &s, &ctx);
        let bumped = BGloss.score_with_p(&[1, 2], &[(p1 + bump).min(1.0), p2], &s, &ctx);
        prop_assert!(bumped >= base - 1e-12);
    }

    /// CORI is monotone in per-word probability too (with fixed context).
    #[test]
    fn cori_monotone_in_p(p1 in 0.011..1.0f64, bump in 0.0..0.5f64) {
        let words = HashMap::from([(1u32, WordStats { sample_df: 50, df: 50.0, tf: 80.0 })]);
        let s = ContentSummary::new(100.0, 100, words);
        let ctx = CollectionContext::build(&[1], &[&s as &dyn SummaryView]);
        let algo = Cori::default();
        let base = algo.score_with_p(&[1], &[p1], &s, &ctx);
        let bumped = algo.score_with_p(&[1], &[(p1 + bump).min(1.0)], &s, &ctx);
        prop_assert!(bumped >= base - 1e-12);
    }

    /// The adaptive ranker in Never mode is identical to the flat ranker
    /// over unshrunk summaries.
    #[test]
    fn adaptive_never_equals_plain(summaries in prop::collection::vec(summary_strategy(), 1..6),
                                   query in query_strategy(),
                                   seed in 0u64..100) {
        use dbselect_core::category_summary::SummaryComponent;
        use dbselect_core::shrinkage::{shrink, ShrinkageConfig};
        let comp = std::sync::Arc::new(SummaryComponent::default());
        let shrunk: Vec<_> = summaries
            .iter()
            .map(|s| shrink(s, std::slice::from_ref(&comp), &ShrinkageConfig::default()))
            .collect();
        let pairs: Vec<SummaryPair<'_>> = summaries
            .iter()
            .zip(&shrunk)
            .map(|(unshrunk, shrunk)| SummaryPair { unshrunk, shrunk })
            .collect();
        let views: Vec<&dyn SummaryView> =
            summaries.iter().map(|s| s as &dyn SummaryView).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let config = AdaptiveConfig { mode: ShrinkageMode::Never, ..Default::default() };
        let adaptive = adaptive_rank(&BGloss, &query, &pairs, &config, &mut rng);
        let plain = rank_databases(&BGloss, &query, &views);
        prop_assert_eq!(adaptive.ranking, plain);
        prop_assert!(adaptive.used_shrinkage.iter().all(|&b| !b));
    }
}

mod merge_props {
    use proptest::prelude::*;
    use selection::{merge_results, MergeStrategy};
    use textindex::SearchOutcome;

    fn outcomes() -> impl Strategy<Value = Vec<(usize, f64, SearchOutcome)>> {
        prop::collection::vec(
            (0.0..1.0f64, prop::collection::vec(0.0..10.0f64, 0..8)),
            0..5,
        )
        .prop_map(|dbs| {
            dbs.into_iter()
                .enumerate()
                .map(|(i, (db_score, scores))| {
                    let outcome = SearchOutcome {
                        total_matches: scores.len(),
                        doc_ids: (0..scores.len() as u32).collect(),
                        scores,
                    };
                    (i, db_score, outcome)
                })
                .collect()
        })
    }

    proptest! {
        /// Merged lists contain exactly the input documents (up to the
        /// limit), each at most once, for every strategy.
        #[test]
        fn merge_preserves_documents(inputs in outcomes(), limit in 1usize..40) {
            let total: usize = inputs.iter().map(|(_, _, o)| o.doc_ids.len()).sum();
            for strategy in [
                MergeStrategy::RoundRobin,
                MergeStrategy::RawScore,
                MergeStrategy::CoriWeighted,
            ] {
                let merged = merge_results(&inputs, strategy, limit);
                prop_assert_eq!(merged.len(), total.min(limit), "{:?}", strategy);
                let mut seen = std::collections::HashSet::new();
                for m in &merged {
                    prop_assert!(seen.insert((m.database, m.doc)), "duplicate result");
                    prop_assert!(m.database < inputs.len());
                    prop_assert!(inputs[m.database].2.doc_ids.contains(&m.doc));
                }
            }
        }

        /// Score-based merges are monotonically ordered.
        #[test]
        fn merge_output_is_sorted(inputs in outcomes()) {
            for strategy in [MergeStrategy::RawScore, MergeStrategy::CoriWeighted] {
                let merged = merge_results(&inputs, strategy, 100);
                prop_assert!(
                    merged.windows(2).all(|w| w[0].score >= w[1].score),
                    "{:?} out of order", strategy
                );
            }
        }
    }
}
