//! The [`Arbitrary`] trait and [`any`], for `any::<T>()` strategies.

use std::marker::PhantomData;

use rand::rngs::StdRng;
use rand::RngCore;

use crate::strategy::Strategy;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary_value(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut StdRng) -> Self {
        // Finite, sign-symmetric, wide dynamic range.
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let exp = (rng.next_u64() % 61) as i32 - 30;
        let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
        sign * unit * 2f64.powi(exp)
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// Any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn any_u8_covers_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = any::<u8>();
        let mut lo = false;
        let mut hi = false;
        for _ in 0..500 {
            let b = s.generate(&mut rng);
            lo |= b < 64;
            hi |= b >= 192;
        }
        assert!(lo && hi);
    }
}
