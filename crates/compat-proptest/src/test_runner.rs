//! The deterministic property runner behind the [`crate::proptest!`] macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property is violated; fail the test.
    Fail(String),
    /// `prop_assume!` rejected the inputs; try another case.
    Reject(String),
}

impl TestCaseError {
    /// A hard failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A discarded case.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn mix(base: u64, attempt: u64) -> u64 {
    let mut z = base ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Run `f` until `config.cases` cases pass, with a deterministic RNG per
/// attempt derived from the test name. Panics on the first failing case.
pub fn run_property(
    name: &str,
    config: &ProptestConfig,
    f: impl Fn(&mut StdRng) -> Result<(), TestCaseError>,
) {
    let base = fnv1a(name);
    let max_attempts = (config.cases as u64).saturating_mul(20).max(100);
    let mut passed = 0u32;
    let mut attempt = 0u64;
    let mut rejects = 0u64;
    while passed < config.cases {
        if attempt >= max_attempts {
            panic!(
                "property {name:?}: too many rejected cases \
                 ({rejects} rejects in {attempt} attempts, {passed} passes)"
            );
        }
        let seed = mix(base, attempt);
        let mut rng = StdRng::seed_from_u64(seed);
        match f(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => rejects += 1,
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property {name:?} failed at case {passed} \
                     (attempt {attempt}, seed {seed:#x}): {msg}"
                );
            }
        }
        attempt += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let count = std::cell::Cell::new(0u32);
        run_property("always_ok", &ProptestConfig::with_cases(10), |_| {
            count.set(count.get() + 1);
            Ok(())
        });
        assert_eq!(count.get(), 10);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_context() {
        run_property("always_fails", &ProptestConfig::default(), |_| {
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    #[should_panic(expected = "too many rejected cases")]
    fn all_rejects_eventually_gives_up() {
        run_property("always_rejects", &ProptestConfig::with_cases(5), |_| {
            Err(TestCaseError::reject("nope"))
        });
    }

    #[test]
    fn same_name_same_stream() {
        let a = std::cell::RefCell::new(Vec::new());
        run_property("stream", &ProptestConfig::with_cases(5), |rng| {
            a.borrow_mut().push(rand::RngCore::next_u64(rng));
            Ok(())
        });
        let b = std::cell::RefCell::new(Vec::new());
        run_property("stream", &ProptestConfig::with_cases(5), |rng| {
            b.borrow_mut().push(rand::RngCore::next_u64(rng));
            Ok(())
        });
        assert_eq!(a.into_inner(), b.into_inner());
    }
}
