//! Collection strategies: `vec`, `hash_map`, `btree_set`.

use std::collections::{BTreeSet, HashMap};
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// A target size for a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        if self.lo >= self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..=self.hi)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// `Vec`s of values from `element`, with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The [`vec`] strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `HashMap`s with keys from `key` and values from `value`. Duplicate keys
/// may make the result smaller than the drawn target size.
pub fn hash_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: impl Into<SizeRange>,
) -> HashMapStrategy<K, V> {
    HashMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// The [`hash_map`] strategy.
#[derive(Debug, Clone)]
pub struct HashMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K: Strategy, V: Strategy> Strategy for HashMapStrategy<K, V>
where
    K::Value: Hash + Eq,
{
    type Value = HashMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let target = self.size.sample(rng);
        let mut map = HashMap::with_capacity(target);
        // Bounded retries: tiny key spaces cannot always reach the target.
        for _ in 0..target.saturating_mul(10).max(8) {
            if map.len() >= target {
                break;
            }
            map.insert(self.key.generate(rng), self.value.generate(rng));
        }
        map
    }
}

/// `BTreeSet`s of values from `element`.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// The [`btree_set`] strategy.
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        for _ in 0..target.saturating_mul(10).max(8) {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.generate(rng));
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_sizes_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = vec(0u32..5, 2..6);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn hash_map_reaches_target_when_key_space_allows() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = hash_map(0u32..1000, 0.0..1.0f64, 8..9);
        let m = s.generate(&mut rng);
        assert_eq!(m.len(), 8);
    }

    #[test]
    fn btree_set_with_tiny_key_space_terminates() {
        let mut rng = StdRng::seed_from_u64(6);
        let s = btree_set(0u8..2, 5..6);
        let set = s.generate(&mut rng);
        assert!(set.len() <= 2);
    }
}
