//! Generation from the small regex-pattern subset used as string strategies.
//!
//! Supported atoms: character classes like `[a-z ]`, the Unicode-printable
//! escape `\PC`, and literal characters; each atom may carry a `{n}` or
//! `{m,n}` repetition. Anything else panics, so a new test pattern fails
//! loudly instead of silently generating the wrong language.

use rand::rngs::StdRng;
use rand::Rng;

/// Generate one string matching `pattern`.
pub fn generate_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let mut out = String::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let atom = parse_atom(&chars, &mut i, pattern);
        let (lo, hi) = parse_repetition(&chars, &mut i, pattern);
        let count = if lo >= hi { lo } else { rng.gen_range(lo..=hi) };
        for _ in 0..count {
            out.push(atom.sample(rng));
        }
    }
    out
}

enum Atom {
    Class(Vec<(char, char)>),
    UnicodePrintable,
    Literal(char),
}

impl Atom {
    fn sample(&self, rng: &mut StdRng) -> char {
        match self {
            Atom::Literal(c) => *c,
            Atom::Class(ranges) => {
                let total: u32 = ranges.iter().map(|&(a, b)| b as u32 - a as u32 + 1).sum();
                let mut pick = rng.gen_range(0..total as usize) as u32;
                for &(a, b) in ranges {
                    let span = b as u32 - a as u32 + 1;
                    if pick < span {
                        return char::from_u32(a as u32 + pick).unwrap();
                    }
                    pick -= span;
                }
                unreachable!()
            }
            Atom::UnicodePrintable => {
                // Mostly ASCII printables, with a sprinkling of wider
                // code points so multi-byte handling gets exercised.
                if rng.gen::<f64>() < 0.85 {
                    char::from_u32(rng.gen_range(0x20u32..=0x7E)).unwrap()
                } else {
                    const POOL: &[char] = &['é', 'ß', 'λ', 'Ж', '中', '🙂', 'ñ', '†'];
                    POOL[rng.gen_range(0..POOL.len())]
                }
            }
        }
    }
}

fn parse_atom(chars: &[char], i: &mut usize, pattern: &str) -> Atom {
    match chars[*i] {
        '[' => {
            *i += 1;
            let mut ranges = Vec::new();
            while *i < chars.len() && chars[*i] != ']' {
                let start = chars[*i];
                if *i + 2 < chars.len() && chars[*i + 1] == '-' && chars[*i + 2] != ']' {
                    let end = chars[*i + 2];
                    assert!(start <= end, "invalid class range in pattern {pattern:?}");
                    ranges.push((start, end));
                    *i += 3;
                } else {
                    ranges.push((start, start));
                    *i += 1;
                }
            }
            assert!(
                *i < chars.len() && !ranges.is_empty(),
                "unterminated or empty class in pattern {pattern:?}"
            );
            *i += 1; // consume ']'
            Atom::Class(ranges)
        }
        '\\' => {
            assert!(
                chars.get(*i + 1) == Some(&'P') && chars.get(*i + 2) == Some(&'C'),
                "unsupported escape in pattern {pattern:?}; only \\PC is implemented"
            );
            *i += 3;
            Atom::UnicodePrintable
        }
        c @ ('.' | '*' | '+' | '?' | '(' | ')' | '|' | '^' | '$') => {
            panic!("unsupported regex metacharacter {c:?} in pattern {pattern:?}")
        }
        c => {
            *i += 1;
            Atom::Literal(c)
        }
    }
}

/// Parse an optional `{n}` / `{m,n}` suffix; defaults to exactly one.
fn parse_repetition(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
    if chars.get(*i) != Some(&'{') {
        return (1, 1);
    }
    let close = chars[*i..]
        .iter()
        .position(|&c| c == '}')
        .unwrap_or_else(|| panic!("unterminated repetition in pattern {pattern:?}"));
    let body: String = chars[*i + 1..*i + close].iter().collect();
    *i += close + 1;
    let parse = |s: &str| -> usize {
        s.trim()
            .parse()
            .unwrap_or_else(|_| panic!("bad repetition bound {s:?} in pattern {pattern:?}"))
    };
    match body.split_once(',') {
        Some((lo, hi)) => (parse(lo), parse(hi)),
        None => {
            let n = parse(&body);
            (n, n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lowercase_class_with_range_repetition() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..100 {
            let s = generate_pattern("[a-z]{3,16}", &mut rng);
            assert!((3..=16).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn class_with_literal_space() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut saw_space = false;
        for _ in 0..200 {
            let s = generate_pattern("[a-z ]{0,80}", &mut rng);
            assert!(s.chars().all(|c| c == ' ' || c.is_ascii_lowercase()));
            saw_space |= s.contains(' ');
        }
        assert!(saw_space);
    }

    #[test]
    fn unicode_printable_lengths() {
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..100 {
            let s = generate_pattern("\\PC{0,24}", &mut rng);
            assert!(s.chars().count() <= 24);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn literal_characters_pass_through() {
        let mut rng = StdRng::seed_from_u64(11);
        assert_eq!(generate_pattern("abc", &mut rng), "abc");
    }
}
