//! The `prop::option` namespace.

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// `Option<T>` values: `Some` with probability 0.8, `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// The [`of`] strategy.
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        if rng.gen::<f64>() < 0.8 {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn produces_both_variants() {
        let mut rng = StdRng::seed_from_u64(7);
        let s = of(0u32..10);
        let mut some = 0;
        let mut none = 0;
        for _ in 0..400 {
            match s.generate(&mut rng) {
                Some(v) => {
                    assert!(v < 10);
                    some += 1;
                }
                None => none += 1,
            }
        }
        assert!(some > none);
        assert!(none > 0);
    }
}
