//! A self-contained stand-in for the subset of the `proptest` API this
//! workspace uses, for builds without crates.io access.
//!
//! It keeps the ergonomics the tests rely on — the [`proptest!`] macro with
//! an optional `#![proptest_config(...)]` header, `x in strategy` bindings,
//! [`prop_assert!`]-family macros, [`Strategy::prop_map`], numeric-range and
//! simple regex-string strategies, and the `prop::collection` /
//! `prop::option` constructors — while replacing the engine with a small
//! deterministic runner: every test derives a seed from its own name, so
//! failures reproduce exactly across runs and machines. There is no
//! shrinking; failing cases report the case index and seed instead.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The glob import every test file uses.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, `prop::option::of`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Run a block of property tests.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(x in 0u32..100, v in prop::collection::vec(any::<u8>(), 0..20)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body ($config) $($rest)*);
    };
    (@body ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                $crate::test_runner::run_property(stringify!($name), &config, |rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                    #[allow(clippy::redundant_closure_call)]
                    (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@body ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert two values are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Assert two values differ inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Discard the current case (it does not count towards the case target).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
