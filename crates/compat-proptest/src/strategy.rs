//! The [`Strategy`] trait and the built-in strategies for ranges, tuples,
//! and string patterns.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the runner's RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// String literals act as simple regex-like patterns (see [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        crate::string::generate_pattern(self, rng)
    }
}

/// A constant strategy (upstream's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_map_compose() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = (0u32..10, -1.0..1.0f64).prop_map(|(a, b)| (a * 2, b));
        for _ in 0..100 {
            let (a, b) = s.generate(&mut rng);
            assert!(a % 2 == 0 && a < 20);
            assert!((-1.0..1.0).contains(&b));
        }
    }

    #[test]
    fn just_is_constant() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(Just(7u8).generate(&mut rng), 7);
    }
}
