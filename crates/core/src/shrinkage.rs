//! Shrinkage-based content summaries (Section 3.2 of the paper).
//!
//! A database `D` classified under categories `C_1 (root), …, C_m` gets a
//! *shrunk* summary
//!
//! ```text
//! p̂_R(w|D) = λ_{m+1}·p̂(w|D) + Σ_{i=1..m} λ_i·p̂(w|C_i) + λ_0·p̂(w|C_0)
//! ```
//!
//! where `C_0` is a dummy category assigning the same probability to every
//! word, and the mixture weights `λ_i` (summing to 1) are computed by the
//! expectation-maximization procedure of Figure 2. The EM runs once per
//! probability model — document-frequency (Definitions 1/2) and
//! term-frequency (the LM variant of Section 5.3) — because the paper notes
//! the algorithms adapt to the LM model "by substituting this definition of
//! p(w|D)".
//!
//! [`ShrunkSummary`] evaluates the mixture *lazily*: it keeps the database's
//! own probabilities plus `Arc`-shared category components (whose memory is
//! amortized across all databases under the same categories) and computes
//! `p̂_R(w|D)` on lookup. Materializing every shrunk summary over the union
//! vocabulary would cost memory proportional to |databases| × |global
//! vocabulary|, which is prohibitive for web-scale collections.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use textindex::TermId;

use crate::category_summary::SummaryComponent;
use crate::summary::{ContentSummary, SummaryView};

/// Tuning knobs for the EM computation.
#[derive(Debug, Clone, Copy)]
pub struct ShrinkageConfig {
    /// Convergence threshold: stop when no `λ_i` moves by more than this.
    pub epsilon: f64,
    /// Hard iteration cap (EM converges in a handful of iterations here).
    pub max_iterations: usize,
    /// The probability `p̂(w|C_0)` that the dummy uniform category assigns
    /// to *every* word. A natural choice is `1 / |global vocabulary|`.
    pub uniform_p: f64,
}

impl Default for ShrinkageConfig {
    fn default() -> Self {
        ShrinkageConfig {
            epsilon: 1e-6,
            max_iterations: 500,
            uniform_p: 1e-6,
        }
    }
}

/// Which word-probability model a set of mixture weights was fit on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbabilityModel {
    /// `p̂(w|D)` = fraction of documents containing `w` (Definition 2).
    DocumentFrequency,
    /// `p̂(w|D) = tf(w,D) / Σ tf` (the LM variant, Section 5.3).
    TermFrequency,
}

/// The shrunk content summary `R̂(D)` of one database (Definition 4).
#[derive(Debug, Clone)]
pub struct ShrunkSummary {
    db_size: f64,
    word_count: f64,
    uniform_p: f64,
    /// Mixture weights for the document-frequency model, ordered
    /// `[λ_0 (uniform), λ_1 (root), …, λ_m (leaf category), λ_{m+1} (D)]`.
    lambdas_df: Vec<f64>,
    /// Mixture weights fit on the term-frequency model, same order.
    lambdas_tf: Vec<f64>,
    /// The database's own probabilities under both models.
    db_p_df: HashMap<TermId, f64>,
    db_p_tf: HashMap<TermId, f64>,
    /// Category components, root first, shared across sibling databases.
    components: Vec<Arc<SummaryComponent>>,
}

impl ShrunkSummary {
    /// Reassemble a shrunk summary from previously fitted mixture weights —
    /// the persistence path. Only the EM output (`lambdas_df`/`lambdas_tf`)
    /// and `uniform_p` need storing; the database probability maps are
    /// recomputed from `db_summary` and the category `components` are
    /// rebuilt (or shared) by the caller. Given the same inputs [`shrink`]
    /// saw, the result is indistinguishable from the original — no EM rerun.
    pub fn from_parts(
        db_summary: &ContentSummary,
        components: &[Arc<SummaryComponent>],
        lambdas_df: Vec<f64>,
        lambdas_tf: Vec<f64>,
        uniform_p: f64,
    ) -> ShrunkSummary {
        assert_eq!(
            lambdas_df.len(),
            components.len() + 2,
            "λ vector must cover uniform + components + database"
        );
        assert_eq!(lambdas_df.len(), lambdas_tf.len());
        let db_p_df: HashMap<TermId, f64> = db_summary
            .iter()
            .map(|(t, _)| (t, db_summary.p_df(t)))
            .collect();
        let db_p_tf: HashMap<TermId, f64> = db_summary
            .iter()
            .map(|(t, _)| (t, db_summary.p_tf(t)))
            .collect();
        ShrunkSummary {
            db_size: db_summary.db_size(),
            word_count: db_summary.total_tf(),
            uniform_p,
            lambdas_df,
            lambdas_tf,
            db_p_df,
            db_p_tf,
            components: components.to_vec(),
        }
    }

    /// The `p̂(w|C_0)` probability of the dummy uniform category.
    pub fn uniform_p(&self) -> f64 {
        self.uniform_p
    }

    /// Mixture weights under the document-frequency model:
    /// `[λ_0 (uniform), λ_1 (root), …, λ_m, λ_{m+1} (database)]`.
    pub fn lambdas(&self) -> &[f64] {
        &self.lambdas_df
    }

    /// Mixture weights under the term-frequency model.
    pub fn lambdas_tf(&self) -> &[f64] {
        &self.lambdas_tf
    }

    /// The union vocabulary of the database and its category components —
    /// every word with non-default probability, ascending.
    pub fn vocabulary(&self) -> Vec<TermId> {
        let mut seen: HashSet<TermId> = self.db_p_df.keys().copied().collect();
        for comp in &self.components {
            seen.extend(comp.p_df.keys().copied());
        }
        let mut v: Vec<TermId> = seen.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// The union vocabulary across **both** probability models: every word
    /// with a non-default probability under either the document-frequency
    /// or the term-frequency mixture, ascending. [`Self::vocabulary`] covers
    /// only the df model; a category component can carry tf-only keys when
    /// its df denominator degenerates to zero (and vice versa), and
    /// freezing a shrunk summary into arrays must capture those too.
    pub fn full_vocabulary(&self) -> Vec<TermId> {
        let mut seen: HashSet<TermId> = self.db_p_df.keys().copied().collect();
        seen.extend(self.db_p_tf.keys().copied());
        for comp in &self.components {
            seen.extend(comp.p_df.keys().copied());
            seen.extend(comp.p_tf.keys().copied());
        }
        let mut v: Vec<TermId> = seen.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Iterate over `(term, p̂_R(w|D))` for the union vocabulary.
    pub fn iter_df(&self) -> impl Iterator<Item = (TermId, f64)> + '_ {
        self.vocabulary()
            .into_iter()
            .map(move |t| (t, SummaryView::p_df(self, t)))
    }

    /// Number of words with explicit probability in the shrunk summary.
    pub fn vocabulary_size(&self) -> usize {
        self.vocabulary().len()
    }

    fn mix(
        &self,
        term: TermId,
        lambdas: &[f64],
        db_p: &HashMap<TermId, f64>,
        model_df: bool,
    ) -> f64 {
        let mut p = lambdas[0] * self.uniform_p;
        for (comp, &lambda) in self.components.iter().zip(&lambdas[1..]) {
            if lambda == 0.0 {
                continue;
            }
            let map = if model_df { &comp.p_df } else { &comp.p_tf };
            if let Some(&cp) = map.get(&term) {
                p += lambda * cp;
            }
        }
        if let Some(&dp) = db_p.get(&term) {
            p += lambdas[lambdas.len() - 1] * dp;
        }
        p
    }
}

impl SummaryView for ShrunkSummary {
    fn db_size(&self) -> f64 {
        self.db_size
    }

    fn p_df(&self, term: TermId) -> f64 {
        self.mix(term, &self.lambdas_df, &self.db_p_df, true)
    }

    fn p_tf(&self, term: TermId) -> f64 {
        self.mix(term, &self.lambdas_tf, &self.db_p_tf, false)
    }

    fn word_count(&self) -> f64 {
        self.word_count
    }
}

/// Run the EM of Figure 2 for one probability model, with *held-out*
/// (deleted-interpolation) weighting.
///
/// * `db_words` — `(word, sample_df)` for every word of `Ŝ(D)` (the E-step
///   sums over `w ∈ Ŝ(D)`);
/// * `db_p(w)` — the database's own estimate for `w`;
/// * `component_p[i]` — `p̂(w|C_{i+1})` maps, root first.
///
/// The mixture weights exist to make `R̂(D)` generalize beyond the sample.
/// McCallum et al. [22] therefore fit λ on *held-out* data: the database
/// component is estimated from part of the training data and the
/// responsibilities are computed on the rest, so words the database model
/// would not have covered push weight toward the categories. Figure 2's
/// "simple version" omits this; run verbatim on the very sample that
/// defines `p̂(w|D)`, the database component dominates every word it has
/// seen and EM degenerates to `λ_{m+1} → 1`. We emulate the held-out fit in
/// expectation: under a random half split, a word observed in `s` sample
/// documents is absent from the training half with probability `2^{-s}`, so
/// each word contributes a second, `2^{-s}`-weighted responsibility row in
/// which the database probability is zeroed. Frequent words are unaffected;
/// singletons vote half of their mass as if the database had never seen
/// them — which is exactly the generalization question shrinkage answers.
///
/// Returns `[λ_0, λ_1, …, λ_m, λ_{m+1}]`.
fn em_mixture_weights(
    db_words: &[(TermId, u32)],
    db_p: &HashMap<TermId, f64>,
    component_p: &[&HashMap<TermId, f64>],
    config: &ShrinkageConfig,
) -> Vec<f64> {
    let m = component_p.len();
    let k = m + 2; // uniform + m categories + database
    let mut lambdas = vec![1.0 / k as f64; k];
    if db_words.is_empty() {
        return lambdas;
    }
    // Precompute per-word component probabilities plus the held-out weight.
    let mut probs: Vec<(Vec<f64>, f64)> = Vec::with_capacity(db_words.len());
    for &(w, sample_df) in db_words {
        let mut row = Vec::with_capacity(k);
        row.push(config.uniform_p);
        for comp in component_p {
            row.push(comp.get(&w).copied().unwrap_or(0.0));
        }
        row.push(db_p.get(&w).copied().unwrap_or(0.0));
        let heldout_weight = 0.5f64.powi(sample_df.min(60) as i32);
        probs.push((row, heldout_weight));
    }
    let mut betas = vec![0.0f64; k];
    for _ in 0..config.max_iterations {
        // Expectation: β_i = Σ_w λ_i·p_i(w) / p̂_R(w), with each word also
        // contributing its held-out variant (database component deleted).
        betas.iter_mut().for_each(|b| *b = 0.0);
        for (row, heldout) in &probs {
            let mixture: f64 = row.iter().zip(&lambdas).map(|(p, l)| p * l).sum();
            if mixture > 0.0 {
                let weight = 1.0 - heldout;
                for (beta, (p, l)) in betas.iter_mut().zip(row.iter().zip(&lambdas)) {
                    *beta += weight * l * p / mixture;
                }
            }
            if *heldout > 0.0 {
                // The deleted row: same categories, database term removed.
                let db_term = lambdas[k - 1] * row[k - 1];
                let mixture_deleted = mixture - db_term;
                if mixture_deleted > 0.0 {
                    for (beta, (p, l)) in betas.iter_mut().take(k - 1).zip(row.iter().zip(&lambdas))
                    {
                        *beta += heldout * l * p / mixture_deleted;
                    }
                }
            }
        }
        let total: f64 = betas.iter().sum();
        if total <= 0.0 {
            break;
        }
        // Maximization: λ_i = β_i / Σ_j β_j.
        let mut delta = 0.0f64;
        for (lambda, beta) in lambdas.iter_mut().zip(&betas) {
            let new = beta / total;
            delta = delta.max((new - *lambda).abs());
            *lambda = new;
        }
        if delta < config.epsilon {
            break;
        }
    }
    // Zero is an absorbing state for EM mixture weights; floor them so the
    // shrunk summary keeps the paper's property that "virtually every word
    // appears with non-zero probability in every shrunk content summary".
    let floor = 1e-9;
    for l in &mut lambdas {
        *l = l.max(floor);
    }
    let total: f64 = lambdas.iter().sum();
    for l in &mut lambdas {
        *l /= total;
    }
    lambdas
}

/// Compute the shrunk content summary `R̂(D)` for a database.
///
/// `components` are the category summaries along `D`'s classification path
/// (root first), typically produced by
/// [`crate::category_summary::CategorySummaries::components_for`].
pub fn shrink(
    db_summary: &ContentSummary,
    components: &[Arc<SummaryComponent>],
    config: &ShrinkageConfig,
) -> ShrunkSummary {
    // Sorted so the EM's floating-point sums are order-stable: the same
    // summary always yields bit-identical mixture weights.
    let mut db_words: Vec<(TermId, u32)> =
        db_summary.iter().map(|(t, s)| (t, s.sample_df)).collect();
    db_words.sort_unstable();
    let db_p_df: HashMap<TermId, f64> = db_summary
        .iter()
        .map(|(t, _)| (t, db_summary.p_df(t)))
        .collect();
    let db_p_tf: HashMap<TermId, f64> = db_summary
        .iter()
        .map(|(t, _)| (t, db_summary.p_tf(t)))
        .collect();

    let comp_df: Vec<&HashMap<TermId, f64>> = components.iter().map(|c| &c.p_df).collect();
    let comp_tf: Vec<&HashMap<TermId, f64>> = components.iter().map(|c| &c.p_tf).collect();

    let lambdas_df = em_mixture_weights(&db_words, &db_p_df, &comp_df, config);
    let lambdas_tf = em_mixture_weights(&db_words, &db_p_tf, &comp_tf, config);

    ShrunkSummary {
        db_size: db_summary.db_size(),
        word_count: db_summary.total_tf(),
        uniform_p: config.uniform_p,
        lambdas_df,
        lambdas_tf,
        db_p_df,
        db_p_tf,
        components: components.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use textindex::Document;

    fn summary_from(docs: &[Vec<TermId>], db_size: f64) -> ContentSummary {
        let docs: Vec<Document> = docs
            .iter()
            .enumerate()
            .map(|(i, t)| Document::from_tokens(i as u32, t.clone()))
            .collect();
        ContentSummary::from_sample(docs.iter(), db_size)
    }

    fn component(entries: &[(TermId, f64)]) -> Arc<SummaryComponent> {
        Arc::new(SummaryComponent {
            p_df: entries.iter().copied().collect(),
            p_tf: entries.iter().copied().collect(),
        })
    }

    #[test]
    fn lambdas_sum_to_one() {
        let db = summary_from(&[vec![1, 2], vec![1, 3]], 100.0);
        let comps = vec![component(&[(1, 0.5), (4, 0.2)]), component(&[(2, 0.9)])];
        let shrunk = shrink(&db, &comps, &ShrinkageConfig::default());
        let sum: f64 = shrunk.lambdas().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "λ sums to 1, got {sum}");
        assert_eq!(shrunk.lambdas().len(), 4); // uniform + 2 categories + db
        assert!(shrunk.lambdas().iter().all(|&l| l >= 0.0));
    }

    #[test]
    fn database_weight_dominates_matching_category() {
        // The database summary should usually receive the highest λ (the
        // paper: "the λ_{m+1} weight ... is usually highest").
        let db = summary_from(&[vec![1, 2], vec![1], vec![2], vec![1, 2]], 1000.0);
        // Category roughly agrees with the database but less sharply.
        let comps = vec![component(&[(1, 0.3), (2, 0.2), (9, 0.1)])];
        let shrunk = shrink(&db, &comps, &ShrinkageConfig::default());
        let l = shrunk.lambdas();
        assert!(l[2] > l[0], "database λ exceeds uniform λ: {l:?}");
        assert!(l[2] > 0.3, "database λ substantial: {l:?}");
    }

    #[test]
    fn shrunk_summary_covers_category_words() {
        // Word 42 is absent from the database sample but present in the
        // category — the whole point of shrinkage (the "hypertension"
        // example of the paper's Figure 1). The category must genuinely
        // resemble the database for EM to give it weight.
        let db = summary_from(&[vec![1], vec![1, 2]], 50.0);
        let comps = vec![component(&[(1, 0.9), (2, 0.9), (42, 0.25)])];
        let shrunk = shrink(&db, &comps, &ShrinkageConfig::default());
        assert!(shrunk.p_df(42) > 0.0, "category word gains probability");
        assert!(
            shrunk.p_df(42) > shrunk.p_df(777),
            "category word outranks a never-seen word"
        );
    }

    #[test]
    fn unseen_words_get_uniform_floor() {
        let db = summary_from(&[vec![1]], 10.0);
        let config = ShrinkageConfig {
            uniform_p: 1e-4,
            ..Default::default()
        };
        let shrunk = shrink(&db, &[component(&[(1, 0.5)])], &config);
        let floor = shrunk.p_df(99_999);
        assert!(floor > 0.0);
        assert!((floor - shrunk.lambdas()[0] * 1e-4).abs() < 1e-15);
    }

    #[test]
    fn empty_database_summary_returns_uniform_lambdas() {
        let db = summary_from(&[], 0.0);
        let shrunk = shrink(&db, &[component(&[(1, 0.5)])], &ShrinkageConfig::default());
        let l = shrunk.lambdas();
        assert_eq!(l.len(), 3);
        for &li in l {
            assert!((li - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn shrunk_p_is_convex_combination() {
        // p̂_R(w) must lie between min and max of the component estimates.
        let db = summary_from(&[vec![1], vec![1], vec![2]], 30.0);
        let comps = vec![component(&[(1, 0.1), (2, 0.8)])];
        let shrunk = shrink(&db, &comps, &ShrinkageConfig::default());
        let p1_db: f64 = 2.0 / 3.0;
        let p1 = shrunk.p_df(1);
        assert!(p1 <= p1_db.max(0.1) + 1e-12 && p1 >= 0.0);
        // And mixture with positive db weight keeps db words positive.
        assert!(p1 > 0.0);
    }

    #[test]
    fn em_is_deterministic() {
        let db = summary_from(&[vec![1, 2], vec![3]], 100.0);
        let comps = vec![component(&[(1, 0.5), (7, 0.3)]), component(&[(3, 0.2)])];
        let a = shrink(&db, &comps, &ShrinkageConfig::default());
        let b = shrink(&db, &comps, &ShrinkageConfig::default());
        assert_eq!(a.lambdas(), b.lambdas());
    }

    #[test]
    fn effectively_contains_applies_rounding_to_shrunk_probabilities() {
        let db = summary_from(&[vec![1]], 100.0);
        let comps = vec![component(&[(42, 0.2)])];
        let shrunk = shrink(&db, &comps, &ShrinkageConfig::default());
        // Word 42's shrunk probability times 100 docs rounds to >= 1 iff
        // p >= 0.005.
        assert_eq!(
            shrunk.effectively_contains(42),
            shrunk.p_df(42) * 100.0 >= 0.5
        );
    }

    #[test]
    fn vocabulary_is_union_of_db_and_components() {
        let db = summary_from(&[vec![5, 2]], 10.0);
        let comps = vec![component(&[(2, 0.3), (9, 0.1)])];
        let shrunk = shrink(&db, &comps, &ShrinkageConfig::default());
        assert_eq!(shrunk.vocabulary(), vec![2, 5, 9]);
        assert_eq!(shrunk.vocabulary_size(), 3);
        let from_iter: Vec<TermId> = shrunk.iter_df().map(|(t, _)| t).collect();
        assert_eq!(from_iter, vec![2, 5, 9]);
    }

    #[test]
    fn from_parts_reproduces_shrink_exactly() {
        let db = summary_from(&[vec![1, 2], vec![1, 3]], 100.0);
        let comps = vec![component(&[(1, 0.5), (4, 0.2)]), component(&[(2, 0.9)])];
        let config = ShrinkageConfig::default();
        let original = shrink(&db, &comps, &config);
        let rebuilt = ShrunkSummary::from_parts(
            &db,
            &comps,
            original.lambdas().to_vec(),
            original.lambdas_tf().to_vec(),
            config.uniform_p,
        );
        for t in [1u32, 2, 3, 4, 42] {
            assert_eq!(original.p_df(t).to_bits(), rebuilt.p_df(t).to_bits());
            assert_eq!(original.p_tf(t).to_bits(), rebuilt.p_tf(t).to_bits());
        }
        assert_eq!(original.db_size(), rebuilt.db_size());
        assert_eq!(original.word_count(), rebuilt.word_count());
        assert_eq!(original.uniform_p(), rebuilt.uniform_p());
        assert_eq!(original.vocabulary(), rebuilt.vocabulary());
    }

    #[test]
    fn components_are_shared_not_copied() {
        let db1 = summary_from(&[vec![1]], 10.0);
        let db2 = summary_from(&[vec![2]], 10.0);
        let shared = component(&[(1, 0.4), (2, 0.4)]);
        let s1 = shrink(
            &db1,
            std::slice::from_ref(&shared),
            &ShrinkageConfig::default(),
        );
        let s2 = shrink(
            &db2,
            std::slice::from_ref(&shared),
            &ShrinkageConfig::default(),
        );
        // Three holders of the same allocation: `shared`, s1, s2.
        assert_eq!(Arc::strong_count(&shared), 3);
        drop((s1, s2));
        assert_eq!(Arc::strong_count(&shared), 1);
    }
}
