//! Score-uncertainty estimation for adaptive shrinkage (Section 4 and
//! Appendix B of the paper).
//!
//! Given a query `q = [w₁ … wₙ]` and a database `D` sampled by `S`, where
//! word `w_k` appeared in `s_k` of the `|S|` sample documents, the paper
//! asks: *how uncertain is the selection score `s(q, D)` implied by the
//! sample?* For every possible document-frequency combination `d₁ … dₙ` it
//! weighs
//!
//! * the likelihood `p(s_k | d_k)` — binomial with `|S|` trials and success
//!   probability `d_k / |D|`, and
//! * the prior `p(d_k) ∝ d_k^γ` — the power law of word frequencies, with
//!   `γ = 1/α − 1` from the Mandelbrot fit (Appendix A),
//!
//! and examines the mean and variance of the scores the selection algorithm
//! would assign across random `d₁ … dₙ` combinations. When the standard
//! deviation exceeds the mean, the sample-based score is deemed unreliable
//! and the shrunk content summary is used instead (Figure 3).
//!
//! Exhaustive enumeration over all `|D|ⁿ` combinations is infeasible; as the
//! paper notes, almost all combinations have negligible probability and the
//! moments converge after a few hundred random combinations. We therefore
//! discretize each word's posterior on a log-spaced grid and Monte-Carlo
//! sample combinations until the running mean and variance stabilize.

use rand::Rng;

/// Tuning knobs for the Monte-Carlo moment estimation.
#[derive(Debug, Clone, Copy)]
pub struct UncertaintyConfig {
    /// Hard cap on sampled `d₁ … dₙ` combinations.
    pub max_draws: usize,
    /// How often (in draws) convergence is checked.
    pub check_every: usize,
    /// Stop when mean and standard deviation both move less than this
    /// relative amount between checks.
    pub rel_tolerance: f64,
    /// Number of grid points for each word's posterior support.
    pub grid_points: usize,
}

impl Default for UncertaintyConfig {
    fn default() -> Self {
        UncertaintyConfig {
            max_draws: 2000,
            check_every: 100,
            rel_tolerance: 0.02,
            grid_points: 160,
        }
    }
}

/// Discretized posterior `p(d | s)` over the true document frequency of one
/// query word.
#[derive(Debug, Clone)]
pub struct WordPosterior {
    /// Candidate document frequencies.
    support: Vec<f64>,
    /// Cumulative probabilities aligned with `support` (last entry = 1).
    cumulative: Vec<f64>,
}

impl WordPosterior {
    /// Build the posterior for a word observed in `sample_df` of
    /// `sample_size` sample documents, for a database of `db_size` documents
    /// whose word-frequency power-law exponent is `gamma`.
    ///
    /// The prior follows Appendix B: `p(d) ∝ d^γ` for `d ≥ 1`. A word absent
    /// from the sample (`sample_df = 0`) may also be absent from the
    /// database; `d = 0` is given the same prior mass as `d = 1`, a choice
    /// the paper leaves open (its sums start at the smallest frequency).
    pub fn new(
        sample_df: u32,
        sample_size: u32,
        db_size: f64,
        gamma: f64,
        grid_points: usize,
    ) -> Self {
        let d_max = db_size.max(1.0);
        let s = f64::from(sample_df);
        let n = f64::from(sample_size);
        let supports = grid(sample_df == 0, d_max, grid_points.max(8));
        let mut log_weights = Vec::with_capacity(supports.len());
        for &d in &supports {
            log_weights.push(log_posterior(d, s, n, d_max, gamma));
        }
        // Bucket widths: the grid is non-uniform, so each point stands for a
        // band of integer frequencies.
        let weights: Vec<f64> = normalize(&supports, &log_weights);
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in &weights {
            acc += w;
            cumulative.push(acc);
        }
        // Guard against an all-zero posterior (degenerate input): fall back
        // to a point mass at the scaled sample estimate.
        if acc <= 0.0 {
            let point = if n > 0.0 {
                (s / n * d_max).max(0.0)
            } else {
                0.0
            };
            return WordPosterior {
                support: vec![point],
                cumulative: vec![1.0],
            };
        }
        for c in &mut cumulative {
            *c /= acc;
        }
        WordPosterior {
            support: supports,
            cumulative,
        }
    }

    /// Draw one candidate document frequency.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).unwrap())
        {
            Ok(i) | Err(i) => self.support[i.min(self.support.len() - 1)],
        }
    }

    /// Posterior mean (used in tests and diagnostics).
    pub fn mean(&self) -> f64 {
        let mut prev = 0.0;
        let mut mean = 0.0;
        for (d, c) in self.support.iter().zip(&self.cumulative) {
            mean += d * (c - prev);
            prev = *c;
        }
        mean
    }
}

/// Log of `p(s|d)·p(d)` up to constants. `d`, `s`, `n` (=|S|), `d_max`
/// (=|D|) are all in documents.
fn log_posterior(d: f64, s: f64, n: f64, d_max: f64, gamma: f64) -> f64 {
    if d <= 0.0 {
        // Only reachable for s = 0: likelihood 1, prior mass as at d = 1.
        return if s == 0.0 { 0.0 } else { f64::NEG_INFINITY };
    }
    let p = (d / d_max).min(1.0);
    let mut ll = 0.0;
    if s > 0.0 {
        ll += s * p.ln();
    }
    if n - s > 0.0 {
        if p >= 1.0 {
            return f64::NEG_INFINITY; // d = |D| but some sample docs lack w
        }
        ll += (n - s) * (1.0 - p).ln();
    }
    ll + gamma * d.ln()
}

/// Log-spaced integer grid over `[1, d_max]`, optionally including 0.
fn grid(include_zero: bool, d_max: f64, points: usize) -> Vec<f64> {
    let mut support = Vec::with_capacity(points + 1);
    if include_zero {
        support.push(0.0);
    }
    if d_max <= points as f64 {
        support.extend((1..=d_max as u64).map(|d| d as f64));
        return support;
    }
    let log_max = d_max.ln();
    let mut last = 0.0f64;
    for i in 0..points {
        let d = (log_max * i as f64 / (points - 1) as f64).exp().round();
        if d > last {
            support.push(d);
            last = d;
        }
    }
    support
}

/// Convert log weights to probabilities, weighting each grid point by the
/// width of the frequency band it represents (trapezoidal).
fn normalize(support: &[f64], log_weights: &[f64]) -> Vec<f64> {
    let max_lw = log_weights
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    if !max_lw.is_finite() {
        return vec![0.0; support.len()];
    }
    let mut weights = Vec::with_capacity(support.len());
    for (i, lw) in log_weights.iter().enumerate() {
        let lo = if i == 0 { support[0] } else { support[i - 1] };
        let hi = if i + 1 == support.len() {
            support[i]
        } else {
            support[i + 1]
        };
        let width = ((hi - lo) / 2.0).max(1.0);
        weights.push((lw - max_lw).exp() * width);
    }
    weights
}

/// Estimated moments of the score distribution for one (query, database)
/// pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreDistribution {
    /// Mean of the scores over sampled frequency combinations.
    pub mean: f64,
    /// Standard deviation of those scores.
    pub std_dev: f64,
    /// Number of combinations actually examined.
    pub draws: usize,
}

impl ScoreDistribution {
    /// The Content Summary Selection rule of Figure 3: use the shrunk
    /// summary when the score's standard deviation exceeds its mean.
    pub fn should_use_shrinkage(&self) -> bool {
        self.std_dev > self.mean
    }
}

/// Monte-Carlo estimate of the score distribution.
///
/// `score_fn` receives one `p_k = d_k/|D|` per query word and returns the
/// selection score the base algorithm would assign under those frequencies.
/// Posteriors are accepted through [`std::borrow::Borrow`] so callers may
/// pass owned grids or cached `Arc`s interchangeably.
pub fn score_distribution<R: Rng + ?Sized, P: std::borrow::Borrow<WordPosterior>>(
    posteriors: &[P],
    db_size: f64,
    mut score_fn: impl FnMut(&[f64]) -> f64,
    rng: &mut R,
    config: &UncertaintyConfig,
) -> ScoreDistribution {
    let d_max = db_size.max(1.0);
    let mut ps = vec![0.0f64; posteriors.len()];
    // Welford running moments.
    let mut count = 0usize;
    let mut mean = 0.0f64;
    let mut m2 = 0.0f64;
    let mut last_mean = f64::INFINITY;
    let mut last_std = f64::INFINITY;
    while count < config.max_draws {
        for (p, posterior) in ps.iter_mut().zip(posteriors) {
            *p = posterior.borrow().sample(rng) / d_max;
        }
        let score = score_fn(&ps);
        count += 1;
        let delta = score - mean;
        mean += delta / count as f64;
        m2 += delta * (score - mean);
        if count.is_multiple_of(config.check_every) && count >= 2 * config.check_every {
            let std = (m2 / count as f64).sqrt();
            let mean_stable =
                (mean - last_mean).abs() <= config.rel_tolerance * mean.abs().max(1e-12);
            let std_stable = (std - last_std).abs() <= config.rel_tolerance * std.abs().max(1e-12);
            if mean_stable && std_stable {
                return ScoreDistribution {
                    mean,
                    std_dev: std,
                    draws: count,
                };
            }
            last_mean = mean;
            last_std = std;
        }
    }
    let std = if count > 0 {
        (m2 / count as f64).sqrt()
    } else {
        0.0
    };
    ScoreDistribution {
        mean,
        std_dev: std,
        draws: count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn posterior_concentrates_near_scaled_sample_frequency() {
        // Word in 50 of 100 sample docs, database of 1000 docs → true df
        // near 500.
        let post = WordPosterior::new(50, 100, 1000.0, -2.0, 160);
        let mean = post.mean();
        assert!(
            (300.0..700.0).contains(&mean),
            "posterior mean {mean} near 500"
        );
    }

    #[test]
    fn rare_word_posterior_skews_low() {
        // Word absent from a 100-doc sample of a 10_000-doc database: with a
        // decreasing power-law prior the posterior must sit at small d.
        let post = WordPosterior::new(0, 100, 10_000.0, -2.0, 160);
        assert!(post.mean() < 200.0, "mean {} should be small", post.mean());
    }

    #[test]
    fn absent_word_can_draw_zero() {
        let post = WordPosterior::new(0, 100, 1000.0, -2.0, 160);
        let mut rng = rng();
        let zeros = (0..500).filter(|_| post.sample(&mut rng) == 0.0).count();
        assert!(zeros > 0, "d = 0 must be reachable for s = 0");
    }

    #[test]
    fn present_word_never_draws_zero() {
        let post = WordPosterior::new(3, 100, 1000.0, -2.0, 160);
        let mut rng = rng();
        for _ in 0..500 {
            assert!(post.sample(&mut rng) >= 1.0);
        }
    }

    #[test]
    fn small_database_uses_exact_support() {
        let post = WordPosterior::new(2, 10, 50.0, -2.0, 160);
        // Support is all integers 1..=50.
        assert_eq!(post.support.len(), 50);
        assert_eq!(post.support[0], 1.0);
        assert_eq!(*post.support.last().unwrap(), 50.0);
    }

    #[test]
    fn score_distribution_zero_variance_for_constant_score() {
        let posteriors = vec![WordPosterior::new(10, 100, 1000.0, -2.0, 64)];
        let dist = score_distribution(
            &posteriors,
            1000.0,
            |_| 7.5,
            &mut rng(),
            &UncertaintyConfig::default(),
        );
        assert!((dist.mean - 7.5).abs() < 1e-12);
        assert!(dist.std_dev < 1e-12);
        assert!(!dist.should_use_shrinkage());
        assert!(dist.draws < 2000, "constant score converges early");
    }

    #[test]
    fn uncertain_word_triggers_shrinkage_for_product_scores() {
        // bGlOSS-like score: |D| · Π p_k. A word with s = 0 makes the score
        // wildly uncertain (often 0, sometimes large).
        let posteriors = vec![WordPosterior::new(0, 100, 100_000.0, -1.8, 160)];
        let dist = score_distribution(
            &posteriors,
            100_000.0,
            |ps| 100_000.0 * ps.iter().product::<f64>(),
            &mut rng(),
            &UncertaintyConfig::default(),
        );
        assert!(
            dist.should_use_shrinkage(),
            "std {} vs mean {}",
            dist.std_dev,
            dist.mean
        );
    }

    #[test]
    fn well_sampled_word_does_not_trigger_shrinkage() {
        // Word in 80 of 100 sample docs of a 200-doc database: p is pinned
        // near 0.8, so a p-proportional score is stable.
        let posteriors = vec![WordPosterior::new(80, 100, 200.0, -2.0, 160)];
        let dist = score_distribution(
            &posteriors,
            200.0,
            |ps| ps[0],
            &mut rng(),
            &UncertaintyConfig::default(),
        );
        assert!(
            !dist.should_use_shrinkage(),
            "std {} vs mean {}",
            dist.std_dev,
            dist.mean
        );
    }

    #[test]
    fn moments_are_reproducible_with_seeded_rng() {
        let posteriors = vec![WordPosterior::new(5, 100, 5000.0, -2.0, 160)];
        let score = |ps: &[f64]| ps[0] * 100.0;
        let a = score_distribution(
            &posteriors,
            5000.0,
            score,
            &mut rng(),
            &UncertaintyConfig::default(),
        );
        let b = score_distribution(
            &posteriors,
            5000.0,
            score,
            &mut rng(),
            &UncertaintyConfig::default(),
        );
        assert_eq!(a, b);
    }
}

impl WordPosterior {
    /// First and second moments `(E[d], E[d²])` of the posterior —
    /// exact over the discretized support.
    pub fn raw_moments(&self) -> (f64, f64) {
        let mut prev = 0.0;
        let mut m1 = 0.0;
        let mut m2 = 0.0;
        for (d, c) in self.support.iter().zip(&self.cumulative) {
            let p = c - prev;
            m1 += d * p;
            m2 += d * d * p;
            prev = *c;
        }
        (m1, m2)
    }
}

/// Exact score-distribution moments for *product-form* scores over
/// independent words — the shortcut Section 4 describes: "for a large class
/// of database selection algorithms that assume independence between the
/// query words ... we can calculate the variance for each query word
/// separately, and then combine them into the final score variance."
///
/// The score is `scale · Π_k (a_k·p_k + b_k)` with `p_k = d_k/|D|`
/// (bGlOSS: `scale = |D|, a = 1, b = 0`; LM: `scale = 1,
/// a_k = λ·conversion_k, b_k = (1−λ)·p̂(w_k|G)`). By independence,
/// `E[Π f_k] = Π E[f_k]` and `E[(Π f_k)²] = Π E[f_k²]`, giving the mean and
/// variance in closed form — no Monte-Carlo sampling, no randomness.
pub fn product_score_distribution<P: std::borrow::Borrow<WordPosterior>>(
    posteriors: &[P],
    db_size: f64,
    scale: f64,
    coefficients: &[(f64, f64)],
) -> ScoreDistribution {
    assert_eq!(posteriors.len(), coefficients.len());
    let d_max = db_size.max(1.0);
    let mut mean = scale;
    let mut second = scale * scale;
    for (posterior, &(a, b)) in posteriors.iter().zip(coefficients) {
        let (m1, m2) = posterior.borrow().raw_moments();
        let (p1, p2) = (m1 / d_max, m2 / (d_max * d_max));
        // E[a·p + b] and E[(a·p + b)²].
        mean *= a * p1 + b;
        second *= a * a * p2 + 2.0 * a * b * p1 + b * b;
    }
    let variance = (second - mean * mean).max(0.0);
    ScoreDistribution {
        mean,
        std_dev: variance.sqrt(),
        draws: 0,
    }
}

#[cfg(test)]
mod product_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn raw_moments_match_definition_on_small_support() {
        // Small db → exact integer support; verify against brute force.
        let post = WordPosterior::new(2, 10, 20.0, -1.5, 64);
        let (m1, m2) = post.raw_moments();
        assert!(m1 > 0.0 && m2 >= m1 * m1 - 1e-9);
        // Var >= 0 and E[d²] >= E[d]² (Jensen).
        assert!(m2 + 1e-12 >= m1 * m1);
    }

    #[test]
    fn exact_moments_agree_with_monte_carlo_for_bgloss() {
        let posteriors = vec![
            WordPosterior::new(5, 100, 2000.0, -2.0, 160),
            WordPosterior::new(0, 100, 2000.0, -2.0, 160),
        ];
        let coeffs = vec![(1.0, 0.0); 2];
        let exact = product_score_distribution(&posteriors, 2000.0, 2000.0, &coeffs);
        // Monte-Carlo estimate of the same score.
        let mut rng = StdRng::seed_from_u64(5);
        let config = UncertaintyConfig {
            max_draws: 60_000,
            check_every: 60_000,
            ..Default::default()
        };
        let mc = score_distribution(
            &posteriors,
            2000.0,
            |p| 2000.0 * p.iter().product::<f64>(),
            &mut rng,
            &config,
        );
        let mean_err = (exact.mean - mc.mean).abs() / exact.mean.max(1e-12);
        assert!(mean_err < 0.1, "exact {} vs MC {}", exact.mean, mc.mean);
        let std_err = (exact.std_dev - mc.std_dev).abs() / exact.std_dev.max(1e-12);
        assert!(
            std_err < 0.15,
            "exact σ {} vs MC σ {}",
            exact.std_dev,
            mc.std_dev
        );
    }

    #[test]
    fn affine_coefficients_shift_the_mean() {
        let posteriors = vec![WordPosterior::new(10, 100, 1000.0, -2.0, 160)];
        let bare = product_score_distribution(&posteriors, 1000.0, 1.0, &[(1.0, 0.0)]);
        let smoothed = product_score_distribution(&posteriors, 1000.0, 1.0, &[(0.5, 0.2)]);
        assert!((smoothed.mean - (0.5 * bare.mean + 0.2)).abs() < 1e-12);
        assert!(
            smoothed.std_dev < bare.std_dev,
            "smoothing shrinks dispersion"
        );
    }

    #[test]
    fn exact_distribution_is_deterministic() {
        let posteriors = vec![WordPosterior::new(3, 100, 5000.0, -1.8, 160)];
        let a = product_score_distribution(&posteriors, 5000.0, 5000.0, &[(1.0, 0.0)]);
        let b = product_score_distribution(&posteriors, 5000.0, 5000.0, &[(1.0, 0.0)]);
        assert_eq!(a, b);
        assert_eq!(a.draws, 0, "no sampling involved");
    }
}
