//! Topic hierarchies: the classification scheme shrinkage operates over.
//!
//! The paper uses a 72-node, 4-level subset of the Open Directory Project
//! hierarchy with 54 leaf categories (Section 5.1). [`Hierarchy::odp_like`]
//! builds a tree with exactly that shape. The structure is generic, though —
//! any rooted tree works, and the corpus generator and shrinkage code only
//! rely on the operations defined here.

/// Identifier of a category: its index in the hierarchy's node table.
/// The root is always category `0`.
pub type CategoryId = usize;

/// One node of the topic hierarchy.
#[derive(Debug, Clone)]
pub struct Category {
    /// Short name of this node (unique within its siblings).
    pub name: String,
    /// Parent node; `None` only for the root.
    pub parent: Option<CategoryId>,
    /// Child categories, in insertion order.
    pub children: Vec<CategoryId>,
    /// Distance from the root (root = 0).
    pub depth: usize,
}

/// A rooted category tree.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    nodes: Vec<Category>,
}

impl Hierarchy {
    /// Create a hierarchy containing only a root named `root_name`.
    pub fn new(root_name: impl Into<String>) -> Self {
        Hierarchy {
            nodes: vec![Category {
                name: root_name.into(),
                parent: None,
                children: Vec::new(),
                depth: 0,
            }],
        }
    }

    /// The root category id (always 0).
    pub const ROOT: CategoryId = 0;

    /// Add a child of `parent` named `name` and return its id.
    ///
    /// # Panics
    /// Panics if `parent` is not a valid category id.
    pub fn add_child(&mut self, parent: CategoryId, name: impl Into<String>) -> CategoryId {
        let depth = self.nodes[parent].depth + 1;
        let id = self.nodes.len();
        self.nodes.push(Category {
            name: name.into(),
            parent: Some(parent),
            children: Vec::new(),
            depth,
        });
        self.nodes[parent].children.push(id);
        id
    }

    /// Number of categories (including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// A hierarchy always contains at least the root.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The node for `id`.
    pub fn category(&self, id: CategoryId) -> &Category {
        &self.nodes[id]
    }

    /// Short name of `id`.
    pub fn name(&self, id: CategoryId) -> &str {
        &self.nodes[id].name
    }

    /// Children of `id`.
    pub fn children(&self, id: CategoryId) -> &[CategoryId] {
        &self.nodes[id].children
    }

    /// Parent of `id` (`None` for the root).
    pub fn parent(&self, id: CategoryId) -> Option<CategoryId> {
        self.nodes[id].parent
    }

    /// Depth of `id` (root = 0).
    pub fn depth(&self, id: CategoryId) -> usize {
        self.nodes[id].depth
    }

    /// Is `id` a leaf (no children)?
    pub fn is_leaf(&self, id: CategoryId) -> bool {
        self.nodes[id].children.is_empty()
    }

    /// All leaf categories, in id order.
    pub fn leaves(&self) -> Vec<CategoryId> {
        (0..self.nodes.len())
            .filter(|&id| self.is_leaf(id))
            .collect()
    }

    /// All category ids, root first.
    pub fn ids(&self) -> impl Iterator<Item = CategoryId> {
        0..self.nodes.len()
    }

    /// The path `[root, ..., id]` from the root down to `id`, inclusive.
    pub fn path_from_root(&self, id: CategoryId) -> Vec<CategoryId> {
        let mut path = Vec::with_capacity(self.nodes[id].depth + 1);
        let mut cur = Some(id);
        while let Some(c) = cur {
            path.push(c);
            cur = self.nodes[c].parent;
        }
        path.reverse();
        path
    }

    /// Is `ancestor` an ancestor of (or equal to) `id`?
    pub fn is_ancestor_or_self(&self, ancestor: CategoryId, id: CategoryId) -> bool {
        let mut cur = Some(id);
        while let Some(c) = cur {
            if c == ancestor {
                return true;
            }
            cur = self.nodes[c].parent;
        }
        false
    }

    /// All categories in the subtree rooted at `id` (including `id`),
    /// in pre-order.
    pub fn subtree(&self, id: CategoryId) -> Vec<CategoryId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(c) = stack.pop() {
            out.push(c);
            // Push in reverse so children come out in insertion order.
            stack.extend(self.nodes[c].children.iter().rev());
        }
        out
    }

    /// Full slash-separated path name, e.g. `Root/Health/Diseases/AIDS`.
    pub fn full_name(&self, id: CategoryId) -> String {
        let path = self.path_from_root(id);
        let mut s = String::new();
        for (i, c) in path.iter().enumerate() {
            if i > 0 {
                s.push('/');
            }
            s.push_str(&self.nodes[*c].name);
        }
        s
    }

    /// Find a category by its short name (first match in id order).
    pub fn find(&self, name: &str) -> Option<CategoryId> {
        self.nodes.iter().position(|n| n.name == name)
    }

    /// Resolve a slash-separated path like `Health/Diseases/AIDS` (relative
    /// to the root), creating any missing nodes along the way. Returns the
    /// final node; an empty path returns the root.
    pub fn ensure_path(&mut self, path: &str) -> CategoryId {
        let mut node = Hierarchy::ROOT;
        for segment in path.split('/').filter(|s| !s.is_empty()) {
            node = match self
                .children(node)
                .iter()
                .find(|&&c| self.name(c) == segment)
            {
                Some(&existing) => existing,
                None => self.add_child(node, segment),
            };
        }
        node
    }

    /// A 72-node, 4-level hierarchy with 54 leaves, shaped like the Open
    /// Directory subset in the paper's experiments: a root, 8 top-level
    /// categories, 3 second-level categories each, and 39 third-level
    /// categories under 9 of the second-level nodes.
    pub fn odp_like() -> Self {
        type LevelTwo<'a> = (&'a str, &'a [&'a str]);
        let spec: &[(&str, &[LevelTwo<'_>])] = &[
            (
                "Arts",
                &[
                    ("Literature", &["Texts", "Poetry", "Drama", "Classics"]),
                    ("Music", &[]),
                    ("Movies", &[]),
                ],
            ),
            (
                "Business",
                &[
                    (
                        "Finance",
                        &["Banking", "Investing", "Insurance", "Accounting"],
                    ),
                    ("Industries", &[]),
                    ("Marketing", &[]),
                ],
            ),
            (
                "Computers",
                &[
                    (
                        "Programming",
                        &["Java", "Cpp", "Perl", "Python", "Databases"],
                    ),
                    ("Internet", &[]),
                    ("Hardware", &[]),
                ],
            ),
            (
                "Health",
                &[
                    (
                        "Diseases",
                        &["AIDS", "Cancer", "Diabetes", "Heart", "Asthma"],
                    ),
                    ("Fitness", &[]),
                    ("Medicine", &[]),
                ],
            ),
            (
                "Recreation",
                &[
                    ("Travel", &["Europe", "Asia", "Americas", "Africa"]),
                    ("Outdoors", &[]),
                    ("Humor", &[]),
                ],
            ),
            (
                "Science",
                &[
                    ("Biology", &["Genetics", "Ecology", "Zoology", "Botany"]),
                    ("Mathematics", &[]),
                    (
                        "SocialSciences",
                        &["Economics", "History", "Psychology", "Linguistics"],
                    ),
                ],
            ),
            (
                "Society",
                &[
                    ("Politics", &["Elections", "Parties", "Activism", "Policy"]),
                    ("Law", &[]),
                    ("Religion", &[]),
                ],
            ),
            (
                "Sports",
                &[
                    (
                        "Soccer",
                        &["UEFA", "WorldCup", "Leagues", "Clubs", "Players"],
                    ),
                    ("Basketball", &[]),
                    ("Tennis", &[]),
                ],
            ),
        ];
        let mut h = Hierarchy::new("Root");
        for &(top, subs) in spec {
            let t = h.add_child(Hierarchy::ROOT, top);
            for &(sub, leaves) in subs {
                let s = h.add_child(t, sub);
                for &leaf in leaves {
                    h.add_child(s, leaf);
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn odp_like_has_paper_shape() {
        let h = Hierarchy::odp_like();
        assert_eq!(h.len(), 72, "72 nodes");
        assert_eq!(h.leaves().len(), 54, "54 leaf categories");
        let max_depth = h.ids().map(|c| h.depth(c)).max().unwrap();
        assert_eq!(max_depth, 3, "4 levels including the root");
    }

    #[test]
    fn path_from_root_is_rooted_and_ordered() {
        let h = Hierarchy::odp_like();
        let aids = h.find("AIDS").unwrap();
        let path = h.path_from_root(aids);
        let names: Vec<_> = path.iter().map(|&c| h.name(c)).collect();
        assert_eq!(names, vec!["Root", "Health", "Diseases", "AIDS"]);
    }

    #[test]
    fn full_name_joins_path() {
        let h = Hierarchy::odp_like();
        let aids = h.find("AIDS").unwrap();
        assert_eq!(h.full_name(aids), "Root/Health/Diseases/AIDS");
    }

    #[test]
    fn ancestors() {
        let h = Hierarchy::odp_like();
        let health = h.find("Health").unwrap();
        let aids = h.find("AIDS").unwrap();
        let sports = h.find("Sports").unwrap();
        assert!(h.is_ancestor_or_self(Hierarchy::ROOT, aids));
        assert!(h.is_ancestor_or_self(health, aids));
        assert!(h.is_ancestor_or_self(aids, aids));
        assert!(!h.is_ancestor_or_self(sports, aids));
        assert!(!h.is_ancestor_or_self(aids, health));
    }

    #[test]
    fn subtree_contains_all_descendants() {
        let h = Hierarchy::odp_like();
        let health = h.find("Health").unwrap();
        let sub = h.subtree(health);
        assert_eq!(sub[0], health);
        // Health + {Diseases, Fitness, Medicine} + 5 disease leaves = 9.
        assert_eq!(sub.len(), 9);
        assert!(sub.contains(&h.find("Cancer").unwrap()));
    }

    #[test]
    fn add_child_tracks_depth_and_parent() {
        let mut h = Hierarchy::new("R");
        let a = h.add_child(Hierarchy::ROOT, "A");
        let b = h.add_child(a, "B");
        assert_eq!(h.depth(b), 2);
        assert_eq!(h.parent(b), Some(a));
        assert_eq!(h.children(a), &[b]);
        assert!(h.is_leaf(b));
        assert!(!h.is_leaf(a));
    }

    #[test]
    fn find_returns_none_for_unknown() {
        assert!(Hierarchy::odp_like().find("Astrology").is_none());
    }

    #[test]
    fn leaves_have_no_children() {
        let h = Hierarchy::odp_like();
        for leaf in h.leaves() {
            assert!(h.children(leaf).is_empty());
        }
    }

    #[test]
    fn category_accessor_returns_node() {
        let h = Hierarchy::odp_like();
        let health = h.find("Health").unwrap();
        let node = h.category(health);
        assert_eq!(node.name, "Health");
        assert_eq!(node.parent, Some(Hierarchy::ROOT));
        assert_eq!(node.depth, 1);
        assert_eq!(node.children.len(), 3);
        assert!(!h.is_empty());
    }

    #[test]
    fn ensure_path_creates_and_reuses_nodes() {
        let mut h = Hierarchy::new("Root");
        let aids = h.ensure_path("Health/Diseases/AIDS");
        assert_eq!(h.full_name(aids), "Root/Health/Diseases/AIDS");
        assert_eq!(h.len(), 4);
        // Reusing a prefix creates only the new suffix.
        let cancer = h.ensure_path("Health/Diseases/Cancer");
        assert_eq!(h.len(), 5);
        assert_eq!(h.parent(cancer), h.parent(aids));
        // Idempotent.
        assert_eq!(h.ensure_path("Health/Diseases/AIDS"), aids);
        assert_eq!(h.len(), 5);
        // Empty path is the root.
        assert_eq!(h.ensure_path(""), Hierarchy::ROOT);
    }
}
