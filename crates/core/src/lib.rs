//! `dbselect-core` — the primary contribution of the reproduced paper:
//! shrinkage-based content summaries for text database selection.
//!
//! Reproduces Ipeirotis & Gravano, *"When one Sample is not Enough:
//! Improving Text Database Selection Using Shrinkage"* (SIGMOD 2004):
//!
//! * [`summary`] — database content summaries (Definitions 1 and 2);
//! * [`hierarchy`] — topic hierarchies, including the 72-node ODP-like tree
//!   of the paper's experiments;
//! * [`category_summary`] — category content summaries (Definition 3,
//!   Equation 1) with overlap subtraction;
//! * [`shrinkage`] — shrunk summaries via EM over the category path
//!   (Definition 4, Figure 2);
//! * [`freqest`] — absolute word-frequency estimation via Mandelbrot's law
//!   (Appendix A);
//! * [`uncertainty`] — the score-uncertainty estimation that decides, per
//!   query and database, whether shrinkage should be applied (Section 4,
//!   Appendix B, Figure 3).
//!
//! # Quick tour
//!
//! ```
//! use dbselect_core::prelude::*;
//! use textindex::Document;
//!
//! // A two-level hierarchy and two tiny "databases".
//! let mut h = Hierarchy::new("Root");
//! let health = h.add_child(Hierarchy::ROOT, "Health");
//! let heart = h.add_child(health, "Heart");
//!
//! // Database sample: term 1 = "blood", term 2 = "hypertension".
//! let d1_docs = vec![Document::from_tokens(0, vec![1])];
//! let d2_docs = vec![Document::from_tokens(0, vec![1, 2])];
//! let s1 = ContentSummary::from_sample(d1_docs.iter(), 100.0);
//! let s2 = ContentSummary::from_sample(d2_docs.iter(), 100.0);
//!
//! let cats = CategorySummaries::build(&h, &[(heart, &s1), (heart, &s2)],
//!                                     CategoryWeighting::BySize);
//! let comps = cats.components_for(&h, heart, &s1, true);
//! let shrunk = shrink(&s1, &comps, &ShrinkageConfig::default());
//!
//! // "hypertension" (term 2) was missing from D1's sample, but the shrunk
//! // summary recovers it from the sibling database.
//! assert_eq!(s1.p_df(2), 0.0);
//! assert!(shrunk.p_df(2) > 0.0);
//! ```

pub mod category_summary;
pub mod freqest;
pub mod frozen;
pub mod hierarchy;
pub mod shrinkage;
pub mod summary;
pub mod uncertainty;

/// The most commonly used items, re-exported.
pub mod prelude {
    pub use crate::category_summary::{CategorySummaries, CategoryWeighting, SummaryComponent};
    pub use crate::freqest::{
        apply_frequency_estimation, checkpoint, FrequencyEstimator, MandelbrotCheckpoint,
    };
    pub use crate::frozen::FrozenSummary;
    pub use crate::hierarchy::{Category, CategoryId, Hierarchy};
    pub use crate::shrinkage::{shrink, ProbabilityModel, ShrinkageConfig, ShrunkSummary};
    pub use crate::summary::{ContentSummary, SummaryView, WordStats};
    pub use crate::uncertainty::{
        score_distribution, ScoreDistribution, UncertaintyConfig, WordPosterior,
    };
}

pub use prelude::*;
