//! Database content summaries (Definitions 1 and 2 of the paper).
//!
//! A content summary `S(D)` holds the number of documents `|D|` and, for
//! every word `w`, the fraction `p(w|D)` of documents containing `w`.
//! Approximate summaries `Ŝ(D)` estimate both from a document sample.
//!
//! This reproduction additionally tracks term-frequency statistics, because
//! the LM selection algorithm and the KL metric define `p(w|D)` over token
//! occurrences (`tf(w,D) / Σ tf`) rather than document counts (Section 5.3).

use std::collections::HashMap;

use textindex::{Document, IndexedDatabase, TermId};

/// Per-word statistics of a content summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WordStats {
    /// Number of *sample* documents containing the word (exact count; equals
    /// the database document frequency for perfect summaries). This drives
    /// the score-uncertainty estimation of Section 4.
    pub sample_df: u32,
    /// Estimated number of documents in `D` containing the word.
    pub df: f64,
    /// Estimated total occurrences of the word in `D`.
    pub tf: f64,
}

/// A (possibly approximate) content summary of one database.
#[derive(Debug, Clone)]
pub struct ContentSummary {
    /// Estimated database size `|D̂|` (number of documents).
    db_size: f64,
    /// Number of documents the summary was computed from (`|S|`).
    sample_size: u32,
    /// Cached `Σ_w tf(w)` over the summary's estimates.
    total_tf: f64,
    /// Power-law exponent `γ` of the word document-frequency distribution,
    /// available once frequency estimation (Appendix A) has run.
    gamma: Option<f64>,
    words: HashMap<TermId, WordStats>,
}

impl ContentSummary {
    /// Assemble a summary from per-word statistics.
    pub fn new(db_size: f64, sample_size: u32, words: HashMap<TermId, WordStats>) -> Self {
        // Sum in key order so the cached total is independent of the map's
        // iteration order (bit-for-bit reproducibility).
        let mut tfs: Vec<(TermId, f64)> = words.iter().map(|(&t, w)| (t, w.tf)).collect();
        tfs.sort_unstable_by_key(|&(t, _)| t);
        let total_tf = tfs.iter().map(|&(_, tf)| tf).sum();
        ContentSummary {
            db_size,
            sample_size,
            total_tf,
            gamma: None,
            words,
        }
    }

    /// Build an approximate summary from a document sample (Definition 2),
    /// scaling document and term frequencies by `db_size / |S|` so that `df`
    /// estimates absolute counts in `D`.
    pub fn from_sample<'a>(docs: impl IntoIterator<Item = &'a Document>, db_size: f64) -> Self {
        let mut words: HashMap<TermId, WordStats> = HashMap::new();
        let mut sample_size = 0u32;
        for doc in docs {
            sample_size += 1;
            for term in doc.distinct_terms() {
                words
                    .entry(term)
                    .or_insert(WordStats {
                        sample_df: 0,
                        df: 0.0,
                        tf: 0.0,
                    })
                    .sample_df += 1;
            }
            for &term in &doc.tokens {
                words.get_mut(&term).expect("distinct term present").tf += 1.0;
            }
        }
        let scale = if sample_size == 0 {
            0.0
        } else {
            db_size / f64::from(sample_size)
        };
        for stats in words.values_mut() {
            stats.df = f64::from(stats.sample_df) * scale;
            stats.tf *= scale;
        }
        ContentSummary::new(db_size, sample_size, words)
    }

    /// Build the *perfect* summary of a database by examining every document
    /// (Definition 1) — the evaluation gold standard.
    pub fn perfect(db: &IndexedDatabase) -> Self {
        let index = db.index();
        let n = index.num_docs();
        let words = index
            .terms()
            .map(|(term, list)| {
                let df = list.document_frequency() as u32;
                (
                    term,
                    WordStats {
                        sample_df: df,
                        df: f64::from(df),
                        tf: list.collection_frequency as f64,
                    },
                )
            })
            .collect();
        ContentSummary::new(n as f64, n as u32, words)
    }

    /// Estimated number of documents `|D̂|`.
    pub fn db_size(&self) -> f64 {
        self.db_size
    }

    /// Replace the database-size estimate, rescaling `df`/`tf` estimates
    /// that were derived by sample scaling.
    pub fn set_db_size(&mut self, db_size: f64) {
        if self.db_size > 0.0 {
            let rescale = db_size / self.db_size;
            for stats in self.words.values_mut() {
                stats.df *= rescale;
                stats.tf *= rescale;
            }
            self.total_tf *= rescale;
        }
        self.db_size = db_size;
    }

    /// Number of sample documents the summary was built from.
    pub fn sample_size(&self) -> u32 {
        self.sample_size
    }

    /// `Σ_w tf(w)`: the estimated token count of the database (CORI's
    /// `cw(D)`).
    pub fn total_tf(&self) -> f64 {
        self.total_tf
    }

    /// Power-law exponent `γ`, if frequency estimation has run.
    pub fn gamma(&self) -> Option<f64> {
        self.gamma
    }

    /// Record the power-law exponent `γ` (Appendix B).
    pub fn set_gamma(&mut self, gamma: f64) {
        self.gamma = Some(gamma);
    }

    /// Statistics for `term`, if present in the summary.
    pub fn word(&self, term: TermId) -> Option<&WordStats> {
        self.words.get(&term)
    }

    /// Overwrite the statistics for `term` (used by frequency estimation).
    pub fn set_word(&mut self, term: TermId, stats: WordStats) {
        let old_tf = self.words.get(&term).map_or(0.0, |w| w.tf);
        self.total_tf += stats.tf - old_tf;
        self.words.insert(term, stats);
    }

    /// Number of distinct words in the summary.
    pub fn vocabulary_size(&self) -> usize {
        self.words.len()
    }

    /// Iterate over `(term, stats)` in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &WordStats)> {
        self.words.iter().map(|(&t, s)| (t, s))
    }

    /// The estimated fraction of documents containing `term`:
    /// `p̂(w|D) = df / |D̂|` (0 for absent words).
    pub fn p_df(&self, term: TermId) -> f64 {
        if self.db_size == 0.0 {
            return 0.0;
        }
        self.words.get(&term).map_or(0.0, |w| w.df / self.db_size)
    }

    /// The estimated token-level probability `tf(w) / Σ tf` used by the LM
    /// algorithm (0 for absent words).
    pub fn p_tf(&self, term: TermId) -> f64 {
        if self.total_tf == 0.0 {
            return 0.0;
        }
        self.words.get(&term).map_or(0.0, |w| w.tf / self.total_tf)
    }
}

/// Read-only view shared by approximate, perfect, and shrunk summaries:
/// everything a database selection algorithm needs.
pub trait SummaryView {
    /// Estimated database size `|D̂|`.
    fn db_size(&self) -> f64;
    /// Estimated fraction of documents containing `term`.
    fn p_df(&self, term: TermId) -> f64;
    /// Estimated token-level probability of `term`.
    fn p_tf(&self, term: TermId) -> f64;
    /// Estimated total token count (CORI's `cw(D)`).
    fn word_count(&self) -> f64;

    /// Does the summary "effectively" contain `term`, i.e.
    /// `round(|D̂| · p̂(w|D)) ≥ 1`? The paper uses this rule both when
    /// computing CORI's `cf(w)` over shrunk summaries (Section 5.3) and when
    /// evaluating recall/precision (Section 6.1).
    fn effectively_contains(&self, term: TermId) -> bool {
        (self.db_size() * self.p_df(term)).round() >= 1.0
    }
}

impl SummaryView for ContentSummary {
    fn db_size(&self) -> f64 {
        self.db_size
    }

    fn p_df(&self, term: TermId) -> f64 {
        ContentSummary::p_df(self, term)
    }

    fn p_tf(&self, term: TermId) -> f64 {
        ContentSummary::p_tf(self, term)
    }

    fn word_count(&self) -> f64 {
        self.total_tf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(id: u32, terms: &[TermId]) -> Document {
        Document::from_tokens(id, terms.to_vec())
    }

    #[test]
    fn from_sample_counts_document_frequencies() {
        // Sample of 2 docs standing in for a database of 10.
        let docs = [doc(0, &[1, 1, 2]), doc(1, &[1, 3])];
        let s = ContentSummary::from_sample(docs.iter(), 10.0);
        assert_eq!(s.sample_size(), 2);
        assert_eq!(s.db_size(), 10.0);
        // Term 1 in 2/2 sample docs → df estimate 10, p_df = 1.0.
        assert_eq!(s.word(1).unwrap().sample_df, 2);
        assert!((s.p_df(1) - 1.0).abs() < 1e-12);
        // Term 2 in 1/2 sample docs → p_df = 0.5.
        assert!((s.p_df(2) - 0.5).abs() < 1e-12);
        // tf: term 1 occurs 3 times in sample of 5 tokens → scaled tf 15.
        assert!((s.word(1).unwrap().tf - 15.0).abs() < 1e-12);
        assert!((s.p_tf(1) - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_summary_matches_index_stats() {
        let db = IndexedDatabase::new("d", vec![doc(0, &[1, 2]), doc(1, &[1]), doc(2, &[3])]);
        let s = ContentSummary::perfect(&db);
        assert_eq!(s.db_size(), 3.0);
        assert_eq!(s.sample_size(), 3);
        assert!((s.p_df(1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.p_df(3) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.p_df(99), 0.0);
        assert_eq!(s.vocabulary_size(), 3);
    }

    #[test]
    fn set_db_size_rescales_estimates() {
        let docs = [doc(0, &[1]), doc(1, &[1, 2])];
        let mut s = ContentSummary::from_sample(docs.iter(), 2.0);
        assert!((s.word(1).unwrap().df - 2.0).abs() < 1e-12);
        s.set_db_size(20.0);
        assert!((s.word(1).unwrap().df - 20.0).abs() < 1e-12);
        // p_df is invariant under size re-estimation.
        assert!((s.p_df(2) - 0.5).abs() < 1e-12);
        assert!((s.total_tf() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn effectively_contains_uses_rounding_rule() {
        let mut words = HashMap::new();
        words.insert(
            1,
            WordStats {
                sample_df: 1,
                df: 0.4,
                tf: 0.4,
            },
        );
        words.insert(
            2,
            WordStats {
                sample_df: 1,
                df: 0.6,
                tf: 0.6,
            },
        );
        let s = ContentSummary::new(100.0, 10, words);
        assert!(!s.effectively_contains(1), "round(0.4) < 1");
        assert!(s.effectively_contains(2), "round(0.6) >= 1");
        assert!(!s.effectively_contains(42));
    }

    #[test]
    fn set_word_updates_total_tf() {
        let docs = [doc(0, &[1, 2])];
        let mut s = ContentSummary::from_sample(docs.iter(), 1.0);
        let before = s.total_tf();
        s.set_word(
            1,
            WordStats {
                sample_df: 1,
                df: 5.0,
                tf: 7.0,
            },
        );
        assert!((s.total_tf() - (before - 1.0 + 7.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_sample_is_safe() {
        let s = ContentSummary::from_sample(std::iter::empty(), 0.0);
        assert_eq!(s.vocabulary_size(), 0);
        assert_eq!(s.p_df(0), 0.0);
        assert_eq!(s.p_tf(0), 0.0);
    }
}
