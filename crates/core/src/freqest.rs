//! Word-frequency estimation (Appendix A of the paper).
//!
//! A sample-derived summary knows the *sample* document frequency of each
//! word, but database selection algorithms like CORI want absolute document
//! frequencies in the full database. Appendix A estimates them via a
//! simplified Mandelbrot law `f = β·rᵅ` (`r` = frequency rank, `f` =
//! document frequency):
//!
//! 1. at several points during sampling, fit `(α, log β)` to the sample's
//!    rank-frequency curve (log-log least squares);
//! 2. regress `α = A₁·log|S| + A₂` and `log β = B₁·log|S| + B₂` over those
//!    checkpoints;
//! 3. estimate the database size `|D̂|` (sample-resample, in the `sampling`
//!    crate) and substitute it for `|S|` to get database-level `(α, β)`;
//! 4. a word at sample rank `r` then has estimated frequency `β·rᵅ`
//!    (Equation 5).
//!
//! Words that were issued as single-word query probes have *exact* document
//! frequencies (the reported match counts), so estimation is only applied to
//! the rest. The power-law exponent `γ = 1/α − 1` of the word-frequency
//! distribution (Appendix B) is also derived here for the score-uncertainty
//! machinery.

use std::collections::HashMap;

use textindex::TermId;

use crate::summary::{ContentSummary, WordStats};

/// Ordinary least squares fit `y = slope·x + intercept`.
///
/// Returns `None` when fewer than two distinct x values are given.
pub fn linear_regression(points: &[(f64, f64)]) -> Option<(f64, f64)> {
    let n = points.len() as f64;
    if points.len() < 2 {
        return None;
    }
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
    let sxx: f64 = points.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
    if sxx <= 0.0 {
        return None;
    }
    let sxy: f64 = points.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum();
    let slope = sxy / sxx;
    Some((slope, mean_y - slope * mean_x))
}

/// Fit the simplified Mandelbrot law `f = β·rᵅ` to a rank/frequency curve
/// by least squares on `log f = α·log r + log β`.
///
/// `rank_freq` holds `(rank, frequency)` pairs with `rank ≥ 1` and
/// `frequency ≥ 1`. Returns `(α, log β)`, or `None` for degenerate input.
pub fn fit_mandelbrot(rank_freq: &[(f64, f64)]) -> Option<(f64, f64)> {
    let logs: Vec<(f64, f64)> = rank_freq
        .iter()
        .filter(|&&(r, f)| r >= 1.0 && f > 0.0)
        .map(|&(r, f)| (r.ln(), f.ln()))
        .collect();
    linear_regression(&logs)
}

/// One observation of the sample's Mandelbrot parameters at a given sample
/// size, collected while sampling is in progress.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MandelbrotCheckpoint {
    /// Sample size `|S|` at which the fit was taken.
    pub sample_size: u32,
    /// Fitted exponent `α` (negative: frequency falls with rank).
    pub alpha: f64,
    /// Fitted `log β`.
    pub log_beta: f64,
}

/// Compute the rank/frequency curve of a sample summary: words sorted by
/// descending sample document frequency, rank starting at 1.
pub fn sample_rank_frequency(summary: &ContentSummary) -> Vec<(f64, f64)> {
    let mut dfs: Vec<u32> = summary.iter().map(|(_, s)| s.sample_df).collect();
    dfs.sort_unstable_by(|a, b| b.cmp(a));
    dfs.iter()
        .enumerate()
        .map(|(i, &df)| ((i + 1) as f64, f64::from(df)))
        .collect()
}

/// Take a checkpoint: fit the Mandelbrot law to `summary`'s current sample.
pub fn checkpoint(summary: &ContentSummary) -> Option<MandelbrotCheckpoint> {
    let curve = sample_rank_frequency(summary);
    let (alpha, log_beta) = fit_mandelbrot(&curve)?;
    Some(MandelbrotCheckpoint {
        sample_size: summary.sample_size(),
        alpha,
        log_beta,
    })
}

/// The database-level frequency estimator: the regressions of Equations
/// 4a/4b, ready to be evaluated at the estimated database size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrequencyEstimator {
    /// `α = a1·log|S| + a2`.
    pub a1: f64,
    /// Intercept of the `α` regression.
    pub a2: f64,
    /// `log β = b1·log|S| + b2`.
    pub b1: f64,
    /// Intercept of the `log β` regression.
    pub b2: f64,
}

impl FrequencyEstimator {
    /// Regress the checkpoints. Needs at least two checkpoints at distinct
    /// sample sizes.
    pub fn from_checkpoints(checkpoints: &[MandelbrotCheckpoint]) -> Option<Self> {
        let alpha_pts: Vec<(f64, f64)> = checkpoints
            .iter()
            .map(|c| (f64::from(c.sample_size).ln(), c.alpha))
            .collect();
        let beta_pts: Vec<(f64, f64)> = checkpoints
            .iter()
            .map(|c| (f64::from(c.sample_size).ln(), c.log_beta))
            .collect();
        let (a1, a2) = linear_regression(&alpha_pts)?;
        let (b1, b2) = linear_regression(&beta_pts)?;
        Some(FrequencyEstimator { a1, a2, b1, b2 })
    }

    /// The Mandelbrot parameters `(α, β)` extrapolated to a collection of
    /// `size` documents (Equations 4a/4b with `|D̂|` substituted for `|S|`).
    ///
    /// `α` is clamped below zero: a rank-frequency curve is decreasing by
    /// construction, but the linear extrapolation of Equation 4a can
    /// overshoot for database sizes far beyond the checkpoints.
    pub fn params_for_size(&self, size: f64) -> (f64, f64) {
        let log_size = size.max(1.0).ln();
        let alpha = (self.a1 * log_size + self.a2).min(-0.05);
        let beta = (self.b1 * log_size + self.b2).exp();
        (alpha, beta)
    }

    /// Estimated document frequency of the word at sample rank `r`
    /// (1-based) in a database of `size` documents (Equation 5).
    pub fn estimate_df(&self, rank: usize, size: f64) -> f64 {
        let (alpha, beta) = self.params_for_size(size);
        (beta * (rank as f64).powf(alpha)).clamp(0.0, size)
    }

    /// The power-law exponent `γ = 1/α − 1` of the document-frequency
    /// distribution (Appendix B), evaluated at database size `size`.
    pub fn gamma(&self, size: f64) -> f64 {
        let (alpha, _) = self.params_for_size(size);
        if alpha == 0.0 {
            return -2.0; // sensible default for a Zipf-like collection
        }
        1.0 / alpha - 1.0
    }
}

/// Apply frequency estimation to a sample summary (Appendix A):
///
/// * words in `exact_df` (single-word probes with observed match counts)
///   get their exact database frequency;
/// * all others get the Mandelbrot estimate for their sample rank, never
///   dropping below the raw sample-scaled estimate's sample count and never
///   exceeding the database size.
///
/// `db_size` is the (estimated) database size; the summary is rescaled to it
/// first. Also records `γ` on the summary for the uncertainty machinery.
pub fn apply_frequency_estimation(
    summary: &mut ContentSummary,
    estimator: &FrequencyEstimator,
    exact_df: &HashMap<TermId, u32>,
    db_size: f64,
) {
    summary.set_db_size(db_size);
    summary.set_gamma(estimator.gamma(db_size));
    // Rank words by sample df descending; ties broken by term id so the
    // assignment is deterministic.
    let mut by_df: Vec<(TermId, WordStats)> = summary.iter().map(|(t, s)| (t, *s)).collect();
    by_df.sort_unstable_by(|a, b| b.1.sample_df.cmp(&a.1.sample_df).then(a.0.cmp(&b.0)));
    for (rank0, (term, stats)) in by_df.into_iter().enumerate() {
        let df = match exact_df.get(&term) {
            Some(&observed) => f64::from(observed),
            None => {
                let est = estimator.estimate_df(rank0 + 1, db_size);
                // The word occurred in the sample, so its database frequency
                // is at least its sample frequency.
                est.max(f64::from(stats.sample_df)).min(db_size)
            }
        };
        // Keep the tf/df ratio of the raw estimate (occurrences per
        // containing document) when rescaling tf.
        let per_doc_tf = if stats.df > 0.0 {
            stats.tf / stats.df
        } else {
            1.0
        };
        summary.set_word(
            term,
            WordStats {
                sample_df: stats.sample_df,
                df,
                tf: df * per_doc_tf,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use textindex::Document;

    #[test]
    fn linear_regression_recovers_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 - 2.0)).collect();
        let (slope, intercept) = linear_regression(&pts).unwrap();
        assert!((slope - 3.0).abs() < 1e-9);
        assert!((intercept + 2.0).abs() < 1e-9);
    }

    #[test]
    fn linear_regression_rejects_degenerate_input() {
        assert!(linear_regression(&[]).is_none());
        assert!(linear_regression(&[(1.0, 2.0)]).is_none());
        assert!(linear_regression(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
    }

    #[test]
    fn fit_mandelbrot_recovers_power_law() {
        // f = 100 · r^-1.2
        let curve: Vec<(f64, f64)> = (1..=50)
            .map(|r| (r as f64, 100.0 * (r as f64).powf(-1.2)))
            .collect();
        let (alpha, log_beta) = fit_mandelbrot(&curve).unwrap();
        assert!((alpha + 1.2).abs() < 1e-6, "alpha = {alpha}");
        assert!((log_beta - 100.0f64.ln()).abs() < 1e-6);
    }

    #[test]
    fn estimator_extrapolates_with_sample_size() {
        // Construct checkpoints from a family α(|S|) = 0.1·ln|S| − 1.5,
        // log β(|S|) = 0.9·ln|S| + 0.2.
        let checkpoints: Vec<MandelbrotCheckpoint> = [50u32, 100, 200, 300]
            .iter()
            .map(|&s| {
                let ls = f64::from(s).ln();
                MandelbrotCheckpoint {
                    sample_size: s,
                    alpha: 0.1 * ls - 1.5,
                    log_beta: 0.9 * ls + 0.2,
                }
            })
            .collect();
        let est = FrequencyEstimator::from_checkpoints(&checkpoints).unwrap();
        assert!((est.a1 - 0.1).abs() < 1e-9);
        assert!((est.b1 - 0.9).abs() < 1e-9);
        let (alpha, beta) = est.params_for_size(10_000.0);
        let expected_alpha = 0.1 * 10_000.0f64.ln() - 1.5;
        assert!((alpha - expected_alpha).abs() < 1e-9);
        assert!(beta > 0.0);
    }

    #[test]
    fn estimate_df_is_monotone_in_rank() {
        let est = FrequencyEstimator {
            a1: 0.0,
            a2: -1.0,
            b1: 1.0,
            b2: 0.0,
        };
        let d1 = est.estimate_df(1, 1000.0);
        let d10 = est.estimate_df(10, 1000.0);
        assert!(d1 > d10, "rank-1 word more frequent than rank-10");
        assert!(d10 > 0.0);
    }

    #[test]
    fn estimate_df_clamped_to_db_size() {
        // Huge β forces clamping.
        let est = FrequencyEstimator {
            a1: 0.0,
            a2: -0.5,
            b1: 0.0,
            b2: 20.0,
        };
        assert_eq!(est.estimate_df(1, 500.0), 500.0);
    }

    #[test]
    fn gamma_matches_appendix_b() {
        let est = FrequencyEstimator {
            a1: 0.0,
            a2: -0.8,
            b1: 0.0,
            b2: 0.0,
        };
        let gamma = est.gamma(1000.0);
        assert!((gamma - (1.0 / -0.8 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn apply_frequency_estimation_uses_exact_counts_for_probes() {
        // Sample: word 1 in 3 docs, word 2 in 1 doc, of 3 sample docs.
        let docs = [
            Document::from_tokens(0, vec![1, 2]),
            Document::from_tokens(1, vec![1]),
            Document::from_tokens(2, vec![1]),
        ];
        let mut summary = ContentSummary::from_sample(docs.iter(), 3.0);
        let est = FrequencyEstimator {
            a1: 0.0,
            a2: -1.0,
            b1: 1.0,
            b2: 0.0,
        };
        let mut exact = HashMap::new();
        exact.insert(1u32, 800u32); // probe reported 800 matches
        apply_frequency_estimation(&mut summary, &est, &exact, 1000.0);
        assert_eq!(summary.word(1).unwrap().df, 800.0);
        // Word 2 estimated from its rank (2): β=1000 ⇒ df = 1000·2^-1 = 500.
        assert!((summary.word(2).unwrap().df - 500.0).abs() < 1e-9);
        assert_eq!(summary.db_size(), 1000.0);
        assert!(summary.gamma().is_some());
    }

    #[test]
    fn sample_rank_frequency_sorts_descending() {
        let docs = [
            Document::from_tokens(0, vec![1, 2]),
            Document::from_tokens(1, vec![1]),
        ];
        let summary = ContentSummary::from_sample(docs.iter(), 2.0);
        let curve = sample_rank_frequency(&summary);
        assert_eq!(curve, vec![(1.0, 2.0), (2.0, 1.0)]);
    }
}
