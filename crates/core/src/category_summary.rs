//! Category content summaries (Definition 3, Equation 1).
//!
//! The content summary of a category `C` aggregates the summaries of the
//! databases classified under `C` (i.e., in `C`'s subtree). Two aggregation
//! weightings are supported:
//!
//! * [`CategoryWeighting::BySize`] — Equation 1 of the paper:
//!   `p̂(w|C) = Σ_D p̂(w|D)·|D̂| / Σ_D |D̂|`, and
//! * [`CategoryWeighting::Uniform`] — the footnote-5 alternative that
//!   weights every database equally regardless of size (the paper found the
//!   two "virtually identical"; the ablation bench checks this).
//!
//! When a database `D`'s summary is shrunk, the category summaries along its
//! path are first made disjoint: `Ŝ(C_i)` has all the data used to construct
//! `Ŝ(C_{i+1})` subtracted, and the leaf category has `D`'s own data
//! subtracted (Section 3.2, "to avoid this overlap ...").

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use textindex::TermId;

use crate::hierarchy::{CategoryId, Hierarchy};
use crate::summary::{ContentSummary, WordStats};

/// How database summaries are combined into a category summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CategoryWeighting {
    /// Equation 1: weight each database by its (estimated) size.
    #[default]
    BySize,
    /// Footnote 5: weight each database equally.
    Uniform,
}

/// Additive per-category accumulator. For `BySize`, `acc_df(w)` sums
/// absolute `df` estimates and `denom_df` sums database sizes; for
/// `Uniform`, `acc_df(w)` sums `p̂(w|D)` values and `denom_df` counts
/// databases. Either way `p̂(w|C) = acc_df(w) / denom_df`, and aggregates
/// stay additive so overlap subtraction is exact.
#[derive(Debug, Clone, Default)]
struct Aggregate {
    acc_df: HashMap<TermId, f64>,
    acc_tf: HashMap<TermId, f64>,
    denom_df: f64,
    denom_tf: f64,
    /// Total estimated documents under the category (for the hierarchical
    /// selection baseline, which treats a category as one big database).
    size: f64,
    n_dbs: usize,
}

impl Aggregate {
    fn add(&mut self, summary: &ContentSummary, weighting: CategoryWeighting) {
        match weighting {
            CategoryWeighting::BySize => {
                for (term, stats) in summary.iter() {
                    *self.acc_df.entry(term).or_insert(0.0) += stats.df;
                    *self.acc_tf.entry(term).or_insert(0.0) += stats.tf;
                }
                self.denom_df += summary.db_size();
                self.denom_tf += summary.total_tf();
            }
            CategoryWeighting::Uniform => {
                for (term, _) in summary.iter() {
                    *self.acc_df.entry(term).or_insert(0.0) += summary.p_df(term);
                    *self.acc_tf.entry(term).or_insert(0.0) += summary.p_tf(term);
                }
                self.denom_df += 1.0;
                self.denom_tf += 1.0;
            }
        }
        self.size += summary.db_size();
        self.n_dbs += 1;
    }

    /// `self - other`, clamping tiny negative residue from float error.
    fn subtract(&self, other: &Aggregate) -> Aggregate {
        let mut acc_df = self.acc_df.clone();
        for (term, v) in &other.acc_df {
            let slot = acc_df.entry(*term).or_insert(0.0);
            *slot = (*slot - v).max(0.0);
        }
        let mut acc_tf = self.acc_tf.clone();
        for (term, v) in &other.acc_tf {
            let slot = acc_tf.entry(*term).or_insert(0.0);
            *slot = (*slot - v).max(0.0);
        }
        Aggregate {
            acc_df,
            acc_tf,
            denom_df: (self.denom_df - other.denom_df).max(0.0),
            denom_tf: (self.denom_tf - other.denom_tf).max(0.0),
            size: (self.size - other.size).max(0.0),
            n_dbs: self.n_dbs.saturating_sub(other.n_dbs),
        }
    }

    fn to_component(&self) -> SummaryComponent {
        let p_df = if self.denom_df > 0.0 {
            self.acc_df
                .iter()
                .map(|(&t, &v)| (t, v / self.denom_df))
                .collect()
        } else {
            HashMap::new()
        };
        let p_tf = if self.denom_tf > 0.0 {
            self.acc_tf
                .iter()
                .map(|(&t, &v)| (t, v / self.denom_tf))
                .collect()
        } else {
            HashMap::new()
        };
        SummaryComponent { p_df, p_tf }
    }
}

/// One mixture component for shrinkage: the word distributions of a category
/// (or category remainder, after overlap subtraction).
#[derive(Debug, Clone, Default)]
pub struct SummaryComponent {
    /// `p̂(w|C)` under the document-frequency model.
    pub p_df: HashMap<TermId, f64>,
    /// `p̂(w|C)` under the term-frequency (LM) model.
    pub p_tf: HashMap<TermId, f64>,
}

/// Category summaries for an entire classified database collection.
///
/// Shrinkage components that do not depend on a particular database — the
/// "category remainder" of each (parent, child) edge — are cached and shared
/// (`Arc`) across all databases below that edge, so the per-database cost of
/// shrinking a large collection stays proportional to the database's own
/// vocabulary rather than the global one.
#[derive(Debug, Clone)]
pub struct CategorySummaries {
    aggregates: Vec<Aggregate>,
    weighting: CategoryWeighting,
    /// Cache of edge components: key `(node, child)` is `agg(node) −
    /// agg(child)`; key `(node, node)` is the raw (unsubtracted) component.
    edge_cache: RefCell<HashMap<(CategoryId, CategoryId), Arc<SummaryComponent>>>,
}

impl CategorySummaries {
    /// Aggregate `databases` (a classification plus a summary per database)
    /// over `hierarchy`. Each database contributes to its own category and
    /// every ancestor up to the root.
    pub fn build(
        hierarchy: &Hierarchy,
        databases: &[(CategoryId, &ContentSummary)],
        weighting: CategoryWeighting,
    ) -> Self {
        let mut aggregates = vec![Aggregate::default(); hierarchy.len()];
        for &(category, summary) in databases {
            for node in hierarchy.path_from_root(category) {
                aggregates[node].add(summary, weighting);
            }
        }
        CategorySummaries {
            aggregates,
            weighting,
            edge_cache: RefCell::new(HashMap::new()),
        }
    }

    /// The aggregation weighting in use.
    pub fn weighting(&self) -> CategoryWeighting {
        self.weighting
    }

    /// Number of databases classified under `category`'s subtree.
    pub fn database_count(&self, category: CategoryId) -> usize {
        self.aggregates[category].n_dbs
    }

    /// Materialize the category summary as a [`ContentSummary`] so the
    /// hierarchical selection baseline can score categories exactly like
    /// databases. Always uses Equation-1 semantics (`df` sums, size sums),
    /// which is how \[17\] defines category summaries.
    pub fn category_summary(&self, category: CategoryId) -> ContentSummary {
        let agg = &self.aggregates[category];
        let words = agg
            .acc_df
            .iter()
            .map(|(&term, &df)| {
                let tf = agg.acc_tf.get(&term).copied().unwrap_or(0.0);
                (
                    term,
                    WordStats {
                        sample_df: 0,
                        df,
                        tf,
                    },
                )
            })
            .collect();
        ContentSummary::new(agg.size, 0, words)
    }

    /// The shrinkage components for a database classified under
    /// `db_category`: one [`SummaryComponent`] per category on the path
    /// `root = C_1, …, C_m = db_category`, in root-first order.
    ///
    /// With `subtract_overlap` (the paper's method), `C_i`'s component
    /// excludes everything counted under `C_{i+1}`, and the leaf component
    /// excludes `db_summary` itself. Without it (ablation), raw category
    /// summaries are used.
    pub fn components_for(
        &self,
        hierarchy: &Hierarchy,
        db_category: CategoryId,
        db_summary: &ContentSummary,
        subtract_overlap: bool,
    ) -> Vec<Arc<SummaryComponent>> {
        let path = hierarchy.path_from_root(db_category);
        if !subtract_overlap {
            return path.iter().map(|&c| self.cached_edge(c, c)).collect();
        }
        let mut components = Vec::with_capacity(path.len());
        for (i, &c) in path.iter().enumerate() {
            if i + 1 < path.len() {
                // Category minus its on-path child: shared by every
                // database below that child.
                components.push(self.cached_edge(c, path[i + 1]));
            } else {
                // The database's own category minus the database itself —
                // necessarily computed per database.
                let mut own = Aggregate::default();
                own.add(db_summary, self.weighting);
                components.push(Arc::new(self.aggregates[c].subtract(&own).to_component()));
            }
        }
        components
    }

    /// The cached component for `node − child` (or the raw component when
    /// `node == child`).
    fn cached_edge(&self, node: CategoryId, child: CategoryId) -> Arc<SummaryComponent> {
        if let Some(cached) = self.edge_cache.borrow().get(&(node, child)) {
            return Arc::clone(cached);
        }
        let component = if node == child {
            self.aggregates[node].to_component()
        } else {
            self.aggregates[node]
                .subtract(&self.aggregates[child])
                .to_component()
        };
        let component = Arc::new(component);
        self.edge_cache
            .borrow_mut()
            .insert((node, child), Arc::clone(&component));
        component
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use textindex::Document;

    fn summary(terms: &[(TermId, u32)], n_docs: u32) -> ContentSummary {
        // Build n_docs docs where term t appears in the first `count` docs.
        let mut docs: Vec<Vec<TermId>> = vec![Vec::new(); n_docs as usize];
        for &(t, count) in terms {
            for d in docs.iter_mut().take(count as usize) {
                d.push(t);
            }
        }
        let docs: Vec<Document> = docs
            .into_iter()
            .enumerate()
            .map(|(i, t)| Document::from_tokens(i as u32, t))
            .collect();
        ContentSummary::from_sample(docs.iter(), f64::from(n_docs))
    }

    fn two_level_hierarchy() -> (Hierarchy, CategoryId, CategoryId) {
        let mut h = Hierarchy::new("Root");
        let health = h.add_child(Hierarchy::ROOT, "Health");
        let heart = h.add_child(health, "Heart");
        (h, health, heart)
    }

    #[test]
    fn by_size_matches_equation_1() {
        let (h, health, heart) = two_level_hierarchy();
        // D1 under Heart: term 7 in 5 of 10 docs. D2 under Health: term 7 in
        // 2 of 30 docs.
        let d1 = summary(&[(7, 5)], 10);
        let d2 = summary(&[(7, 2)], 30);
        let cs = CategorySummaries::build(
            &h,
            &[(heart, &d1), (health, &d2)],
            CategoryWeighting::BySize,
        );
        let health_summary = cs.category_summary(health);
        // Eq 1: (0.5*10 + 2/30*30) / (10+30) = 7/40.
        assert!((health_summary.p_df(7) - 7.0 / 40.0).abs() < 1e-12);
        assert_eq!(health_summary.db_size(), 40.0);
        assert_eq!(cs.database_count(health), 2);
        assert_eq!(cs.database_count(heart), 1);
        assert_eq!(cs.database_count(Hierarchy::ROOT), 2);
    }

    #[test]
    fn uniform_weighting_averages_probabilities() {
        let (h, health, heart) = two_level_hierarchy();
        let d1 = summary(&[(7, 5)], 10); // p = 0.5
        let d2 = summary(&[(7, 2)], 30); // p = 1/15
        let cs = CategorySummaries::build(
            &h,
            &[(heart, &d1), (health, &d2)],
            CategoryWeighting::Uniform,
        );
        let comps = cs.components_for(&h, health, &d2, false);
        // Health component (index 1 on path Root→Health) averages the ps.
        let p = comps[1].p_df[&7];
        assert!((p - (0.5 + 1.0 / 15.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn components_subtract_child_overlap() {
        let (h, health, heart) = two_level_hierarchy();
        let d1 = summary(&[(7, 5)], 10);
        let d2 = summary(&[(7, 2), (9, 3)], 30);
        let cs = CategorySummaries::build(
            &h,
            &[(heart, &d1), (health, &d2)],
            CategoryWeighting::BySize,
        );
        // Components for D1 (path Root, Health, Heart).
        let comps = cs.components_for(&h, heart, &d1, true);
        assert_eq!(comps.len(), 3);
        // Heart minus D1 itself: empty (D1 is the only Heart database).
        assert!(comps[2].p_df.values().all(|&v| v == 0.0));
        // Health minus Heart: only D2's data → p(7) = 2/30, p(9) = 3/30.
        assert!((comps[1].p_df[&7] - 2.0 / 30.0).abs() < 1e-12);
        assert!((comps[1].p_df[&9] - 0.1).abs() < 1e-12);
        // Root minus Health: nothing left.
        assert!(comps[0].p_df.values().all(|&v| v == 0.0));
    }

    #[test]
    fn components_without_subtraction_include_everything() {
        let (h, _, heart) = two_level_hierarchy();
        let d1 = summary(&[(7, 5)], 10);
        let cs = CategorySummaries::build(&h, &[(heart, &d1)], CategoryWeighting::BySize);
        let comps = cs.components_for(&h, heart, &d1, false);
        // Every level sees D1's data.
        for c in &comps {
            assert!((c.p_df[&7] - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn tf_model_aggregates_too() {
        let (h, health, _) = two_level_hierarchy();
        let d2 = summary(&[(7, 2), (9, 3)], 30);
        let cs = CategorySummaries::build(&h, &[(health, &d2)], CategoryWeighting::BySize);
        let comps = cs.components_for(&h, health, &d2, false);
        // p_tf(7) = 2 occurrences / 5 tokens.
        assert!((comps[1].p_tf[&7] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_category_yields_empty_component() {
        let (h, _, heart) = two_level_hierarchy();
        let d1 = summary(&[(7, 5)], 10);
        let cs = CategorySummaries::build(&h, &[(heart, &d1)], CategoryWeighting::BySize);
        let sports = cs.category_summary(1_usize.min(h.len() - 1));
        // `Heart` aggregates exist, but a fresh empty aggregate is safe.
        let _ = sports;
        let empty = Aggregate::default().to_component();
        assert!(empty.p_df.is_empty());
    }
}
