//! Columnar, immutable summary views for the serving hot path.
//!
//! [`ContentSummary`] and [`ShrunkSummary`] answer `p̂(w|D)` lookups from
//! hash maps — the right shape while summaries are being *built* (sampling
//! inserts words in arbitrary order, EM mixes lazily over shared category
//! components), but the wrong shape for *serving*, where summaries are
//! frozen and every query walks thousands of probability lookups. A
//! [`FrozenSummary`] stores the same numbers as term-sorted parallel arrays
//! (term ids, `p_df`, `p_tf`, `sample_df`) and answers lookups by binary
//! search over contiguous memory, so scoring chases no hash buckets and the
//! whole summary serializes as a straight array dump.
//!
//! Freezing is **bit-preserving**: every stored probability is computed
//! through the source summary's own lookup path at freeze time, and absent
//! terms fall back to a precomputed default — `0.0` for a content summary,
//! `λ_0 · uniform_p` for a shrunk mixture (the exact value
//! [`ShrunkSummary::mix`] produces when no component knows the word,
//! because λ-weighted additions of absent keys are skipped, not added as
//! zeros). Rankings computed over frozen views are therefore identical,
//! `f64::to_bits` for `f64::to_bits`, to rankings over the originals.

use textindex::TermId;

use crate::shrinkage::ShrunkSummary;
use crate::summary::{ContentSummary, SummaryView};

/// A summary frozen into term-sorted parallel arrays.
#[derive(Debug, Clone, PartialEq)]
pub struct FrozenSummary {
    db_size: f64,
    sample_size: u32,
    word_count: f64,
    /// `p̂(w|D)` for words absent from `terms` (0 for content summaries,
    /// `λ_0 · uniform_p` for shrunk mixtures).
    default_p_df: f64,
    /// Token-level default, same convention.
    default_p_tf: f64,
    /// Strictly ascending term ids; the index into the value columns.
    terms: Vec<TermId>,
    p_df: Vec<f64>,
    p_tf: Vec<f64>,
    sample_df: Vec<u32>,
}

impl FrozenSummary {
    /// Freeze a database content summary.
    pub fn from_unshrunk(s: &ContentSummary) -> FrozenSummary {
        let mut terms: Vec<TermId> = s.iter().map(|(t, _)| t).collect();
        terms.sort_unstable();
        let p_df = terms.iter().map(|&t| ContentSummary::p_df(s, t)).collect();
        let p_tf = terms.iter().map(|&t| ContentSummary::p_tf(s, t)).collect();
        let sample_df = terms
            .iter()
            .map(|&t| s.word(t).expect("term from iter").sample_df)
            .collect();
        FrozenSummary {
            db_size: s.db_size(),
            sample_size: s.sample_size(),
            word_count: s.total_tf(),
            default_p_df: 0.0,
            default_p_tf: 0.0,
            terms,
            p_df,
            p_tf,
            sample_df,
        }
    }

    /// Freeze a shrunk summary by materializing the mixture over its full
    /// (df ∪ tf) vocabulary. Words outside that vocabulary mix to exactly
    /// `λ_0 · uniform_p` per model, which becomes the stored default.
    pub fn from_shrunk(s: &ShrunkSummary) -> FrozenSummary {
        let terms = s.full_vocabulary();
        let p_df = terms.iter().map(|&t| SummaryView::p_df(s, t)).collect();
        let p_tf = terms.iter().map(|&t| SummaryView::p_tf(s, t)).collect();
        let sample_df = vec![0; terms.len()];
        FrozenSummary {
            db_size: s.db_size(),
            sample_size: 0,
            word_count: s.word_count(),
            default_p_df: s.lambdas()[0] * s.uniform_p(),
            default_p_tf: s.lambdas_tf()[0] * s.uniform_p(),
            terms,
            p_df,
            p_tf,
            sample_df,
        }
    }

    /// Reassemble a frozen summary from decoded columns — the snapshot
    /// load path. Validates the structural invariants a codec cannot
    /// express (strictly ascending terms, equal column lengths) so corrupt
    /// input is rejected instead of silently mis-searching.
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_parts(
        db_size: f64,
        sample_size: u32,
        word_count: f64,
        default_p_df: f64,
        default_p_tf: f64,
        terms: Vec<TermId>,
        p_df: Vec<f64>,
        p_tf: Vec<f64>,
        sample_df: Vec<u32>,
    ) -> Result<FrozenSummary, &'static str> {
        if p_df.len() != terms.len() || p_tf.len() != terms.len() || sample_df.len() != terms.len()
        {
            return Err("frozen summary columns disagree on length");
        }
        if terms.windows(2).any(|w| w[0] >= w[1]) {
            return Err("frozen summary terms not strictly ascending");
        }
        Ok(FrozenSummary {
            db_size,
            sample_size,
            word_count,
            default_p_df,
            default_p_tf,
            terms,
            p_df,
            p_tf,
            sample_df,
        })
    }

    fn position(&self, term: TermId) -> Option<usize> {
        self.terms.binary_search(&term).ok()
    }

    /// Estimated database size `|D̂|`.
    pub fn db_size(&self) -> f64 {
        self.db_size
    }

    /// Number of sample documents the summary was built from.
    pub fn sample_size(&self) -> u32 {
        self.sample_size
    }

    /// Estimated total token count (CORI's `cw(D)`).
    pub fn word_count(&self) -> f64 {
        self.word_count
    }

    /// `p̂(w|D)` under the document-frequency model.
    pub fn p_df(&self, term: TermId) -> f64 {
        self.position(term)
            .map_or(self.default_p_df, |i| self.p_df[i])
    }

    /// `p̂(w|D)` under the term-frequency model.
    pub fn p_tf(&self, term: TermId) -> f64 {
        self.position(term)
            .map_or(self.default_p_tf, |i| self.p_tf[i])
    }

    /// Number of *sample* documents containing `term` (0 when absent).
    pub fn sample_df(&self, term: TermId) -> u32 {
        self.position(term).map_or(0, |i| self.sample_df[i])
    }

    /// Number of explicitly stored terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no term is explicitly stored.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The sorted term-id column.
    pub fn terms(&self) -> &[TermId] {
        &self.terms
    }

    /// The `p_df` value column, parallel to [`Self::terms`].
    pub fn p_df_column(&self) -> &[f64] {
        &self.p_df
    }

    /// The `p_tf` value column, parallel to [`Self::terms`].
    pub fn p_tf_column(&self) -> &[f64] {
        &self.p_tf
    }

    /// The `sample_df` column, parallel to [`Self::terms`].
    pub fn sample_df_column(&self) -> &[u32] {
        &self.sample_df
    }

    /// The stored default `p_df` for absent terms.
    pub fn default_p_df(&self) -> f64 {
        self.default_p_df
    }

    /// The stored default `p_tf` for absent terms.
    pub fn default_p_tf(&self) -> f64 {
        self.default_p_tf
    }
}

impl SummaryView for FrozenSummary {
    fn db_size(&self) -> f64 {
        self.db_size
    }

    fn p_df(&self, term: TermId) -> f64 {
        FrozenSummary::p_df(self, term)
    }

    fn p_tf(&self, term: TermId) -> f64 {
        FrozenSummary::p_tf(self, term)
    }

    fn word_count(&self) -> f64 {
        self.word_count
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::sync::Arc;

    use super::*;
    use crate::category_summary::SummaryComponent;
    use crate::shrinkage::{shrink, ShrinkageConfig};
    use crate::summary::WordStats;
    use textindex::Document;

    fn sample_summary(docs: &[Vec<TermId>], db_size: f64) -> ContentSummary {
        let docs: Vec<Document> = docs
            .iter()
            .enumerate()
            .map(|(i, t)| Document::from_tokens(i as u32, t.clone()))
            .collect();
        ContentSummary::from_sample(docs.iter(), db_size)
    }

    #[test]
    fn frozen_unshrunk_is_bit_identical() {
        let s = sample_summary(&[vec![3, 1, 1], vec![7, 3], vec![9]], 120.0);
        let f = FrozenSummary::from_unshrunk(&s);
        for t in [0u32, 1, 3, 7, 9, 100] {
            assert_eq!(f.p_df(t).to_bits(), s.p_df(t).to_bits());
            assert_eq!(f.p_tf(t).to_bits(), s.p_tf(t).to_bits());
            assert_eq!(f.sample_df(t), s.word(t).map_or(0, |w| w.sample_df));
            assert_eq!(f.effectively_contains(t), s.effectively_contains(t));
        }
        assert_eq!(f.db_size().to_bits(), s.db_size().to_bits());
        assert_eq!(f.word_count().to_bits(), s.total_tf().to_bits());
        assert_eq!(f.sample_size(), s.sample_size());
        assert!(f.terms().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn frozen_shrunk_is_bit_identical_including_defaults() {
        let db = sample_summary(&[vec![1, 2], vec![1, 3]], 100.0);
        let comp = Arc::new(SummaryComponent {
            p_df: [(1u32, 0.5f64), (4, 0.2)].into_iter().collect(),
            p_tf: [(1u32, 0.4f64), (4, 0.3)].into_iter().collect(),
        });
        let shrunk = shrink(&db, &[comp], &ShrinkageConfig::default());
        let f = FrozenSummary::from_shrunk(&shrunk);
        for t in [0u32, 1, 2, 3, 4, 42, 99_999] {
            assert_eq!(f.p_df(t).to_bits(), SummaryView::p_df(&shrunk, t).to_bits());
            assert_eq!(f.p_tf(t).to_bits(), SummaryView::p_tf(&shrunk, t).to_bits());
            assert_eq!(f.effectively_contains(t), shrunk.effectively_contains(t));
        }
        assert_eq!(f.db_size().to_bits(), shrunk.db_size().to_bits());
        assert_eq!(f.word_count().to_bits(), shrunk.word_count().to_bits());
    }

    #[test]
    fn frozen_shrunk_captures_tf_only_component_keys() {
        // A component with a key only in its tf map (the df denominator
        // degenerated): full_vocabulary must include it so the frozen view
        // stores its non-default p_tf.
        let db = sample_summary(&[vec![1]], 10.0);
        let comp = Arc::new(SummaryComponent {
            p_df: HashMap::new(),
            p_tf: [(8u32, 0.25f64)].into_iter().collect(),
        });
        let shrunk = shrink(&db, &[comp], &ShrinkageConfig::default());
        let f = FrozenSummary::from_shrunk(&shrunk);
        assert!(f.terms().contains(&8));
        assert_eq!(f.p_tf(8).to_bits(), SummaryView::p_tf(&shrunk, 8).to_bits());
        assert_eq!(f.p_df(8).to_bits(), SummaryView::p_df(&shrunk, 8).to_bits());
    }

    #[test]
    fn empty_summary_freezes_safely() {
        let s = sample_summary(&[], 0.0);
        let f = FrozenSummary::from_unshrunk(&s);
        assert!(f.is_empty());
        assert_eq!(f.p_df(0), 0.0);
        assert_eq!(f.p_tf(0), 0.0);
        assert_eq!(f.sample_df(0), 0);
    }

    #[test]
    fn zero_db_size_matches_source_zeroing() {
        // db_size == 0 makes ContentSummary::p_df return 0 even for
        // present words; the frozen copy must store those zeros.
        let mut words = HashMap::new();
        words.insert(
            5u32,
            WordStats {
                sample_df: 2,
                df: 3.0,
                tf: 4.0,
            },
        );
        let s = ContentSummary::new(0.0, 2, words);
        let f = FrozenSummary::from_unshrunk(&s);
        assert_eq!(f.p_df(5).to_bits(), s.p_df(5).to_bits());
        assert_eq!(f.p_df(5), 0.0);
        assert_eq!(f.sample_df(5), 2);
    }

    #[test]
    fn from_raw_parts_validates_structure() {
        assert!(FrozenSummary::from_raw_parts(
            1.0,
            1,
            1.0,
            0.0,
            0.0,
            vec![1, 2, 3],
            vec![0.1, 0.2, 0.3],
            vec![0.1, 0.2, 0.3],
            vec![1, 1, 1],
        )
        .is_ok());
        // Unsorted terms.
        assert!(FrozenSummary::from_raw_parts(
            1.0,
            1,
            1.0,
            0.0,
            0.0,
            vec![2, 1],
            vec![0.1, 0.2],
            vec![0.1, 0.2],
            vec![1, 1],
        )
        .is_err());
        // Duplicate terms.
        assert!(FrozenSummary::from_raw_parts(
            1.0,
            1,
            1.0,
            0.0,
            0.0,
            vec![1, 1],
            vec![0.1, 0.2],
            vec![0.1, 0.2],
            vec![1, 1],
        )
        .is_err());
        // Ragged columns.
        assert!(FrozenSummary::from_raw_parts(
            1.0,
            1,
            1.0,
            0.0,
            0.0,
            vec![1, 2],
            vec![0.1],
            vec![0.1, 0.2],
            vec![1, 1],
        )
        .is_err());
    }

    #[test]
    fn raw_parts_round_trip_preserves_bits() {
        let s = sample_summary(&[vec![1, 2, 2], vec![4]], 50.0);
        let f = FrozenSummary::from_unshrunk(&s);
        let rebuilt = FrozenSummary::from_raw_parts(
            f.db_size(),
            f.sample_size(),
            f.word_count(),
            f.default_p_df(),
            f.default_p_tf(),
            f.terms().to_vec(),
            f.p_df_column().to_vec(),
            f.p_tf_column().to_vec(),
            f.sample_df_column().to_vec(),
        )
        .unwrap();
        assert_eq!(f, rebuilt);
    }
}
