//! Property-based tests for the core shrinkage machinery: summaries,
//! category aggregation, the EM mixture weights, frequency estimation, and
//! the uncertainty posteriors.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use dbselect_core::category_summary::{CategorySummaries, CategoryWeighting, SummaryComponent};
use dbselect_core::freqest::{fit_mandelbrot, linear_regression, FrequencyEstimator};
use dbselect_core::hierarchy::Hierarchy;
use dbselect_core::shrinkage::{shrink, ShrinkageConfig};
use dbselect_core::summary::{ContentSummary, SummaryView};
use dbselect_core::uncertainty::WordPosterior;
use textindex::Document;

fn sample_docs() -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(prop::collection::vec(0u32..40, 1..25), 1..15)
}

fn component_entries() -> impl Strategy<Value = Vec<(u32, f64)>> {
    prop::collection::vec((0u32..60, 1e-6..0.9f64), 0..30)
}

proptest! {
    /// p̂(w|D) of a sample summary is always a valid fraction, and the
    /// tf-based probabilities sum to 1 over the vocabulary.
    #[test]
    fn summary_probabilities_are_valid(docs in sample_docs(), scale in 1.0..100.0f64) {
        let documents: Vec<Document> = docs
            .iter()
            .enumerate()
            .map(|(i, t)| Document::from_tokens(i as u32, t.clone()))
            .collect();
        let db_size = documents.len() as f64 * scale;
        let summary = ContentSummary::from_sample(documents.iter(), db_size);
        let mut p_tf_total = 0.0;
        for (term, stats) in summary.iter() {
            let p = summary.p_df(term);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&p), "p_df {p}");
            prop_assert!(stats.df <= db_size + 1e-9);
            p_tf_total += summary.p_tf(term);
        }
        prop_assert!((p_tf_total - 1.0).abs() < 1e-9);
    }

    /// Shrinkage mixture weights always form a probability simplex, and the
    /// shrunk probability of any word stays within [0, 1].
    #[test]
    fn shrinkage_lambdas_form_simplex(
        docs in sample_docs(),
        comp_a in component_entries(),
        comp_b in component_entries(),
        probe in 0u32..80,
    ) {
        let documents: Vec<Document> = docs
            .iter()
            .enumerate()
            .map(|(i, t)| Document::from_tokens(i as u32, t.clone()))
            .collect();
        let summary = ContentSummary::from_sample(documents.iter(), 500.0);
        let mk = |entries: &[(u32, f64)]| {
            Arc::new(SummaryComponent {
                p_df: entries.iter().copied().collect(),
                p_tf: entries.iter().copied().collect(),
            })
        };
        let comps = vec![mk(&comp_a), mk(&comp_b)];
        let shrunk = shrink(&summary, &comps, &ShrinkageConfig::default());
        let sum: f64 = shrunk.lambdas().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "λ sum {sum}");
        prop_assert!(shrunk.lambdas().iter().all(|&l| (0.0..=1.0).contains(&l)));
        let sum_tf: f64 = shrunk.lambdas_tf().iter().sum();
        prop_assert!((sum_tf - 1.0).abs() < 1e-6);
        let p = shrunk.p_df(probe);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&p), "shrunk p {p}");
    }

    /// Category aggregation preserves total probability mass: the category
    /// p̂(w|C) lies between the member databases' minimum and maximum p̂.
    #[test]
    fn category_p_is_between_member_ps(
        df_a in 0u32..50, size_a in 50u32..200,
        df_b in 0u32..50, size_b in 50u32..200,
    ) {
        let mk = |df: u32, size: u32| {
            let docs: Vec<Document> = (0..size)
                .map(|i| Document::from_tokens(i, if i < df { vec![7] } else { vec![8] }))
                .collect();
            ContentSummary::from_sample(docs.iter(), f64::from(size))
        };
        let a = mk(df_a, size_a);
        let b = mk(df_b, size_b);
        let mut h = Hierarchy::new("Root");
        let cat = h.add_child(Hierarchy::ROOT, "C");
        let cats = CategorySummaries::build(&h, &[(cat, &a), (cat, &b)], CategoryWeighting::BySize);
        let summary = cats.category_summary(cat);
        let p = summary.p_df(7);
        let (lo, hi) = (a.p_df(7).min(b.p_df(7)), a.p_df(7).max(b.p_df(7)));
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{lo} <= {p} <= {hi}");
    }

    /// Linear regression residuals are orthogonal to x (normal equations).
    #[test]
    fn regression_satisfies_normal_equations(
        pts in prop::collection::vec((-50.0..50.0f64, -50.0..50.0f64), 3..40)
    ) {
        if let Some((slope, intercept)) = linear_regression(&pts) {
            let dot: f64 = pts.iter().map(|&(x, y)| (y - slope * x - intercept) * x).sum();
            let scale: f64 = pts.iter().map(|&(x, _)| x * x).sum::<f64>().max(1.0);
            prop_assert!(dot.abs() / scale < 1e-6, "residual·x = {dot}");
        }
    }

    /// Mandelbrot fitting on an exact power law recovers its parameters.
    #[test]
    fn mandelbrot_fit_recovers_parameters(alpha in -2.0..-0.2f64, log_beta in 0.0..8.0f64) {
        let curve: Vec<(f64, f64)> = (1..=40)
            .map(|r| (r as f64, (log_beta + alpha * (r as f64).ln()).exp()))
            .collect();
        let (a, lb) = fit_mandelbrot(&curve).unwrap();
        prop_assert!((a - alpha).abs() < 1e-6);
        prop_assert!((lb - log_beta).abs() < 1e-6);
    }

    /// Frequency estimates are always within [0, |D|] and decrease with
    /// rank.
    #[test]
    fn frequency_estimates_bounded_and_monotone(
        a1 in -0.2..0.2f64, a2 in -2.0..-0.3f64,
        b1 in 0.0..1.5f64, b2 in -2.0..4.0f64,
        size in 100.0..100_000.0f64,
    ) {
        let est = FrequencyEstimator { a1, a2, b1, b2 };
        let mut prev = f64::INFINITY;
        for rank in [1usize, 2, 5, 10, 100, 1000] {
            let df = est.estimate_df(rank, size);
            prop_assert!((0.0..=size).contains(&df));
            prop_assert!(df <= prev + 1e-9, "df not decreasing at rank {rank}");
            prev = df;
        }
    }

    /// Word posteriors only produce frequencies within [0, |D|], and a word
    /// observed in the sample never draws zero.
    #[test]
    fn posterior_draws_in_range(
        sample_df in 0u32..100,
        db_size in 100.0..50_000.0f64,
        gamma in -3.0..-0.5f64,
        seed in 0u64..1000,
    ) {
        let sample_size = 100u32.max(sample_df);
        let posterior = WordPosterior::new(sample_df, sample_size, db_size, gamma, 80);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let d = posterior.sample(&mut rng);
            prop_assert!((0.0..=db_size).contains(&d));
            if sample_df > 0 {
                prop_assert!(d >= 1.0, "observed word drew zero frequency");
            }
        }
    }
}

#[test]
fn shrunk_summary_view_is_consistent_with_iteration() {
    let docs = [
        Document::from_tokens(0, vec![1, 2]),
        Document::from_tokens(1, vec![2, 3]),
    ];
    let summary = ContentSummary::from_sample(docs.iter(), 100.0);
    let comp = Arc::new(SummaryComponent {
        p_df: HashMap::from([(2, 0.4), (9, 0.2)]),
        p_tf: HashMap::from([(2, 0.4), (9, 0.2)]),
    });
    let shrunk = shrink(&summary, &[comp], &ShrinkageConfig::default());
    for (term, p) in shrunk.iter_df() {
        assert!((shrunk.p_df(term) - p).abs() < 1e-15);
    }
}
