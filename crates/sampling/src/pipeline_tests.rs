//! Unit tests for the summary-construction pipelines (kept in a separate
//! module file to keep `pipeline.rs` focused on the logic).

use rand::rngs::StdRng;
use rand::SeedableRng;
use textindex::{Document, IndexedDatabase};

use crate::pipeline::{profile_qbs, summarize, PipelineConfig};
use crate::qbs::QbsConfig;
use crate::sample::DocumentSample;

/// A 200-document database with a Zipf-ish document frequency curve.
fn fixture_db() -> IndexedDatabase {
    let docs: Vec<Document> = (0..200u32)
        .map(|i| {
            let terms: Vec<u32> = (0..50).filter(|&t| i % (t + 1) == 0).collect();
            Document::from_tokens(i, terms)
        })
        .collect();
    IndexedDatabase::new("pipeline-fixture", docs)
}

#[test]
fn raw_pipeline_uses_sample_as_collection() {
    let db = fixture_db();
    let mut rng = StdRng::seed_from_u64(1);
    let config = PipelineConfig {
        frequency_estimation: false,
        qbs: QbsConfig {
            target_sample_size: 50,
            ..Default::default()
        },
        ..Default::default()
    };
    let profile = profile_qbs(&db, &[0, 1, 2], &config, &mut rng);
    assert_eq!(profile.summary.db_size(), profile.sample.len() as f64);
    assert!(profile.classification.is_none(), "QBS does not classify");
}

#[test]
fn frequency_estimated_pipeline_rescales_to_size_estimate() {
    let db = fixture_db();
    let mut rng = StdRng::seed_from_u64(2);
    let config = PipelineConfig {
        frequency_estimation: true,
        qbs: QbsConfig {
            target_sample_size: 80,
            checkpoint_interval: 20,
            ..Default::default()
        },
        ..Default::default()
    };
    let profile = profile_qbs(&db, &[0, 1, 2], &config, &mut rng);
    // The size estimate is at least the sample size and γ is recorded for
    // the uncertainty machinery.
    assert!(profile.summary.db_size() >= profile.sample.len() as f64);
    assert!(profile.summary.gamma().is_some());
    // Probe words carry exact database frequencies.
    let (&term, &df) = profile
        .sample
        .exact_df
        .iter()
        .next()
        .expect("QBS issued at least one single-word query");
    assert_eq!(profile.summary.word(term).unwrap().df, f64::from(df));
}

#[test]
fn summarize_without_checkpoints_falls_back_to_size_scaling() {
    let db = fixture_db();
    let mut rng = StdRng::seed_from_u64(3);
    // A sample too small for any Mandelbrot checkpoint.
    let config = PipelineConfig {
        frequency_estimation: true,
        qbs: QbsConfig {
            target_sample_size: 8,
            checkpoint_interval: 1000,
            ..Default::default()
        },
        ..Default::default()
    };
    let sample = crate::qbs::qbs_sample(&db, &[0, 1], &config.qbs, &mut rng);
    assert!(
        sample.checkpoints.len() < 2,
        "fixture assumes no usable regression"
    );
    let summary = summarize(&db, &sample, &config, &mut rng);
    assert!(summary.db_size() >= sample.len() as f64);
}

#[test]
fn empty_sample_produces_empty_summary() {
    let db = fixture_db();
    let mut rng = StdRng::seed_from_u64(4);
    let config = PipelineConfig {
        frequency_estimation: true,
        ..Default::default()
    };
    let summary = summarize(&db, &DocumentSample::default(), &config, &mut rng);
    assert_eq!(summary.vocabulary_size(), 0);
}
