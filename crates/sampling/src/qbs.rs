//! Query-Based Sampling (QBS), after Callan & Connell (ACM TOIS 2001) as
//! configured in Section 5.2 of the paper:
//!
//! > *"We send random, single-word queries to a given database until at
//! > least one document is retrieved. Then, we continue to query the
//! > database using the words in the retrieved documents. Each query
//! > retrieves at most four previously unseen documents. Sampling stops
//! > when the document sample contains 300 documents \[or\] when 500
//! > consecutive queries retrieve no new documents."*

use std::collections::HashSet;

use rand::Rng;
use textindex::{DocId, RemoteDatabase, TermId};

use crate::sample::DocumentSample;

/// Configuration of the QBS sampler (defaults are the paper's settings).
#[derive(Debug, Clone, Copy)]
pub struct QbsConfig {
    /// Stop once the sample holds this many documents.
    pub target_sample_size: usize,
    /// Stop after this many consecutive queries yield no new documents.
    pub max_consecutive_failures: usize,
    /// Maximum previously-unseen documents kept per query.
    pub docs_per_query: usize,
    /// How many top results to request per query (the sampler keeps at most
    /// `docs_per_query` unseen ones among them).
    pub results_per_query: usize,
    /// Take a Mandelbrot checkpoint every this many new documents.
    pub checkpoint_interval: usize,
}

impl Default for QbsConfig {
    fn default() -> Self {
        QbsConfig {
            target_sample_size: 300,
            max_consecutive_failures: 500,
            docs_per_query: 4,
            results_per_query: 20,
            checkpoint_interval: 50,
        }
    }
}

/// Run QBS against `db`, bootstrapping from `seed_lexicon` (the stand-in
/// for an English dictionary).
pub fn qbs_sample<R: Rng + ?Sized>(
    db: &dyn RemoteDatabase,
    seed_lexicon: &[TermId],
    config: &QbsConfig,
    rng: &mut R,
) -> DocumentSample {
    let mut sample = DocumentSample::default();
    let mut seen_docs: HashSet<DocId> = HashSet::new();
    let mut queried: HashSet<TermId> = HashSet::new();
    // Candidate query words harvested from retrieved documents.
    let mut candidates: Vec<TermId> = Vec::new();
    let mut candidate_set: HashSet<TermId> = HashSet::new();
    let mut consecutive_failures = 0usize;
    let mut next_checkpoint = config.checkpoint_interval;

    while sample.len() < config.target_sample_size
        && consecutive_failures < config.max_consecutive_failures
    {
        // Pick the next query word: from harvested document words once the
        // sample is non-empty, from the seed lexicon otherwise.
        let word = if sample.is_empty() || candidates.is_empty() {
            if seed_lexicon.is_empty() {
                break;
            }
            seed_lexicon[rng.gen_range(0..seed_lexicon.len())]
        } else {
            let i = rng.gen_range(0..candidates.len());
            candidates.swap_remove(i)
        };
        if !queried.insert(word) {
            // Already sent this word; counts as a failure so sampling still
            // terminates on small vocabularies.
            consecutive_failures += 1;
            continue;
        }

        let outcome = db.query(&[word], config.results_per_query);
        sample.queries_sent += 1;
        sample.exact_df.insert(word, outcome.total_matches as u32);

        let mut new_docs = 0usize;
        for doc_id in outcome.doc_ids {
            if new_docs >= config.docs_per_query || sample.len() >= config.target_sample_size {
                break;
            }
            if !seen_docs.insert(doc_id) {
                continue;
            }
            let doc = db
                .fetch(doc_id)
                .expect("database returned an id it cannot serve");
            // Harvest this document's words as future query candidates.
            for term in doc.distinct_terms() {
                if !queried.contains(&term) && candidate_set.insert(term) {
                    candidates.push(term);
                }
            }
            sample.docs.push(doc.clone());
            new_docs += 1;
        }
        if new_docs == 0 {
            consecutive_failures += 1;
        } else {
            consecutive_failures = 0;
            if sample.len() >= next_checkpoint {
                sample.take_checkpoint();
                next_checkpoint += config.checkpoint_interval;
            }
        }
    }
    // Final checkpoint at the terminal sample size.
    sample.take_checkpoint();
    sample
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use textindex::{Document, IndexedDatabase};

    /// A database of 120 docs with a Zipfian-ish vocabulary: term t appears
    /// in every doc whose index is divisible by (t+1).
    fn fixture_db() -> IndexedDatabase {
        let docs: Vec<Document> = (0..120u32)
            .map(|i| {
                let terms: Vec<TermId> = (0..40).filter(|&t| i % (t + 1) == 0).collect();
                Document::from_tokens(i, terms)
            })
            .collect();
        IndexedDatabase::new("fixture", docs)
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn sampling_reaches_target_or_exhausts_database() {
        let db = fixture_db();
        let config = QbsConfig {
            target_sample_size: 50,
            ..Default::default()
        };
        let sample = qbs_sample(&db, &[0, 1, 2], &config, &mut rng());
        assert_eq!(sample.len(), 50);
    }

    #[test]
    fn sample_documents_are_distinct() {
        let db = fixture_db();
        let config = QbsConfig {
            target_sample_size: 60,
            ..Default::default()
        };
        let sample = qbs_sample(&db, &[0, 1], &config, &mut rng());
        let ids: HashSet<DocId> = sample.docs.iter().map(|d| d.id).collect();
        assert_eq!(ids.len(), sample.docs.len());
    }

    #[test]
    fn exact_df_matches_database_truth() {
        let db = fixture_db();
        let config = QbsConfig {
            target_sample_size: 40,
            ..Default::default()
        };
        let sample = qbs_sample(&db, &[0, 1, 2], &config, &mut rng());
        for (&term, &df) in &sample.exact_df {
            assert_eq!(
                df as usize,
                db.index().document_frequency(term),
                "term {term}"
            );
        }
        assert!(!sample.exact_df.is_empty());
    }

    #[test]
    fn terminates_on_unproductive_database() {
        // Database whose docs never match the seed lexicon (empty lexicon
        // terms) — sampling must stop via the failure counter.
        let db = IndexedDatabase::new("empty-ish", vec![Document::from_tokens(0, vec![500])]);
        let config = QbsConfig {
            target_sample_size: 300,
            max_consecutive_failures: 20,
            ..Default::default()
        };
        let sample = qbs_sample(&db, &[1, 2, 3], &config, &mut rng());
        assert!(sample.is_empty());
        assert!(sample.queries_sent <= 60);
    }

    #[test]
    fn checkpoints_are_taken_as_sample_grows() {
        let db = fixture_db();
        let config = QbsConfig {
            target_sample_size: 100,
            checkpoint_interval: 25,
            ..Default::default()
        };
        let sample = qbs_sample(&db, &[0, 1], &config, &mut rng());
        assert!(
            sample.checkpoints.len() >= 2,
            "got {}",
            sample.checkpoints.len()
        );
        // Checkpoint sample sizes strictly increase.
        assert!(sample
            .checkpoints
            .windows(2)
            .all(|w| w[0].sample_size < w[1].sample_size));
    }

    #[test]
    fn respects_docs_per_query_limit() {
        let db = fixture_db();
        // Word 0 matches every doc, but a single query may only contribute
        // `docs_per_query` documents, so reaching 10 docs takes ≥ 3 queries.
        let config = QbsConfig {
            target_sample_size: 10,
            ..Default::default()
        };
        let sample = qbs_sample(&db, &[0], &config, &mut rng());
        assert_eq!(sample.len(), 10);
        assert!(sample.queries_sent >= 3, "sent {}", sample.queries_sent);
    }
}
