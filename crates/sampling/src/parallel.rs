//! Parallel database profiling.
//!
//! Profiling a large collection is embarrassingly parallel — each database
//! is sampled independently. These helpers fan the work out over scoped
//! threads while keeping the result **independent of the thread count**:
//! every database gets its own RNG seeded from `base_seed` and its index,
//! so `threads = 1` and `threads = 32` produce identical profiles.

use textindex::{RemoteDatabase, TermId};

use dbselect_core::hierarchy::Hierarchy;

use crate::pipeline::{profile_fps, profile_qbs, DatabaseProfile, PipelineConfig};
use crate::probes::ProbeSource;
use crate::scheduler::{db_rng, fan_out};

/// Profile every database with QBS in parallel. Deterministic in
/// `base_seed` regardless of `threads`.
pub fn profile_qbs_many<D: RemoteDatabase + Sync>(
    databases: &[D],
    seed_lexicon: &[TermId],
    config: &PipelineConfig,
    base_seed: u64,
    threads: usize,
) -> Vec<DatabaseProfile> {
    fan_out(databases.len(), threads, |i| {
        let mut rng = db_rng(base_seed, i);
        profile_qbs(&databases[i], seed_lexicon, config, &mut rng)
    })
}

/// Profile every database with FPS in parallel. Deterministic in
/// `base_seed` regardless of `threads`.
pub fn profile_fps_many<D: RemoteDatabase + Sync, P: ProbeSource + Sync>(
    databases: &[D],
    hierarchy: &Hierarchy,
    classifier: &P,
    config: &PipelineConfig,
    base_seed: u64,
    threads: usize,
) -> Vec<DatabaseProfile> {
    fan_out(databases.len(), threads, |i| {
        let mut rng = db_rng(base_seed, i);
        profile_fps(&databases[i], hierarchy, classifier, config, &mut rng)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::ProbeClassifier;
    use corpus::TestBedConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use textindex::IndexedDatabase;

    fn fixture() -> (corpus::TestBed, Vec<IndexedDatabase>) {
        let bed = TestBedConfig::tiny(61).build();
        let dbs = bed.databases.iter().map(|d| d.db.clone()).collect();
        (bed, dbs)
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let (bed, dbs) = fixture();
        let config = PipelineConfig {
            frequency_estimation: true,
            ..Default::default()
        };
        let one = profile_qbs_many(&dbs, &bed.seed_lexicon, &config, 99, 1);
        let four = profile_qbs_many(&dbs, &bed.seed_lexicon, &config, 99, 4);
        assert_eq!(one.len(), four.len());
        for (a, b) in one.iter().zip(&four) {
            assert_eq!(a.summary.db_size(), b.summary.db_size());
            assert_eq!(a.summary.vocabulary_size(), b.summary.vocabulary_size());
            assert_eq!(a.sample.docs, b.sample.docs);
        }
    }

    #[test]
    fn different_seeds_give_different_samples() {
        let (bed, dbs) = fixture();
        let config = PipelineConfig::default();
        let a = profile_qbs_many(&dbs, &bed.seed_lexicon, &config, 1, 2);
        let b = profile_qbs_many(&dbs, &bed.seed_lexicon, &config, 2, 2);
        assert!(
            a.iter()
                .zip(&b)
                .any(|(x, y)| x.sample.docs != y.sample.docs),
            "independent seeds should sample differently"
        );
    }

    #[test]
    fn results_are_in_database_order() {
        let (bed, dbs) = fixture();
        let config = PipelineConfig::default();
        let profiles = profile_qbs_many(&dbs, &bed.seed_lexicon, &config, 5, 3);
        // Each profile's sample documents must come from its own database:
        // spot-check by verifying sampled doc ids exist in that database.
        for (profile, db) in profiles.iter().zip(&dbs) {
            for doc in &profile.sample.docs {
                assert!(db.fetch(doc.id).is_some());
            }
        }
    }

    #[test]
    fn fps_parallel_classifies_every_database() {
        let (mut bed, dbs) = fixture();
        let mut rng = StdRng::seed_from_u64(61);
        let examples = bed.training_documents(5, &mut rng);
        let classifier = ProbeClassifier::train(&bed.hierarchy, &examples, 6);
        let config = PipelineConfig::default();
        let profiles = profile_fps_many(&dbs, &bed.hierarchy, &classifier, &config, 7, 4);
        assert_eq!(profiles.len(), dbs.len());
        for p in &profiles {
            assert!(p.classification.is_some());
        }
    }

    #[test]
    fn zero_databases_is_fine() {
        let (bed, _) = fixture();
        let dbs: Vec<IndexedDatabase> = Vec::new();
        let config = PipelineConfig::default();
        assert!(profile_qbs_many(&dbs, &bed.seed_lexicon, &config, 1, 8).is_empty());
    }
}
