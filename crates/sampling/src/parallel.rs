//! Parallel database profiling.
//!
//! Profiling a large collection is embarrassingly parallel — each database
//! is sampled independently. These helpers fan the work out over scoped
//! threads while keeping the result **independent of the thread count**:
//! every database gets its own RNG seeded from `base_seed` and its index,
//! so `threads = 1` and `threads = 32` produce identical profiles.

use std::sync::atomic::{AtomicUsize, Ordering};

use rand::rngs::StdRng;
use rand::SeedableRng;
use textindex::{RemoteDatabase, TermId};

use dbselect_core::hierarchy::Hierarchy;

use crate::probes::ProbeSource;
use crate::pipeline::{profile_fps, profile_qbs, DatabaseProfile, PipelineConfig};

/// The per-database RNG: decorrelated from neighbours via SplitMix64-style
/// mixing of the index into the base seed.
fn db_rng(base_seed: u64, index: usize) -> StdRng {
    let mut z = base_seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// Run `work(index)` for every index in `0..n` over `threads` scoped
/// threads, collecting the results in index order.
fn fan_out<T: Send>(n: usize, threads: usize, work: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let threads = threads.clamp(1, n.max(1));
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let slots_ptr = std::sync::Mutex::new(&mut slots);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let next = &next;
            let work = &work;
            handles.push(scope.spawn(move || {
                let mut produced = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        return produced;
                    }
                    produced.push((i, work(i)));
                }
            }));
        }
        for handle in handles {
            let produced = handle.join().expect("profiling worker panicked");
            let mut guard = slots_ptr.lock().expect("slot mutex poisoned");
            for (i, value) in produced {
                guard[i] = Some(value);
            }
        }
    });
    slots.into_iter().map(|s| s.expect("every index produced")).collect()
}

/// Profile every database with QBS in parallel. Deterministic in
/// `base_seed` regardless of `threads`.
pub fn profile_qbs_many<D: RemoteDatabase + Sync>(
    databases: &[D],
    seed_lexicon: &[TermId],
    config: &PipelineConfig,
    base_seed: u64,
    threads: usize,
) -> Vec<DatabaseProfile> {
    fan_out(databases.len(), threads, |i| {
        let mut rng = db_rng(base_seed, i);
        profile_qbs(&databases[i], seed_lexicon, config, &mut rng)
    })
}

/// Profile every database with FPS in parallel. Deterministic in
/// `base_seed` regardless of `threads`.
pub fn profile_fps_many<D: RemoteDatabase + Sync, P: ProbeSource + Sync>(
    databases: &[D],
    hierarchy: &Hierarchy,
    classifier: &P,
    config: &PipelineConfig,
    base_seed: u64,
    threads: usize,
) -> Vec<DatabaseProfile> {
    fan_out(databases.len(), threads, |i| {
        let mut rng = db_rng(base_seed, i);
        profile_fps(&databases[i], hierarchy, classifier, config, &mut rng)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::ProbeClassifier;
    use corpus::TestBedConfig;
    use textindex::IndexedDatabase;

    fn fixture() -> (corpus::TestBed, Vec<IndexedDatabase>) {
        let bed = TestBedConfig::tiny(61).build();
        let dbs = bed.databases.iter().map(|d| d.db.clone()).collect();
        (bed, dbs)
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let (bed, dbs) = fixture();
        let config = PipelineConfig { frequency_estimation: true, ..Default::default() };
        let one = profile_qbs_many(&dbs, &bed.seed_lexicon, &config, 99, 1);
        let four = profile_qbs_many(&dbs, &bed.seed_lexicon, &config, 99, 4);
        assert_eq!(one.len(), four.len());
        for (a, b) in one.iter().zip(&four) {
            assert_eq!(a.summary.db_size(), b.summary.db_size());
            assert_eq!(a.summary.vocabulary_size(), b.summary.vocabulary_size());
            assert_eq!(a.sample.docs, b.sample.docs);
        }
    }

    #[test]
    fn different_seeds_give_different_samples() {
        let (bed, dbs) = fixture();
        let config = PipelineConfig::default();
        let a = profile_qbs_many(&dbs, &bed.seed_lexicon, &config, 1, 2);
        let b = profile_qbs_many(&dbs, &bed.seed_lexicon, &config, 2, 2);
        assert!(
            a.iter().zip(&b).any(|(x, y)| x.sample.docs != y.sample.docs),
            "independent seeds should sample differently"
        );
    }

    #[test]
    fn results_are_in_database_order() {
        let (bed, dbs) = fixture();
        let config = PipelineConfig::default();
        let profiles = profile_qbs_many(&dbs, &bed.seed_lexicon, &config, 5, 3);
        // Each profile's sample documents must come from its own database:
        // spot-check by verifying sampled doc ids exist in that database.
        for (profile, db) in profiles.iter().zip(&dbs) {
            for doc in &profile.sample.docs {
                assert!(db.fetch(doc.id).is_some());
            }
        }
    }

    #[test]
    fn fps_parallel_classifies_every_database() {
        let (mut bed, dbs) = fixture();
        let mut rng = StdRng::seed_from_u64(61);
        let examples = bed.training_documents(5, &mut rng);
        let classifier = ProbeClassifier::train(&bed.hierarchy, &examples, 6);
        let config = PipelineConfig::default();
        let profiles =
            profile_fps_many(&dbs, &bed.hierarchy, &classifier, &config, 7, 4);
        assert_eq!(profiles.len(), dbs.len());
        for p in &profiles {
            assert!(p.classification.is_some());
        }
    }

    #[test]
    fn zero_databases_is_fine() {
        let (bed, _) = fixture();
        let dbs: Vec<IndexedDatabase> = Vec::new();
        let config = PipelineConfig::default();
        assert!(profile_qbs_many(&dbs, &bed.seed_lexicon, &config, 1, 8).is_empty());
    }
}
