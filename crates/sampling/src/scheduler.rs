//! Thread-count-invariant work scheduling.
//!
//! The fan-out discipline used throughout the workspace: work items are
//! independent, each gets its own RNG derived from a base seed and its
//! index, and results come back in index order. Because no RNG is shared
//! across items, `threads = 1` and `threads = 32` produce bit-identical
//! output. Database profiling fans out over databases; the broker's
//! selection engine fans out over queries.

use std::sync::atomic::{AtomicUsize, Ordering};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The per-item RNG: decorrelated from neighbours via SplitMix64-style
/// mixing of the index into the base seed.
pub fn db_rng(base_seed: u64, index: usize) -> StdRng {
    let mut z = base_seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// Run `work(index)` for every index in `0..n` over `threads` scoped
/// threads, collecting the results in index order.
pub fn fan_out<T: Send>(n: usize, threads: usize, work: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let threads = threads.clamp(1, n.max(1));
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let slots_ptr = std::sync::Mutex::new(&mut slots);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let next = &next;
            let work = &work;
            handles.push(scope.spawn(move || {
                let mut produced = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        return produced;
                    }
                    produced.push((i, work(i)));
                }
            }));
        }
        for handle in handles {
            let produced = handle.join().expect("fan_out worker panicked");
            let mut guard = slots_ptr.lock().expect("slot mutex poisoned");
            for (i, value) in produced {
                guard[i] = Some(value);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index produced"))
        .collect()
}

/// Run `work(index)` for every index in `0..n` over at most `threads`
/// scoped threads, assigning each worker one *contiguous chunk* of
/// indices instead of pulling items one at a time off a shared counter.
///
/// Per-item dispatch (see [`fan_out`]) is the right discipline when item
/// costs vary wildly — database profiling — but for large batches of
/// cheap, similar items (query routing) the atomic claim per item and the
/// per-item result shuffling dominate. Chunking amortizes both to one
/// claim per worker. Results still come back in index order and, because
/// each item derives its own RNG from its index, the output is identical
/// to `fan_out`'s for the same `work`.
pub fn fan_out_chunks<T: Send>(
    n: usize,
    threads: usize,
    work: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        return (0..n).map(&work).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Vec<T>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let work = &work;
                let start = w * chunk;
                let end = ((w + 1) * chunk).min(n);
                scope.spawn(move || (start..end).map(work).collect::<Vec<T>>())
            })
            .collect();
        for handle in handles {
            out.push(handle.join().expect("fan_out_chunks worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// [`fan_out_chunks`] with per-worker scratch state: each worker calls
/// `init()` once and threads the resulting value through every
/// `work(index, &mut scratch)` call of its chunk. Scratch exists to let
/// workers reuse allocations across items; it must never influence
/// results — `work` has to produce the same output for any scratch
/// history, which is what keeps the output identical across thread
/// counts and to [`fan_out_chunks`].
pub fn fan_out_chunks_with<T: Send, S>(
    n: usize,
    threads: usize,
    init: impl Fn() -> S + Sync,
    work: impl Fn(usize, &mut S) -> T + Sync,
) -> Vec<T> {
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        let mut scratch = init();
        return (0..n).map(|i| work(i, &mut scratch)).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Vec<T>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let work = &work;
                let init = &init;
                let start = w * chunk;
                let end = ((w + 1) * chunk).min(n);
                scope.spawn(move || {
                    let mut scratch = init();
                    (start..end)
                        .map(|i| work(i, &mut scratch))
                        .collect::<Vec<T>>()
                })
            })
            .collect();
        for handle in handles {
            out.push(handle.join().expect("fan_out_chunks_with worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn fan_out_preserves_index_order() {
        let out = fan_out(100, 7, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn fan_out_handles_empty_and_single() {
        assert!(fan_out(0, 4, |i| i).is_empty());
        assert_eq!(fan_out(1, 4, |i| i + 1), vec![1]);
    }

    #[test]
    fn fan_out_chunks_matches_fan_out() {
        for n in [0usize, 1, 5, 97, 100] {
            for threads in [1usize, 3, 8, 200] {
                assert_eq!(
                    fan_out_chunks(n, threads, |i| i * 7 + 1),
                    fan_out(n, threads, |i| i * 7 + 1),
                    "n={n} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn fan_out_chunks_with_matches_plain_chunks() {
        for n in [0usize, 1, 5, 97] {
            for threads in [1usize, 3, 8, 200] {
                let with_scratch =
                    fan_out_chunks_with(n, threads, Vec::<usize>::new, |i, scratch| {
                        scratch.push(i);
                        i * 7 + 1
                    });
                assert_eq!(
                    with_scratch,
                    fan_out_chunks(n, threads, |i| i * 7 + 1),
                    "n={n} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn db_rng_streams_are_index_dependent_and_reproducible() {
        let mut a = db_rng(42, 3);
        let mut b = db_rng(42, 4);
        let mut a2 = db_rng(42, 3);
        let first_a = a.next_u64();
        assert_ne!(first_a, b.next_u64());
        assert_eq!(first_a, a2.next_u64());
    }
}
