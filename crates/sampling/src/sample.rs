//! The result of sampling an uncooperative database: the retrieved
//! documents plus everything observed along the way that later stages need
//! (exact match counts for probe words, Mandelbrot checkpoints for
//! frequency estimation).

use std::collections::HashMap;

use dbselect_core::freqest::{checkpoint, MandelbrotCheckpoint};
use dbselect_core::summary::ContentSummary;
use textindex::{Document, TermId};

/// A document sample extracted from a remote database via querying.
#[derive(Debug, Clone, Default)]
pub struct DocumentSample {
    /// The retrieved documents (ids are the remote database's own ids).
    pub docs: Vec<Document>,
    /// Exact database document frequencies observed as match counts of
    /// *single-word* queries — "the number of matches for each of these
    /// queries corresponds to the frequency of the associated word in the
    /// database" (Appendix A).
    pub exact_df: HashMap<TermId, u32>,
    /// Mandelbrot fits taken at intervals during sampling (Appendix A).
    pub checkpoints: Vec<MandelbrotCheckpoint>,
    /// Number of queries issued (the sampling cost).
    pub queries_sent: usize,
}

impl DocumentSample {
    /// Number of documents in the sample.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Is the sample empty?
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Build the sample's raw content summary with the sample itself as the
    /// collection (`|D̂| = |S|`) — the "no frequency estimation" variant of
    /// Section 5.2.
    pub fn raw_summary(&self) -> ContentSummary {
        ContentSummary::from_sample(self.docs.iter(), self.docs.len() as f64)
    }

    /// Record a Mandelbrot checkpoint for the current sample state, if the
    /// fit is well-defined.
    pub fn take_checkpoint(&mut self) {
        if let Some(cp) = checkpoint(&self.raw_summary()) {
            // Skip duplicate checkpoints at the same sample size (can happen
            // if no new documents arrived between triggers).
            if self.checkpoints.last().map(|c| c.sample_size) != Some(cp.sample_size) {
                self.checkpoints.push(cp);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(id: u32, terms: &[TermId]) -> Document {
        Document::from_tokens(id, terms.to_vec())
    }

    #[test]
    fn raw_summary_uses_sample_as_collection() {
        let mut sample = DocumentSample::default();
        sample.docs.push(doc(3, &[1, 2]));
        sample.docs.push(doc(9, &[1]));
        let s = sample.raw_summary();
        assert_eq!(s.db_size(), 2.0);
        assert!((s.p_df(1) - 1.0).abs() < 1e-12);
        assert!((s.p_df(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn checkpoints_dedupe_by_sample_size() {
        let mut sample = DocumentSample::default();
        for i in 0..10u32 {
            // Zipf-ish sample: term t appears in docs 0..(10-t).
            let terms: Vec<TermId> = (0..5).filter(|&t| i < 10 - t * 2).collect();
            sample.docs.push(doc(i, &terms));
        }
        sample.take_checkpoint();
        sample.take_checkpoint();
        assert_eq!(sample.checkpoints.len(), 1, "same size recorded once");
        sample.docs.push(doc(10, &[0, 1]));
        sample.take_checkpoint();
        assert_eq!(sample.checkpoints.len(), 2);
    }

    #[test]
    fn empty_sample_checkpoint_is_noop() {
        let mut sample = DocumentSample::default();
        sample.take_checkpoint();
        assert!(sample.checkpoints.is_empty());
        assert!(sample.is_empty());
        assert_eq!(sample.len(), 0);
    }
}
