//! Refresh scheduling: which databases deserve this round's re-probe
//! budget.
//!
//! Content summaries are estimates from samples (Section 2 of the paper)
//! and decay as the underlying databases drift, so the serving tier
//! re-probes a few databases per round instead of re-freezing the world.
//! The scheduler decides *which* few. The policy blends
//!
//! * **staleness** — rounds since a database was last re-probed; every
//!   database eventually comes up (no starvation), and
//! * **uncertainty** — databases whose sample covers a smaller fraction
//!   of the estimated database size get priority, in the spirit of
//!   stratified utility sampling: the worse the current estimate, the
//!   more a probe buys.
//!
//! Ties break round-robin from a rotating cursor, so a cold start (all
//! priorities equal) degrades to exact round-robin coverage. The whole
//! schedule is a pure function of `(seed, budget, coverage inputs)` —
//! no RNG is consumed here, the seed only rotates the starting cursor —
//! so a replayed refresh run picks the same databases in the same order,
//! which is what keeps delta chains reproducible.

/// Deterministic, budgeted picker of databases to re-probe.
#[derive(Debug, Clone)]
pub struct RefreshScheduler {
    /// Databases re-probed per round (at most).
    budget: usize,
    /// Round-robin tie-break cursor; rotated past each round's picks.
    cursor: usize,
    /// Rounds issued so far; `next_round` pre-increments, so the first
    /// round is 1 and `last[db] == 0` means "never re-probed".
    round: u64,
    /// Round each database was last picked (0 = never).
    last: Vec<u64>,
    /// Sample coverage estimate per database, clamped to `[0, 1]`;
    /// lower coverage → higher priority.
    coverage: Vec<f64>,
    /// Databases the caller can actually re-probe (has a probe source).
    eligible: Vec<bool>,
}

impl RefreshScheduler {
    /// A scheduler over `n` databases picking at most `budget` per
    /// round. The seed only chooses where the round-robin cursor starts,
    /// so two runs with the same seed replay the same schedule.
    pub fn new(n: usize, budget: usize, seed: u64) -> RefreshScheduler {
        let cursor = if n == 0 { 0 } else { (seed % n as u64) as usize };
        RefreshScheduler {
            budget,
            cursor,
            round: 0,
            last: vec![0; n],
            coverage: vec![0.0; n],
            eligible: vec![true; n],
        }
    }

    /// Number of databases under management.
    pub fn len(&self) -> usize {
        self.last.len()
    }

    /// True when the scheduler manages no databases.
    pub fn is_empty(&self) -> bool {
        self.last.is_empty()
    }

    /// Rounds issued so far.
    pub fn rounds(&self) -> u64 {
        self.round
    }

    /// Mark whether `db` can be re-probed at all (defaults to true).
    pub fn set_eligible(&mut self, db: usize, eligible: bool) {
        self.eligible[db] = eligible;
    }

    /// Record `db`'s sample coverage — `sample_size / |D̂|`, or any
    /// other fraction-of-database-seen estimate. Non-finite values are
    /// treated as full coverage (no uncertainty bonus).
    pub fn set_coverage(&mut self, db: usize, coverage: f64) {
        self.coverage[db] = if coverage.is_finite() {
            coverage.clamp(0.0, 1.0)
        } else {
            1.0
        };
    }

    /// The priority `db` would carry in the *next* round: staleness
    /// scaled up by estimate uncertainty. Strictly positive, strictly
    /// increasing in rounds-since-refresh.
    pub fn priority(&self, db: usize) -> f64 {
        let staleness = (self.round + 1 - self.last[db]) as f64;
        staleness * (2.0 - self.coverage[db])
    }

    /// Pick this round's databases: the `budget` highest-priority
    /// eligible databases, ties broken round-robin from the cursor.
    /// Returned ascending by database index. Picked databases have
    /// their staleness reset; the cursor rotates past the picks.
    pub fn next_round(&mut self) -> Vec<usize> {
        self.round += 1;
        let n = self.len();
        if n == 0 || self.budget == 0 {
            return Vec::new();
        }
        let rotated = |db: usize| (db + n - self.cursor) % n;
        // `self.round` is already the round being scheduled, so staleness
        // is `round - last` here (a database picked last round carries 1).
        let prio =
            |db: usize| ((self.round - self.last[db]) as f64) * (2.0 - self.coverage[db]);
        let mut order: Vec<usize> = (0..n).filter(|&db| self.eligible[db]).collect();
        order.sort_by(|&a, &b| {
            prio(b)
                .partial_cmp(&prio(a))
                .expect("priorities are finite")
                .then_with(|| rotated(a).cmp(&rotated(b)))
        });
        order.truncate(self.budget);
        let mut picks = order;
        if let Some(&next_cursor) = picks.iter().max_by_key(|&&db| rotated(db)) {
            self.cursor = (next_cursor + 1) % n;
        }
        for &db in &picks {
            self.last[db] = self.round;
        }
        picks.sort_unstable();
        picks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_start_is_exact_round_robin() {
        let mut s = RefreshScheduler::new(5, 2, 0);
        let mut seen = Vec::new();
        for _ in 0..5 {
            let picks = s.next_round();
            assert_eq!(picks.len(), 2);
            seen.extend(picks);
        }
        // 10 picks over 5 dbs with equal priorities: every db exactly twice.
        for db in 0..5 {
            assert_eq!(seen.iter().filter(|&&d| d == db).count(), 2, "db {db}");
        }
        // And the first three rounds (6 picks) already cover every db —
        // nothing waits out a full extra cycle.
        let first_cycle: std::collections::BTreeSet<_> = seen[..6].iter().copied().collect();
        assert_eq!(first_cycle.len(), 5);
    }

    #[test]
    fn same_seed_replays_the_same_schedule() {
        let run = |seed| {
            let mut s = RefreshScheduler::new(7, 3, seed);
            (0..4).map(|_| s.next_round()).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        // A different seed rotates the cursor differently on the first
        // (all-ties) round.
        assert_ne!(run(0)[0], run(3)[0]);
    }

    #[test]
    fn low_coverage_jumps_the_queue() {
        let mut s = RefreshScheduler::new(4, 1, 0);
        // db 3 has seen almost none of its database; the rest are fully
        // covered. Staleness ties, so uncertainty decides.
        for db in 0..3 {
            s.set_coverage(db, 1.0);
        }
        s.set_coverage(3, 0.01);
        assert_eq!(s.next_round(), vec![3]);
        // Once refreshed, its staleness resets and the stale full-coverage
        // databases overtake it again.
        assert_eq!(s.next_round(), vec![0]);
    }

    #[test]
    fn ineligible_databases_are_never_picked() {
        let mut s = RefreshScheduler::new(3, 3, 0);
        s.set_eligible(1, false);
        for _ in 0..5 {
            assert!(!s.next_round().contains(&1));
        }
    }

    #[test]
    fn no_starvation_under_skewed_coverage() {
        let mut s = RefreshScheduler::new(6, 1, 1);
        s.set_coverage(0, 0.0); // permanently most-uncertain
        for db in 1..6 {
            s.set_coverage(db, 0.9);
        }
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..30 {
            for db in s.next_round() {
                seen.insert(db);
            }
        }
        // Staleness grows without bound, so even well-covered databases
        // eventually outrank the uncertain favourite.
        assert_eq!(seen.len(), 6, "every database refreshed at least once");
    }

    #[test]
    fn empty_and_zero_budget_schedulers_yield_nothing() {
        assert!(RefreshScheduler::new(0, 4, 9).next_round().is_empty());
        assert!(RefreshScheduler::new(4, 0, 9).next_round().is_empty());
        let mut s = RefreshScheduler::new(3, 8, 0);
        assert_eq!(s.next_round(), vec![0, 1, 2], "budget beyond n picks all");
    }
}
