//! The probe classifier behind Focused Probing — a rule-based document
//! classifier in the spirit of QProber (Gravano, Ipeirotis & Sahami,
//! ACM TOIS 2003).
//!
//! For every non-root category the classifier learns a handful of
//! single-word *probes*: words that are frequent in documents of that
//! category's subtree and rare in its siblings'. Focused Probing turns each
//! probe into a query; the number of matches a category's probes generate
//! at a database measures how much of the database lies under that
//! category.

use std::collections::HashMap;

use textindex::{Document, TermId};

use dbselect_core::hierarchy::{CategoryId, Hierarchy};

/// Per-category probe words.
#[derive(Debug, Clone)]
pub struct ProbeClassifier {
    probes: Vec<Vec<TermId>>,
}

impl ProbeClassifier {
    /// Train on labeled example documents (`(leaf category, document)`).
    /// Every document counts as an example for each category on its leaf's
    /// path. For each non-root category, up to `probes_per_category` words
    /// are chosen by an odds-ratio-style score against the sibling
    /// categories.
    pub fn train(
        hierarchy: &Hierarchy,
        examples: &[(CategoryId, Document)],
        probes_per_category: usize,
    ) -> Self {
        // Document frequency of every word within each category subtree.
        let mut node_df: Vec<HashMap<TermId, u32>> = vec![HashMap::new(); hierarchy.len()];
        let mut node_docs: Vec<u32> = vec![0; hierarchy.len()];
        for (leaf, doc) in examples {
            let distinct = doc.distinct_terms();
            for node in hierarchy.path_from_root(*leaf) {
                node_docs[node] += 1;
                for &term in &distinct {
                    *node_df[node].entry(term).or_insert(0) += 1;
                }
            }
        }

        let mut probes: Vec<Vec<TermId>> = vec![Vec::new(); hierarchy.len()];
        for node in hierarchy.ids() {
            if node == Hierarchy::ROOT || node_docs[node] == 0 {
                continue;
            }
            let parent = hierarchy.parent(node).expect("non-root node has a parent");
            let sibling_docs = node_docs[parent] - node_docs[node];
            let mut scored: Vec<(f64, TermId)> = node_df[node]
                .iter()
                .filter(|&(_, &df)| df >= 2)
                .map(|(&term, &df)| {
                    let p_here = f64::from(df) / f64::from(node_docs[node]);
                    let df_sib = node_df[parent]
                        .get(&term)
                        .copied()
                        .unwrap_or(0)
                        .saturating_sub(df);
                    let p_sib = if sibling_docs > 0 {
                        f64::from(df_sib) / f64::from(sibling_docs)
                    } else {
                        0.0
                    };
                    // Frequent here, rare among siblings.
                    let score = p_here * ((p_here + 1e-6) / (p_sib + 1e-6)).ln();
                    (score, term)
                })
                .collect();
            scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
            probes[node] = scored
                .into_iter()
                .take(probes_per_category)
                .filter(|&(score, _)| score > 0.0)
                .map(|(_, t)| t)
                .collect();
        }
        ProbeClassifier { probes }
    }

    /// The probe words for `category` (empty for the root and for
    /// categories without training data).
    pub fn probes(&self, category: CategoryId) -> &[TermId] {
        &self.probes[category]
    }

    /// Classify a single document: starting at the root, repeatedly descend
    /// into the child whose probes hit the document most, stopping when no
    /// child's probes match. (Used for tests and diagnostics; Focused
    /// Probing classifies whole *databases* with the same descent logic on
    /// aggregate match counts.)
    pub fn classify_document(&self, hierarchy: &Hierarchy, doc: &Document) -> CategoryId {
        let distinct = doc.distinct_terms();
        let mut node = Hierarchy::ROOT;
        loop {
            let best = hierarchy
                .children(node)
                .iter()
                .map(|&c| {
                    let hits = self.probes[c]
                        .iter()
                        .filter(|p| distinct.binary_search(p).is_ok())
                        .count();
                    (hits, c)
                })
                .max_by_key(|&(hits, _)| hits);
            match best {
                Some((hits, child)) if hits > 0 => node = child,
                _ => return node,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::TestBedConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trained() -> (corpus::TestBed, ProbeClassifier) {
        let mut bed = TestBedConfig::tiny(21).build();
        let mut rng = StdRng::seed_from_u64(100);
        let examples = bed.training_documents(6, &mut rng);
        let classifier = ProbeClassifier::train(&bed.hierarchy, &examples, 8);
        (bed, classifier)
    }

    #[test]
    fn every_trained_category_gets_probes() {
        let (bed, classifier) = trained();
        for node in bed.hierarchy.ids() {
            if node == dbselect_core::hierarchy::Hierarchy::ROOT {
                assert!(classifier.probes(node).is_empty());
            } else {
                assert!(
                    !classifier.probes(node).is_empty(),
                    "category {} has no probes",
                    bed.hierarchy.full_name(node)
                );
            }
        }
    }

    #[test]
    fn probes_are_topical_not_background() {
        let (bed, classifier) = trained();
        // Topic-model words are named c{node}x{rank}; background g{rank}.
        let mut topical = 0usize;
        let mut total = 0usize;
        for node in bed.hierarchy.ids() {
            for &p in classifier.probes(node) {
                total += 1;
                if bed.dict.term(p).starts_with('c') {
                    topical += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            topical as f64 / total as f64 > 0.9,
            "{topical}/{total} probes are topic words"
        );
    }

    #[test]
    fn classify_document_finds_home_topic_mostly() {
        let (mut bed, classifier) = trained();
        let mut rng = StdRng::seed_from_u64(200);
        let fresh = bed.training_documents(3, &mut rng);
        let mut correct_top = 0usize;
        for (leaf, doc) in &fresh {
            let predicted = classifier.classify_document(&bed.hierarchy, doc);
            // Credit if the prediction lies on the true path (top-level
            // agreement is what FPS needs to descend correctly).
            let path = bed.hierarchy.path_from_root(*leaf);
            if path.contains(&predicted) || bed.hierarchy.is_ancestor_or_self(path[1], predicted) {
                correct_top += 1;
            }
        }
        let acc = correct_top as f64 / fresh.len() as f64;
        assert!(acc > 0.6, "path-consistent accuracy {acc}");
    }
}
