//! A RIPPER-style rule learner for Focused Probing, after QProber
//! (Gravano, Ipeirotis & Sahami, ACM TOIS 2003).
//!
//! QProber trains a rule-based document classifier (the paper used RIPPER)
//! and turns each learned rule — a conjunction of up to a few words — into
//! a boolean query: a document matching the query is (predicted) to belong
//! to the rule's category, so the number of *matches* the query generates
//! at a database measures how much of the database lies under that
//! category. [`RuleClassifier`] implements the learning side with
//! sequential covering and FOIL-gain literal selection:
//!
//! 1. for each category (one-vs-siblings, per hierarchy level), grow a
//!    conjunctive rule by greedily adding the word with the highest FOIL
//!    gain until the rule is (nearly) pure or reaches the length cap;
//! 2. keep the rule if it is precise enough, remove the positives it
//!    covers, and repeat until coverage or the rule budget runs out.
//!
//! The resulting multi-word probes are sharper than single discriminative
//! words: `[breast cancer]` pins "Health" far better than either word
//! alone — exactly the example Section 5.2 of the shrinkage paper uses.

use std::collections::{HashMap, HashSet};

use textindex::{Document, TermId};

use dbselect_core::hierarchy::{CategoryId, Hierarchy};

use crate::probes::ProbeSource;

/// One learned rule: a conjunction of terms (a boolean AND query).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The conjunct terms; a document matches iff it contains all of them.
    pub terms: Vec<TermId>,
}

impl Rule {
    /// Does `terms` (a document's *sorted* distinct terms) satisfy the rule?
    pub fn matches(&self, sorted_distinct_terms: &[TermId]) -> bool {
        self.terms
            .iter()
            .all(|t| sorted_distinct_terms.binary_search(t).is_ok())
    }
}

/// Rule-learner configuration.
#[derive(Debug, Clone, Copy)]
pub struct RuleLearnerConfig {
    /// Maximum literals per rule (QProber's rules are short).
    pub max_rule_len: usize,
    /// Maximum rules kept per category.
    pub max_rules: usize,
    /// Minimum precision (covered positives / covered examples) for a rule
    /// to be kept.
    pub min_precision: f64,
    /// Minimum positives a rule must cover.
    pub min_coverage: usize,
}

impl Default for RuleLearnerConfig {
    fn default() -> Self {
        RuleLearnerConfig {
            max_rule_len: 3,
            max_rules: 10,
            min_precision: 0.75,
            min_coverage: 2,
        }
    }
}

/// A trained rule classifier: a rule set per category.
#[derive(Debug, Clone)]
pub struct RuleClassifier {
    rules: Vec<Vec<Rule>>,
}

impl RuleClassifier {
    /// Train on labeled example documents (`(leaf category, document)`),
    /// one-vs-siblings at every hierarchy level.
    pub fn train(
        hierarchy: &Hierarchy,
        examples: &[(CategoryId, Document)],
        config: &RuleLearnerConfig,
    ) -> Self {
        // Precompute each example's sorted distinct terms and path.
        let prepared: Vec<(Vec<CategoryId>, Vec<TermId>)> = examples
            .iter()
            .map(|(leaf, doc)| (hierarchy.path_from_root(*leaf), doc.distinct_terms()))
            .collect();

        let mut rules: Vec<Vec<Rule>> = vec![Vec::new(); hierarchy.len()];
        for node in hierarchy.ids() {
            let Some(parent) = hierarchy.parent(node) else {
                continue;
            };
            // Positives: examples whose path passes through `node`.
            // Negatives: examples under `parent` but a different child.
            let mut positives: Vec<&[TermId]> = Vec::new();
            let mut negatives: Vec<&[TermId]> = Vec::new();
            for (path, terms) in &prepared {
                if path.contains(&node) {
                    positives.push(terms);
                } else if path.contains(&parent) {
                    negatives.push(terms);
                }
            }
            if positives.is_empty() {
                continue;
            }
            rules[node] = learn_rules(&positives, &negatives, config);
        }
        RuleClassifier { rules }
    }

    /// The learned rules for `category`.
    pub fn rules(&self, category: CategoryId) -> &[Rule] {
        &self.rules[category]
    }

    /// Classify one document by descending the hierarchy, following the
    /// child with the most matching rules (ties to the smaller id), and
    /// stopping when no child's rules fire.
    pub fn classify_document(&self, hierarchy: &Hierarchy, doc: &Document) -> CategoryId {
        let distinct = doc.distinct_terms();
        let mut node = Hierarchy::ROOT;
        loop {
            let best = hierarchy
                .children(node)
                .iter()
                .map(|&c| {
                    let hits = self.rules[c]
                        .iter()
                        .filter(|r| r.matches(&distinct))
                        .count();
                    (hits, std::cmp::Reverse(c))
                })
                .max();
            match best {
                Some((hits, std::cmp::Reverse(child))) if hits > 0 => node = child,
                _ => return node,
            }
        }
    }
}

impl ProbeSource for RuleClassifier {
    fn probes(&self, category: CategoryId) -> Vec<Vec<TermId>> {
        self.rules[category]
            .iter()
            .map(|r| r.terms.clone())
            .collect()
    }
}

/// Sequential covering over one binary problem.
fn learn_rules(
    positives: &[&[TermId]],
    negatives: &[&[TermId]],
    config: &RuleLearnerConfig,
) -> Vec<Rule> {
    let mut remaining: Vec<&[TermId]> = positives.to_vec();
    let mut rules = Vec::new();
    while !remaining.is_empty() && rules.len() < config.max_rules {
        let Some(rule) = grow_rule(&remaining, negatives, config) else {
            break;
        };
        let covered: Vec<bool> = remaining.iter().map(|terms| rule.matches(terms)).collect();
        let covered_count = covered.iter().filter(|&&c| c).count();
        let false_positives = negatives.iter().filter(|terms| rule.matches(terms)).count();
        let precision = covered_count as f64 / (covered_count + false_positives).max(1) as f64;
        if covered_count < config.min_coverage || precision < config.min_precision {
            break;
        }
        remaining = remaining
            .iter()
            .zip(&covered)
            .filter(|(_, &c)| !c)
            .map(|(terms, _)| *terms)
            .collect();
        rules.push(rule);
    }
    rules
}

/// Greedily grow one conjunctive rule by FOIL gain.
fn grow_rule(
    positives: &[&[TermId]],
    negatives: &[&[TermId]],
    config: &RuleLearnerConfig,
) -> Option<Rule> {
    let mut covered_pos: Vec<&[TermId]> = positives.to_vec();
    let mut covered_neg: Vec<&[TermId]> = negatives.to_vec();
    let mut terms: Vec<TermId> = Vec::new();
    while terms.len() < config.max_rule_len && !covered_neg.is_empty() {
        let Some(best) = best_literal(&covered_pos, &covered_neg, &terms) else {
            break;
        };
        terms.push(best);
        covered_pos.retain(|t| t.binary_search(&best).is_ok());
        covered_neg.retain(|t| t.binary_search(&best).is_ok());
        if covered_pos.is_empty() {
            return None; // over-specialized
        }
    }
    if terms.is_empty() {
        None
    } else {
        Some(Rule { terms })
    }
}

/// FOIL gain: `p1 · (log2(p1/(p1+n1)) − log2(p0/(p0+n0)))` for adding a
/// literal, maximized over candidate terms present in some covered
/// positive.
fn best_literal(
    covered_pos: &[&[TermId]],
    covered_neg: &[&[TermId]],
    existing: &[TermId],
) -> Option<TermId> {
    let p0 = covered_pos.len() as f64;
    let n0 = covered_neg.len() as f64;
    if p0 == 0.0 {
        return None;
    }
    let base = (p0 / (p0 + n0)).log2();
    // Candidate counts.
    let mut pos_counts: HashMap<TermId, u32> = HashMap::new();
    for terms in covered_pos {
        for &t in *terms {
            *pos_counts.entry(t).or_insert(0) += 1;
        }
    }
    let mut neg_counts: HashMap<TermId, u32> = HashMap::new();
    for terms in covered_neg {
        for &t in *terms {
            *neg_counts.entry(t).or_insert(0) += 1;
        }
    }
    let existing: HashSet<TermId> = existing.iter().copied().collect();
    let mut best: Option<(f64, TermId)> = None;
    for (&t, &p1) in &pos_counts {
        if existing.contains(&t) {
            continue;
        }
        let p1 = f64::from(p1);
        let n1 = f64::from(neg_counts.get(&t).copied().unwrap_or(0));
        let gain = p1 * ((p1 / (p1 + n1)).log2() - base);
        // Deterministic tie-break on the smaller term id.
        if best.is_none_or(|(g, bt)| gain > g + 1e-12 || (gain > g - 1e-12 && t < bt)) {
            best = Some((gain, t));
        }
    }
    best.filter(|&(gain, _)| gain > 0.0).map(|(_, t)| t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::TestBedConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn doc_from(terms: &[TermId]) -> Vec<TermId> {
        let mut t = terms.to_vec();
        t.sort_unstable();
        t.dedup();
        t
    }

    #[test]
    fn rule_matching_is_conjunctive() {
        let rule = Rule { terms: vec![2, 5] };
        assert!(rule.matches(&doc_from(&[1, 2, 5, 9])));
        assert!(!rule.matches(&doc_from(&[2, 9])));
        assert!(!rule.matches(&[]));
    }

    #[test]
    fn learner_separates_clean_classes() {
        // Positives all contain {10, 11}; negatives contain 10 xor 11.
        let pos_data: Vec<Vec<TermId>> = (0..6).map(|i| doc_from(&[10, 11, 20 + i])).collect();
        let neg_data: Vec<Vec<TermId>> = (0..6)
            .map(|i| doc_from(&[if i % 2 == 0 { 10 } else { 11 }, 30 + i]))
            .collect();
        let positives: Vec<&[TermId]> = pos_data.iter().map(|d| d.as_slice()).collect();
        let negatives: Vec<&[TermId]> = neg_data.iter().map(|d| d.as_slice()).collect();
        let rules = learn_rules(&positives, &negatives, &RuleLearnerConfig::default());
        assert!(!rules.is_empty());
        // Every positive matched, no negative matched.
        for p in &positives {
            assert!(rules.iter().any(|r| r.matches(p)), "positive uncovered");
        }
        for n in &negatives {
            assert!(!rules.iter().any(|r| r.matches(n)), "negative covered");
        }
        // The separating rule needs both terms.
        assert!(rules[0].terms.len() >= 2);
    }

    #[test]
    fn learner_handles_no_signal() {
        // Positives and negatives are identical distributions — no rule
        // should reach the precision bar.
        let data: Vec<Vec<TermId>> = (0..8).map(|i| doc_from(&[1, 2, i])).collect();
        let positives: Vec<&[TermId]> = data[..4].iter().map(|d| d.as_slice()).collect();
        let negatives: Vec<&[TermId]> = data[4..].iter().map(|d| d.as_slice()).collect();
        let config = RuleLearnerConfig {
            min_precision: 0.95,
            ..Default::default()
        };
        let rules = learn_rules(&positives, &negatives, &config);
        // Either nothing, or only rules keyed to the idiosyncratic third
        // term (which covers one doc and fails min_coverage).
        assert!(rules.len() <= 1);
    }

    #[test]
    fn trained_classifier_uses_multi_word_probes() {
        let mut bed = TestBedConfig::tiny(81).build();
        let mut rng = StdRng::seed_from_u64(81);
        let examples = bed.training_documents(10, &mut rng);
        let classifier =
            RuleClassifier::train(&bed.hierarchy, &examples, &RuleLearnerConfig::default());
        let mut total_rules = 0;
        for node in bed.hierarchy.ids() {
            for rule in classifier.rules(node) {
                total_rules += 1;
                assert!(!rule.terms.is_empty() && rule.terms.len() <= 3);
            }
        }
        assert!(total_rules > 0, "some rules learned");
        // The synthetic topic vocabularies are disjoint per node, so pure
        // single-word rules are expected here; the conjunction machinery is
        // exercised by `learner_separates_clean_classes`, where no single
        // word separates the classes.
    }

    #[test]
    fn classification_is_path_consistent() {
        let mut bed = TestBedConfig::tiny(82).build();
        let mut rng = StdRng::seed_from_u64(82);
        let examples = bed.training_documents(10, &mut rng);
        let classifier =
            RuleClassifier::train(&bed.hierarchy, &examples, &RuleLearnerConfig::default());
        let fresh = bed.training_documents(3, &mut rng);
        let mut consistent = 0usize;
        for (leaf, doc) in &fresh {
            let predicted = classifier.classify_document(&bed.hierarchy, doc);
            let path = bed.hierarchy.path_from_root(*leaf);
            if path.contains(&predicted) || bed.hierarchy.is_ancestor_or_self(path[1], predicted) {
                consistent += 1;
            }
        }
        assert!(
            consistent as f64 / fresh.len() as f64 > 0.6,
            "path-consistent accuracy {consistent}/{}",
            fresh.len()
        );
    }

    #[test]
    fn probe_source_yields_rule_queries() {
        let mut bed = TestBedConfig::tiny(83).build();
        let mut rng = StdRng::seed_from_u64(83);
        let examples = bed.training_documents(8, &mut rng);
        let classifier =
            RuleClassifier::train(&bed.hierarchy, &examples, &RuleLearnerConfig::default());
        let some_node = bed.hierarchy.children(Hierarchy::ROOT)[0];
        let probes = classifier.probes(some_node);
        assert_eq!(probes.len(), classifier.rules(some_node).len());
    }
}
