//! Database size estimation via *sample-resample* (Si & Callan, SIGIR
//! 2003), as used in Section 5.2 of the paper.
//!
//! The idea: pick words from the document sample, query the database with
//! each, and compare the reported match count `df_D(w)` with the word's
//! sample document frequency `df_S(w)`. If the sample is representative,
//! `df_D(w) / |D| ≈ df_S(w) / |S|`, so each probe yields the estimate
//! `|D̂| = df_D(w) · |S| / df_S(w)`; the estimates are averaged.

use rand::Rng;
use textindex::RemoteDatabase;

use crate::sample::DocumentSample;

/// Configuration for sample-resample.
#[derive(Debug, Clone, Copy)]
pub struct SizeEstimationConfig {
    /// Number of probe words to resample.
    pub probes: usize,
    /// Minimum sample document frequency for a word to be eligible — very
    /// rare sample words give unstable ratios.
    pub min_sample_df: u32,
}

impl Default for SizeEstimationConfig {
    fn default() -> Self {
        SizeEstimationConfig {
            probes: 5,
            min_sample_df: 3,
        }
    }
}

/// Estimate `|D|` by sample-resample. Reuses match counts already observed
/// for probe words when available (no extra query cost), otherwise issues
/// one query per probe. Returns the sample size itself when the sample is
/// too small to probe.
pub fn sample_resample<R: Rng + ?Sized>(
    db: &dyn RemoteDatabase,
    sample: &DocumentSample,
    config: &SizeEstimationConfig,
    rng: &mut R,
) -> f64 {
    let sample_size = sample.len() as f64;
    if sample.is_empty() {
        return 0.0;
    }
    let summary = sample.raw_summary();
    // Eligible words: frequent enough in the sample.
    let mut eligible: Vec<(u32, u32)> = summary // (term, sample_df)
        .iter()
        .filter(|(_, s)| s.sample_df >= config.min_sample_df)
        .map(|(t, s)| (t, s.sample_df))
        .collect();
    if eligible.is_empty() {
        return sample_size;
    }
    // Deterministic order before random selection.
    eligible.sort_unstable();
    let mut estimates = Vec::with_capacity(config.probes);
    for _ in 0..config.probes.min(eligible.len()) {
        let idx = rng.gen_range(0..eligible.len());
        let (term, sample_df) = eligible.swap_remove(idx);
        let df_db = match sample.exact_df.get(&term) {
            Some(&df) => f64::from(df),
            None => db.query(&[term], 0).total_matches as f64,
        };
        estimates.push(df_db * sample_size / f64::from(sample_df));
        if eligible.is_empty() {
            break;
        }
    }
    let estimate = estimates.iter().sum::<f64>() / estimates.len() as f64;
    // A database cannot be smaller than the distinct documents sampled
    // from it.
    estimate.max(sample_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qbs::{qbs_sample, QbsConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use textindex::{Document, IndexedDatabase, TermId};

    /// 400 docs; term t in docs where i % (t+1) == 0 (Zipf-ish df curve).
    fn fixture_db() -> IndexedDatabase {
        let docs: Vec<Document> = (0..400u32)
            .map(|i| {
                let terms: Vec<TermId> = (0..60).filter(|&t| i % (t + 1) == 0).collect();
                Document::from_tokens(i, terms)
            })
            .collect();
        IndexedDatabase::new("fixture", docs)
    }

    #[test]
    fn estimates_are_in_the_right_ballpark() {
        let db = fixture_db();
        let mut rng = StdRng::seed_from_u64(17);
        let qbs = QbsConfig {
            target_sample_size: 100,
            ..Default::default()
        };
        let sample = qbs_sample(&db, &[0, 1, 2], &qbs, &mut rng);
        let est = sample_resample(&db, &sample, &SizeEstimationConfig::default(), &mut rng);
        // True size 400; accept a generous band — the method's accuracy
        // depends on sample representativeness.
        assert!((100.0..=1600.0).contains(&est), "estimate {est}");
    }

    #[test]
    fn estimate_never_below_sample_size() {
        let db = fixture_db();
        let mut rng = StdRng::seed_from_u64(18);
        let qbs = QbsConfig {
            target_sample_size: 50,
            ..Default::default()
        };
        let sample = qbs_sample(&db, &[0, 1], &qbs, &mut rng);
        let est = sample_resample(&db, &sample, &SizeEstimationConfig::default(), &mut rng);
        assert!(est >= sample.len() as f64);
    }

    #[test]
    fn empty_sample_yields_zero() {
        let db = fixture_db();
        let mut rng = StdRng::seed_from_u64(19);
        let est = sample_resample(
            &db,
            &DocumentSample::default(),
            &SizeEstimationConfig::default(),
            &mut rng,
        );
        assert_eq!(est, 0.0);
    }

    #[test]
    fn reuses_exact_df_without_new_queries() {
        // All eligible words already have exact counts: the estimator must
        // not panic and must produce a finite value.
        let db = fixture_db();
        let mut rng = StdRng::seed_from_u64(20);
        let qbs = QbsConfig {
            target_sample_size: 60,
            ..Default::default()
        };
        let sample = qbs_sample(&db, &[0, 1, 2, 3], &qbs, &mut rng);
        let est = sample_resample(&db, &sample, &SizeEstimationConfig::default(), &mut rng);
        assert!(est.is_finite() && est > 0.0);
    }
}
