//! The probe interface Focused Probing samples through.
//!
//! FPS only needs, for each category, a set of boolean queries whose match
//! counts measure how much of a database belongs to that category. Two
//! implementations exist: the single-word discriminative classifier
//! ([`crate::classifier::ProbeClassifier`], fast to train) and the
//! RIPPER-style rule learner ([`crate::rules::RuleClassifier`], QProber's
//! multi-word rules).

use textindex::TermId;

use dbselect_core::hierarchy::CategoryId;

/// A source of probe queries per category.
pub trait ProbeSource {
    /// The probe queries for `category`: each inner vector is one
    /// conjunctive (AND) query. Empty for the root and untrained nodes.
    fn probes(&self, category: CategoryId) -> Vec<Vec<TermId>>;
}

impl ProbeSource for crate::classifier::ProbeClassifier {
    fn probes(&self, category: CategoryId) -> Vec<Vec<TermId>> {
        crate::classifier::ProbeClassifier::probes(self, category)
            .iter()
            .map(|&w| vec![w])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::ProbeClassifier;
    use corpus::TestBedConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn word_classifier_probes_are_single_word_queries() {
        let mut bed = TestBedConfig::tiny(91).build();
        let mut rng = StdRng::seed_from_u64(91);
        let examples = bed.training_documents(5, &mut rng);
        let classifier = ProbeClassifier::train(&bed.hierarchy, &examples, 6);
        let node = bed
            .hierarchy
            .children(dbselect_core::hierarchy::Hierarchy::ROOT)[0];
        let probes = ProbeSource::probes(&classifier, node);
        assert!(!probes.is_empty());
        assert!(probes.iter().all(|q| q.len() == 1));
    }
}
