//! `sampling` — building approximate content summaries of uncooperative
//! text databases by querying (Sections 2.2 and 5.2 of the paper).
//!
//! * [`qbs`] — Query-Based Sampling (Callan & Connell): random single-word
//!   queries, ≤4 unseen documents per query, stop at 300 documents or 500
//!   consecutive misses;
//! * [`classifier`] + [`fps`] — Focused Probing (Ipeirotis & Gravano):
//!   classifier-derived topical probes that simultaneously sample the
//!   database and classify it into the topic hierarchy;
//! * [`size`] — sample-resample database size estimation (Si & Callan);
//! * [`pipeline`] — the four summary-construction pipelines of the paper's
//!   evaluation: {QBS, FPS} × {with, without} Appendix-A frequency
//!   estimation.
//!
//! Everything here talks to databases exclusively through
//! [`textindex::RemoteDatabase`], the restricted "search box only"
//! interface, so no sampler can accidentally peek at hidden state.

pub mod classifier;
pub mod fps;
pub mod parallel;
pub mod pipeline;
pub mod probes;
pub mod qbs;
pub mod refresh;
pub mod rules;
pub mod sample;
pub mod scheduler;
pub mod size;

pub use classifier::ProbeClassifier;
pub use fps::{fps_sample, FpsConfig, FpsOutcome};
pub use parallel::{profile_fps_many, profile_qbs_many};
pub use pipeline::{
    profile_fps, profile_qbs, summarize, DatabaseProfile, PipelineConfig, SamplerKind,
};
pub use probes::ProbeSource;
pub use qbs::{qbs_sample, QbsConfig};
pub use refresh::RefreshScheduler;
pub use rules::{Rule, RuleClassifier, RuleLearnerConfig};
pub use sample::DocumentSample;
pub use scheduler::{db_rng, fan_out};
pub use size::{sample_resample, SizeEstimationConfig};
