//! End-to-end summary construction: sampler → size estimation → frequency
//! estimation → [`ContentSummary`].
//!
//! Section 5.2 of the paper evaluates each sampler (QBS, FPS) both **with
//! and without** frequency estimation; this module packages those four
//! pipelines behind one call.

use rand::Rng;
use textindex::{RemoteDatabase, TermId};

use dbselect_core::freqest::{apply_frequency_estimation, FrequencyEstimator};
use dbselect_core::hierarchy::{CategoryId, Hierarchy};
use dbselect_core::summary::ContentSummary;

use crate::fps::{fps_sample, FpsConfig};
use crate::probes::ProbeSource;
use crate::qbs::{qbs_sample, QbsConfig};
use crate::sample::DocumentSample;
use crate::size::{sample_resample, SizeEstimationConfig};

/// Which sampling algorithm a profile came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplerKind {
    /// Query-Based Sampling (random single-word probes).
    Qbs,
    /// Focused Probing (classifier-derived probes + classification).
    Fps,
}

/// Everything learned about one remote database.
#[derive(Debug, Clone)]
pub struct DatabaseProfile {
    /// The approximate content summary `Ŝ(D)`.
    pub summary: ContentSummary,
    /// The automatically derived classification (FPS only).
    pub classification: Option<CategoryId>,
    /// The raw sample (kept for diagnostics and re-processing).
    pub sample: DocumentSample,
    /// Which sampler produced this profile.
    pub sampler: SamplerKind,
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineConfig {
    /// QBS parameters.
    pub qbs: QbsConfig,
    /// FPS parameters.
    pub fps: FpsConfig,
    /// Sample-resample parameters.
    pub size: SizeEstimationConfig,
    /// Apply Appendix-A frequency estimation (with sample-resample database
    /// size estimation). Without it the summary treats the sample itself as
    /// the collection.
    pub frequency_estimation: bool,
}

/// Profile a database with QBS.
pub fn profile_qbs<R: Rng + ?Sized>(
    db: &dyn RemoteDatabase,
    seed_lexicon: &[TermId],
    config: &PipelineConfig,
    rng: &mut R,
) -> DatabaseProfile {
    let sample = qbs_sample(db, seed_lexicon, &config.qbs, rng);
    let summary = summarize(db, &sample, config, rng);
    DatabaseProfile {
        summary,
        classification: None,
        sample,
        sampler: SamplerKind::Qbs,
    }
}

/// Profile a database with FPS (which also classifies it).
pub fn profile_fps<R: Rng + ?Sized>(
    db: &dyn RemoteDatabase,
    hierarchy: &Hierarchy,
    classifier: &dyn ProbeSource,
    config: &PipelineConfig,
    rng: &mut R,
) -> DatabaseProfile {
    let outcome = fps_sample(db, hierarchy, classifier, &config.fps);
    let summary = summarize(db, &outcome.sample, config, rng);
    DatabaseProfile {
        summary,
        classification: Some(outcome.classification),
        sample: outcome.sample,
        sampler: SamplerKind::Fps,
    }
}

/// Build the content summary from a sample per the pipeline configuration.
pub fn summarize<R: Rng + ?Sized>(
    db: &dyn RemoteDatabase,
    sample: &DocumentSample,
    config: &PipelineConfig,
    rng: &mut R,
) -> ContentSummary {
    let mut summary = sample.raw_summary();
    if !config.frequency_estimation {
        return summary;
    }
    let db_size = sample_resample(db, sample, &config.size, rng);
    match FrequencyEstimator::from_checkpoints(&sample.checkpoints) {
        Some(estimator) => {
            apply_frequency_estimation(&mut summary, &estimator, &sample.exact_df, db_size);
        }
        None => {
            // Too few checkpoints for the regression (tiny sample): fall
            // back to plain size scaling.
            summary.set_db_size(db_size);
        }
    }
    summary
}

#[cfg(test)]
#[path = "pipeline_tests.rs"]
mod pipeline_tests;
