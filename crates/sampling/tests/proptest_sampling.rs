//! Property-based tests for the samplers: regardless of database shape and
//! RNG seed, the samplers must terminate, never duplicate documents, never
//! fabricate match counts, and respect their configured limits.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

use sampling::{qbs_sample, sample_resample, QbsConfig, SizeEstimationConfig};
use textindex::{Document, IndexedDatabase, TermId};

/// An arbitrary small database: each inner vec is a document's terms.
fn db_strategy() -> impl Strategy<Value = IndexedDatabase> {
    prop::collection::vec(prop::collection::vec(0u32..30, 1..15), 1..60).prop_map(|docs| {
        let documents: Vec<Document> = docs
            .into_iter()
            .enumerate()
            .map(|(i, t)| Document::from_tokens(i as u32, t))
            .collect();
        IndexedDatabase::new("prop-db", documents)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// QBS terminates, keeps at most `target_sample_size` distinct
    /// documents, and every exact df it records matches the database truth.
    #[test]
    fn qbs_invariants(db in db_strategy(), seed in 0u64..500, target in 1usize..40) {
        let config = QbsConfig {
            target_sample_size: target,
            max_consecutive_failures: 30,
            ..Default::default()
        };
        let lexicon: Vec<TermId> = (0..10).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let sample = qbs_sample(&db, &lexicon, &config, &mut rng);
        prop_assert!(sample.len() <= target);
        prop_assert!(sample.len() <= db.num_docs());
        let ids: HashSet<u32> = sample.docs.iter().map(|d| d.id).collect();
        prop_assert_eq!(ids.len(), sample.docs.len(), "documents are distinct");
        for (&term, &df) in &sample.exact_df {
            prop_assert_eq!(df as usize, db.index().document_frequency(term));
        }
        // Checkpoint sizes strictly increase.
        prop_assert!(sample
            .checkpoints
            .windows(2)
            .all(|w| w[0].sample_size < w[1].sample_size));
    }

    /// Sample-resample estimates are finite, non-negative, and at least the
    /// sample size for non-empty samples.
    #[test]
    fn size_estimate_invariants(db in db_strategy(), seed in 0u64..500) {
        let config = QbsConfig {
            target_sample_size: 20,
            max_consecutive_failures: 30,
            ..Default::default()
        };
        let lexicon: Vec<TermId> = (0..10).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let sample = qbs_sample(&db, &lexicon, &config, &mut rng);
        let estimate =
            sample_resample(&db, &sample, &SizeEstimationConfig::default(), &mut rng);
        prop_assert!(estimate.is_finite());
        prop_assert!(estimate >= 0.0);
        if !sample.is_empty() {
            prop_assert!(estimate >= sample.len() as f64);
        }
    }

    /// Identical seeds give identical samples (determinism end to end).
    #[test]
    fn qbs_is_deterministic(db in db_strategy(), seed in 0u64..200) {
        let config = QbsConfig {
            target_sample_size: 15,
            max_consecutive_failures: 20,
            ..Default::default()
        };
        let lexicon: Vec<TermId> = (0..10).collect();
        let a = qbs_sample(&db, &lexicon, &config, &mut StdRng::seed_from_u64(seed));
        let b = qbs_sample(&db, &lexicon, &config, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(a.docs, b.docs);
        prop_assert_eq!(a.exact_df, b.exact_df);
        prop_assert_eq!(a.queries_sent, b.queries_sent);
    }
}
