//! A self-contained stand-in for the subset of the `rand` 0.8 API this
//! workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen` / `gen_range`.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves the `rand` dependency to this path crate instead. The stream is
//! **not** bit-compatible with upstream `rand` — it does not need to be:
//! every consumer in this repository only relies on *self-consistent*
//! determinism (same seed → same stream, forever). The generator is
//! xoshiro256++ seeded via SplitMix64, the same construction upstream's
//! small-rng family uses.

use std::ops::{Range, RangeInclusive};

/// The core source of randomness: a 64-bit word stream.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (top half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a 64-bit seed (the only constructor this workspace uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = splitmix64(&mut state);
            let word = state.to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Values samplable from the uniform "standard" distribution, backing
/// [`Rng::gen`].
pub trait StandardSample {
    /// Draw one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::standard_sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as StandardSample>::standard_sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Sample uniformly from `range`. Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..10)] = true;
            let x = rng.gen_range(3u32..=5);
            assert!((3..=5).contains(&x));
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let g = rng.gen_range(0.25..=0.75f64);
            assert!((0.25..=0.75).contains(&g));
        }
        assert!(seen.iter().all(|&b| b), "all buckets of 0..10 reachable");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
