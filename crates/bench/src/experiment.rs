//! The end-to-end experiment harness: sample every database of a test bed,
//! build (optionally frequency-estimated) summaries, classify, aggregate
//! category summaries, shrink, and run the database selection strategies of
//! the paper's evaluation.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use broker::{Catalog, CatalogEntry, SelectionEngine, DEFAULT_CACHE_CAPACITY};
use corpus::TestBed;
use dbselect_core::category_summary::{CategorySummaries, CategoryWeighting};
use dbselect_core::hierarchy::{CategoryId, Hierarchy};
use dbselect_core::shrinkage::{shrink, ShrinkageConfig, ShrunkSummary};
use dbselect_core::summary::ContentSummary;
use eval::rk::rk_for_ranking;
use sampling::{
    profile_fps, profile_qbs, FpsConfig, PipelineConfig, ProbeClassifier, ProbeSource,
    RuleClassifier, RuleLearnerConfig, SamplerKind,
};
use selection::{
    AdaptiveConfig, BGloss, Cori, HierarchicalSelector, Lm, RankedDatabase, SelectionAlgorithm,
    ShrinkageMode,
};
use textindex::{Document, TermId};

/// Which classifier supplies Focused Probing's probe queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClassifierKind {
    /// Top discriminative single words per category (fast).
    #[default]
    Words,
    /// RIPPER-style learned rules (QProber's multi-word boolean queries).
    Rules,
}

/// Harness configuration for one experimental condition.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Which sampler builds the summaries.
    pub sampler: SamplerKind,
    /// Apply Appendix-A frequency estimation + sample-resample sizing.
    pub frequency_estimation: bool,
    /// RNG seed for sampling (vary to average over QBS runs).
    pub seed: u64,
    /// Training documents per leaf for the FPS probe classifier.
    pub classifier_train_per_leaf: usize,
    /// Probe words per category for the FPS classifier.
    pub classifier_probes: usize,
    /// Which probe classifier FPS uses.
    pub classifier_kind: ClassifierKind,
    /// Focused Probing parameters (thresholds, probe depth).
    pub fps: FpsConfig,
    /// Category aggregation weighting (Eq. 1 vs footnote 5).
    pub weighting: CategoryWeighting,
    /// Subtract child overlap when building shrinkage components
    /// (Section 3.2; disable only for the ablation).
    pub subtract_overlap: bool,
}

impl HarnessConfig {
    /// The paper's default condition for a given sampler.
    pub fn new(sampler: SamplerKind, frequency_estimation: bool, seed: u64) -> Self {
        HarnessConfig {
            sampler,
            frequency_estimation,
            seed,
            classifier_train_per_leaf: 16,
            classifier_probes: 10,
            classifier_kind: ClassifierKind::Words,
            fps: FpsConfig::default(),
            weighting: CategoryWeighting::BySize,
            subtract_overlap: true,
        }
    }
}

/// Everything derived from sampling one test bed under one condition.
pub struct ProfiledCollection {
    /// Approximate summary `Ŝ(D)` per database.
    pub summaries: Vec<ContentSummary>,
    /// The raw document samples (consumed by ReDDE's centralized index).
    pub samples: Vec<Vec<Document>>,
    /// Classification used for shrinkage: the "directory" (true) category
    /// for QBS, the automatically derived one for FPS (Section 5.2).
    pub classifications: Vec<CategoryId>,
    /// Shrunk summary `R̂(D)` per database.
    pub shrunk: Vec<ShrunkSummary>,
    /// Category aggregates (for the hierarchical baseline).
    pub category_summaries: CategorySummaries,
    /// The Root category summary (the LM algorithm's global model `G`).
    pub root_summary: ContentSummary,
    /// The uniform word probability used for `C_0`.
    pub uniform_p: f64,
}

impl ProfiledCollection {
    /// Freeze into a broker [`Catalog`] (names supplied by the caller —
    /// typically the test bed's database names).
    pub fn catalog(&self, names: &[String]) -> Catalog {
        assert_eq!(names.len(), self.summaries.len());
        let entries = names
            .iter()
            .zip(self.summaries.iter().zip(&self.shrunk))
            .map(|(name, (unshrunk, shrunk))| CatalogEntry {
                name: name.clone(),
                unshrunk: unshrunk.clone(),
                shrunk: shrunk.clone(),
            })
            .collect::<Vec<_>>();
        Catalog::build(entries)
    }
}

/// Sample and summarize every database of `bed`, then shrink.
pub fn profile_collection(bed: &mut TestBed, config: &HarnessConfig) -> ProfiledCollection {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let pipeline = PipelineConfig {
        frequency_estimation: config.frequency_estimation,
        fps: config.fps,
        ..Default::default()
    };

    // FPS needs a trained probe classifier.
    let classifier: Option<Box<dyn ProbeSource>> = match config.sampler {
        SamplerKind::Fps => {
            let examples = bed.training_documents(config.classifier_train_per_leaf, &mut rng);
            Some(match config.classifier_kind {
                ClassifierKind::Words => Box::new(ProbeClassifier::train(
                    &bed.hierarchy,
                    &examples,
                    config.classifier_probes,
                )),
                ClassifierKind::Rules => Box::new(RuleClassifier::train(
                    &bed.hierarchy,
                    &examples,
                    &RuleLearnerConfig {
                        max_rules: config.classifier_probes,
                        ..Default::default()
                    },
                )),
            })
        }
        SamplerKind::Qbs => None,
    };

    let mut summaries = Vec::with_capacity(bed.databases.len());
    let mut samples = Vec::with_capacity(bed.databases.len());
    let mut classifications = Vec::with_capacity(bed.databases.len());
    for tdb in &bed.databases {
        match config.sampler {
            SamplerKind::Qbs => {
                let profile = profile_qbs(&tdb.db, &bed.seed_lexicon, &pipeline, &mut rng);
                summaries.push(profile.summary);
                samples.push(profile.sample.docs);
                // QBS has no classification of its own: use the directory
                // (true) category, like the paper's Google-Directory setup.
                classifications.push(tdb.category);
            }
            SamplerKind::Fps => {
                let profile = profile_fps(
                    &tdb.db,
                    &bed.hierarchy,
                    classifier.as_deref().expect("classifier trained for FPS"),
                    &pipeline,
                    &mut rng,
                );
                summaries.push(profile.summary);
                samples.push(profile.sample.docs);
                classifications.push(profile.classification.expect("FPS always classifies"));
            }
        }
    }

    let mut profiled = shrink_collection(
        &bed.hierarchy,
        bed.dict.len(),
        summaries,
        classifications,
        config,
    );
    profiled.samples = samples;
    profiled
}

/// Aggregate category summaries and shrink every database summary.
pub fn shrink_collection(
    hierarchy: &Hierarchy,
    vocabulary_size: usize,
    summaries: Vec<ContentSummary>,
    classifications: Vec<CategoryId>,
    config: &HarnessConfig,
) -> ProfiledCollection {
    let refs: Vec<(CategoryId, &ContentSummary)> = classifications
        .iter()
        .copied()
        .zip(summaries.iter())
        .collect();
    let category_summaries = CategorySummaries::build(hierarchy, &refs, config.weighting);
    let uniform_p = 1.0 / vocabulary_size.max(1) as f64;
    let shrink_config = ShrinkageConfig {
        uniform_p,
        ..Default::default()
    };
    let shrunk: Vec<ShrunkSummary> = summaries
        .iter()
        .zip(&classifications)
        .map(|(summary, &category)| {
            let components = category_summaries.components_for(
                hierarchy,
                category,
                summary,
                config.subtract_overlap,
            );
            shrink(summary, &components, &shrink_config)
        })
        .collect();
    let root_summary = category_summaries.category_summary(Hierarchy::ROOT);
    ProfiledCollection {
        summaries,
        samples: Vec::new(),
        classifications,
        shrunk,
        category_summaries,
        root_summary,
        uniform_p,
    }
}

/// The base selection algorithms of Section 5.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoKind {
    /// bGlOSS (no built-in smoothing).
    BGloss,
    /// CORI.
    Cori,
    /// Language modelling (λ = 0.5, `G` = Root summary).
    Lm,
}

impl AlgoKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            AlgoKind::BGloss => "bGlOSS",
            AlgoKind::Cori => "CORI",
            AlgoKind::Lm => "LM",
        }
    }

    /// Instantiate the scorer (LM needs the Root summary).
    pub fn build(
        &self,
        profiled: &ProfiledCollection,
    ) -> Arc<dyn SelectionAlgorithm + Send + Sync> {
        match self {
            AlgoKind::BGloss => Arc::new(BGloss),
            AlgoKind::Cori => Arc::new(Cori::default()),
            AlgoKind::Lm => Arc::new(Lm::new(0.5, &profiled.root_summary)),
        }
    }

    /// All three algorithms.
    pub fn all() -> [AlgoKind; 3] {
        [AlgoKind::BGloss, AlgoKind::Cori, AlgoKind::Lm]
    }
}

/// The selection strategies compared in Figures 4 and 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Unshrunk summaries, flat ranking.
    Plain,
    /// Adaptive shrinkage (the paper's method, Figure 3).
    Shrinkage,
    /// The hierarchical baseline of \[17\].
    Hierarchical,
    /// Shrinkage applied to every (query, database) pair (ablation).
    Universal,
}

impl Strategy {
    /// Display name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Plain => "Plain",
            Strategy::Shrinkage => "Shrinkage",
            Strategy::Hierarchical => "Hierarchical",
            Strategy::Universal => "Universal",
        }
    }
}

/// Result of a selection-accuracy run.
pub struct SelectionRun {
    /// `mean_rk[i]` = mean `R_k` over queries for `k = ks[i]`.
    pub mean_rk: Vec<f64>,
    /// Per-query `R_k` values (outer: k, inner: query), for t-tests.
    pub per_query_rk: Vec<Vec<f64>>,
    /// Fraction of (query, database) pairs where shrinkage was applied
    /// (meaningful for `Strategy::Shrinkage` only).
    pub shrinkage_rate: f64,
}

/// Run one (algorithm, strategy) condition over every query of the bed.
///
/// Non-hierarchical strategies route through the broker's
/// [`SelectionEngine`]: the profiled collection is frozen into a
/// [`Catalog`] and the whole query batch is evaluated in parallel. Query
/// `i` draws from an RNG derived from `(seed, i)`, so the output is
/// deterministic and independent of the worker-thread count.
pub fn run_selection(
    bed: &TestBed,
    profiled: &ProfiledCollection,
    algo_kind: AlgoKind,
    strategy: Strategy,
    ks: &[usize],
    seed: u64,
) -> SelectionRun {
    let algorithm = algo_kind.build(profiled);
    let k_max = ks.iter().copied().max().unwrap_or(1);

    let mut shrinkage_applied = 0usize;
    let mut shrinkage_total = 0usize;
    let rankings: Vec<Vec<RankedDatabase>> = match strategy {
        Strategy::Hierarchical => {
            let hierarchical = HierarchicalSelector::new(
                &bed.hierarchy,
                &profiled.summaries,
                &profiled.classifications,
                &profiled.category_summaries,
            );
            bed.queries
                .iter()
                .map(|query| hierarchical.rank(algorithm.as_ref(), &query.terms, k_max))
                .collect()
        }
        Strategy::Plain | Strategy::Shrinkage | Strategy::Universal => {
            let mode = match strategy {
                Strategy::Plain => ShrinkageMode::Never,
                Strategy::Shrinkage => ShrinkageMode::Adaptive,
                Strategy::Universal => ShrinkageMode::Always,
                Strategy::Hierarchical => unreachable!("handled above"),
            };
            let names: Vec<String> = bed.databases.iter().map(|d| d.name.clone()).collect();
            let catalog = Arc::new(profiled.catalog(&names));
            let config = AdaptiveConfig {
                mode,
                ..Default::default()
            };
            let engine = SelectionEngine::new(
                catalog,
                Arc::clone(&algorithm),
                config,
                DEFAULT_CACHE_CAPACITY,
            );
            let queries: Vec<Vec<TermId>> = bed.queries.iter().map(|q| q.terms.clone()).collect();
            let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
            let outcomes = engine.route_batch(&queries, seed, threads);
            outcomes
                .into_iter()
                .map(|outcome| {
                    if matches!(strategy, Strategy::Shrinkage | Strategy::Universal) {
                        shrinkage_applied += outcome.used_shrinkage.iter().filter(|&&b| b).count();
                        shrinkage_total += outcome.used_shrinkage.len();
                    }
                    outcome.ranking
                })
                .collect()
        }
    };

    let mut per_query_rk: Vec<Vec<f64>> = vec![Vec::new(); ks.len()];
    for (qi, ranking) in rankings.iter().enumerate() {
        let relevant = &bed.relevance[qi];
        for (ki, &k) in ks.iter().enumerate() {
            if let Some(value) = rk_for_ranking(ranking, relevant, k) {
                per_query_rk[ki].push(value);
            }
        }
    }

    let mean_rk = per_query_rk
        .iter()
        .map(|v| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        })
        .collect();
    let shrinkage_rate = if shrinkage_total > 0 {
        shrinkage_applied as f64 / shrinkage_total as f64
    } else {
        0.0
    };
    SelectionRun {
        mean_rk,
        per_query_rk,
        shrinkage_rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::TestBedConfig;

    fn tiny_profiled(sampler: SamplerKind) -> (TestBed, ProfiledCollection) {
        let mut bed = TestBedConfig::tiny(55).build();
        let config = HarnessConfig::new(sampler, true, 5500);
        let profiled = profile_collection(&mut bed, &config);
        (bed, profiled)
    }

    #[test]
    fn qbs_profiling_covers_all_databases() {
        let (bed, profiled) = tiny_profiled(SamplerKind::Qbs);
        assert_eq!(profiled.summaries.len(), bed.databases.len());
        assert_eq!(profiled.shrunk.len(), bed.databases.len());
        assert_eq!(profiled.classifications, bed.true_categories());
        for s in &profiled.summaries {
            assert!(s.vocabulary_size() > 0, "every sample found words");
        }
    }

    #[test]
    fn fps_profiling_classifies_databases() {
        let (bed, profiled) = tiny_profiled(SamplerKind::Fps);
        // FPS classifications are automatic — they exist and are valid ids.
        for &c in &profiled.classifications {
            assert!(c < bed.hierarchy.len());
        }
    }

    #[test]
    fn selection_run_produces_rk_curves() {
        let (bed, profiled) = tiny_profiled(SamplerKind::Qbs);
        let ks = [1, 3, 5];
        for strategy in [
            Strategy::Plain,
            Strategy::Shrinkage,
            Strategy::Hierarchical,
            Strategy::Universal,
        ] {
            let run = run_selection(&bed, &profiled, AlgoKind::Cori, strategy, &ks, 1);
            assert_eq!(run.mean_rk.len(), 3);
            for &v in &run.mean_rk {
                assert!((0.0..=1.0).contains(&v), "{strategy:?} rk {v}");
            }
        }
    }

    #[test]
    fn universal_strategy_reports_full_shrinkage_rate() {
        let (bed, profiled) = tiny_profiled(SamplerKind::Qbs);
        let run = run_selection(
            &bed,
            &profiled,
            AlgoKind::BGloss,
            Strategy::Universal,
            &[3],
            1,
        );
        assert!((run.shrinkage_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rk_is_monotone_in_k_for_ideal_relevance_mass() {
        // Not a strict invariant of Rk, but mean R_k at k = all databases
        // must be 1 for any ranking that includes all databases.
        let (bed, profiled) = tiny_profiled(SamplerKind::Qbs);
        let n = bed.databases.len();
        let run = run_selection(&bed, &profiled, AlgoKind::Lm, Strategy::Universal, &[n], 2);
        // Universal shrinkage gives every database a positive score, so all
        // databases are ranked and R_n = 1 for every defined query.
        assert!(
            (run.mean_rk[0] - 1.0).abs() < 1e-9,
            "R_n = {}",
            run.mean_rk[0]
        );
    }
}
