//! `repro` — regenerate the tables and figures of the paper.
//!
//! ```text
//! repro summary-quality [--scale N] [--runs N] [--set web|trec4|trec6|all]   Tables 4–9
//! repro selection [--scale N] [--set trec4|trec6|all] [--algo cori|bgloss|lm|all]
//!                                                                            Figures 4–5
//! repro table2 [--scale N]                                                   Table 2
//! repro table10 [--scale N]                                                  Table 10
//! repro ablation-universal [--scale N]                   adaptive vs always-on shrinkage
//! repro ablation-weighting [--scale N]                   Eq. 1 vs footnote-5 weighting
//! repro ablation-overlap [--scale N]                     overlap subtraction on/off
//! repro redde [--scale N]                                ReDDE extension (footnote 9)
//! repro classification [--scale N]                       FPS classification accuracy
//! repro ablation-fps [--scale N]                         FPS descent thresholds
//! repro ablation-classifier [--scale N]                  word vs rule probes
//! repro merging [--scale N]                              end-to-end merged results
//! repro size-effect [--scale N]                          recall gain vs database size
//! repro all [--scale N]                                  the paper's tables & figures
//! repro extras [--scale N]                               the four supplementary reports
//! ```
//!
//! `selection` also accepts `--csv DIR` to dump each figure's series as a
//! CSV file for plotting.
//!
//! `--scale N` divides database counts and sizes by `N` (default 1 = the
//! paper-scale synthetic test beds; use 4 or 8 for a quick look).

use std::collections::HashMap;

use bench::experiment::{
    profile_collection, run_selection, AlgoKind, HarnessConfig, ProfiledCollection, Strategy,
};
use bench::report::{f3, print_series, print_table};
use corpus::{TestBed, TestBedConfig};
use dbselect_core::summary::ContentSummary;
use eval::metrics::{summary_quality, EvaluatedSummary, SummaryQuality};
use eval::stats::paired_t_test;
use sampling::SamplerKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("all");
    let opts = Options::parse(&args[1.min(args.len())..]);
    match command {
        "summary-quality" => summary_quality_tables(&opts),
        "selection" => selection_figures(&opts),
        "table2" => table2(&opts),
        "table10" => table10(&opts),
        "ablation-universal" => ablation_universal(&opts),
        "ablation-weighting" => ablation_weighting(&opts),
        "ablation-overlap" => ablation_overlap(&opts),
        "redde" => redde_extension(&opts),
        "classification" => classification_report(&opts),
        "ablation-fps" => fps_threshold_ablation(&opts),
        "merging" => merging_comparison(&opts),
        "size-effect" => size_effect(&opts),
        "ablation-classifier" => classifier_ablation(&opts),
        "extras" => {
            classification_report(&opts);
            fps_threshold_ablation(&opts);
            classifier_ablation(&opts);
            merging_comparison(&opts);
            size_effect(&opts);
        }
        "all" => {
            summary_quality_tables(&opts);
            selection_figures(&opts);
            table2(&opts);
            table10(&opts);
            ablation_universal(&opts);
            ablation_weighting(&opts);
            ablation_overlap(&opts);
            redde_extension(&opts);
        }
        other => {
            eprintln!("unknown command `{other}`; see the module docs for usage");
            std::process::exit(2);
        }
    }
}

#[derive(Debug, Clone)]
struct Options {
    scale: usize,
    runs: usize,
    sets: Vec<&'static str>,
    algos: Vec<AlgoKind>,
    seed: u64,
    /// Also write figure series as CSV files into this directory.
    csv_dir: Option<String>,
}

impl Options {
    fn parse(args: &[String]) -> Self {
        let mut opts = Options {
            scale: 1,
            runs: 3,
            sets: vec![],
            algos: vec![],
            seed: 0xC0FFEE,
            csv_dir: None,
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .unwrap_or_else(|| panic!("missing value for {name}"))
                    .clone()
            };
            match arg.as_str() {
                "--scale" => opts.scale = value("--scale").parse().expect("integer scale"),
                "--runs" => opts.runs = value("--runs").parse().expect("integer runs"),
                "--seed" => opts.seed = value("--seed").parse().expect("integer seed"),
                "--csv" => opts.csv_dir = Some(value("--csv")),
                "--set" => match value("--set").as_str() {
                    "web" => opts.sets.push("web"),
                    "trec4" => opts.sets.push("trec4"),
                    "trec6" => opts.sets.push("trec6"),
                    "all" => opts.sets = vec!["web", "trec4", "trec6"],
                    other => panic!("unknown set {other}"),
                },
                "--algo" => match value("--algo").as_str() {
                    "bgloss" => opts.algos.push(AlgoKind::BGloss),
                    "cori" => opts.algos.push(AlgoKind::Cori),
                    "lm" => opts.algos.push(AlgoKind::Lm),
                    "all" => opts.algos = AlgoKind::all().to_vec(),
                    other => panic!("unknown algorithm {other}"),
                },
                other => panic!("unknown option {other}"),
            }
        }
        opts
    }

    fn sets_or(&self, default: &[&'static str]) -> Vec<&'static str> {
        if self.sets.is_empty() {
            default.to_vec()
        } else {
            self.sets.clone()
        }
    }

    fn algos_or(&self, default: &[AlgoKind]) -> Vec<AlgoKind> {
        if self.algos.is_empty() {
            default.to_vec()
        } else {
            self.algos.clone()
        }
    }

    fn bed_config(&self, set: &str) -> TestBedConfig {
        let config = match set {
            "web" => TestBedConfig::web_like(),
            "trec4" => TestBedConfig::trec4_like(),
            "trec6" => TestBedConfig::trec6_like(),
            other => panic!("unknown set {other}"),
        };
        if self.scale > 1 {
            config.scaled_down(self.scale)
        } else {
            config
        }
    }
}

/// Average of summary-quality metrics over databases.
fn collection_quality(
    bed: &TestBed,
    profiled: &ProfiledCollection,
    shrunk: bool,
) -> SummaryQuality {
    let mut acc = SummaryQuality {
        weighted_recall: 0.0,
        unweighted_recall: 0.0,
        weighted_precision: 0.0,
        unweighted_precision: 0.0,
        spearman: 0.0,
        kl_divergence: 0.0,
    };
    let n = bed.databases.len() as f64;
    for (i, tdb) in bed.databases.iter().enumerate() {
        let perfect = EvaluatedSummary::from_content_summary(&ContentSummary::perfect(&tdb.db));
        let approx = if shrunk {
            EvaluatedSummary::from_shrunk_summary(&profiled.shrunk[i])
        } else {
            EvaluatedSummary::from_content_summary(&profiled.summaries[i])
        };
        let q = summary_quality(&approx, &perfect);
        acc.weighted_recall += q.weighted_recall / n;
        acc.unweighted_recall += q.unweighted_recall / n;
        acc.weighted_precision += q.weighted_precision / n;
        acc.unweighted_precision += q.unweighted_precision / n;
        acc.spearman += q.spearman / n;
        acc.kl_divergence += q.kl_divergence / n;
    }
    acc
}

/// Tables 4–9: summary quality for {set} × {QBS, FPS} × {freq est on/off}
/// × {shrunk, unshrunk}.
fn summary_quality_tables(opts: &Options) {
    let sets = opts.sets_or(&["web", "trec4", "trec6"]);
    // (set, sampler, freq) -> (shrunk, unshrunk) averaged over runs.
    let mut results: Vec<(String, String, bool, SummaryQuality, SummaryQuality)> = Vec::new();
    for set in &sets {
        for sampler in [SamplerKind::Qbs, SamplerKind::Fps] {
            // Paper: 5 QBS samples averaged; FPS is deterministic given the
            // classifier, so one run suffices.
            let runs = if sampler == SamplerKind::Qbs {
                opts.runs
            } else {
                1
            };
            for freq in [false, true] {
                let mut sum_s: Option<SummaryQuality> = None;
                let mut sum_u: Option<SummaryQuality> = None;
                for run in 0..runs {
                    let mut bed = opts.bed_config(set).build();
                    let config = HarnessConfig::new(sampler, freq, opts.seed + run as u64 * 101);
                    let profiled = profile_collection(&mut bed, &config);
                    let qs = collection_quality(&bed, &profiled, true);
                    let qu = collection_quality(&bed, &profiled, false);
                    sum_s = Some(add_quality(sum_s, qs));
                    sum_u = Some(add_quality(sum_u, qu));
                }
                let qs = div_quality(sum_s.unwrap(), runs as f64);
                let qu = div_quality(sum_u.unwrap(), runs as f64);
                let sampler_name = if sampler == SamplerKind::Qbs {
                    "QBS"
                } else {
                    "FPS"
                };
                results.push((set.to_string(), sampler_name.to_string(), freq, qs, qu));
                eprintln!("[summary-quality] {set} {sampler_name} freq={freq} done");
            }
        }
    }

    type MetricExtractor = fn(&SummaryQuality) -> f64;
    let tables: [(&str, MetricExtractor); 6] = [
        ("Table 4: Weighted recall wr", |q| q.weighted_recall),
        ("Table 5: Unweighted recall ur", |q| q.unweighted_recall),
        ("Table 6: Weighted precision wp", |q| q.weighted_precision),
        ("Table 7: Unweighted precision up", |q| {
            q.unweighted_precision
        }),
        ("Table 8: Spearman Correlation Coefficient SRCC", |q| {
            q.spearman
        }),
        ("Table 9: KL-divergence", |q| q.kl_divergence),
    ];
    for (title, extract) in tables {
        let rows: Vec<Vec<String>> = results
            .iter()
            .map(|(set, sampler, freq, qs, qu)| {
                vec![
                    set.clone(),
                    sampler.clone(),
                    if *freq { "Yes" } else { "No" }.to_string(),
                    f3(extract(qs)),
                    f3(extract(qu)),
                ]
            })
            .collect();
        print_table(
            title,
            &[
                "Data Set",
                "Sampling",
                "Freq.Est.",
                "Shrinkage=Yes",
                "Shrinkage=No",
            ],
            &rows,
        );
    }
}

fn add_quality(acc: Option<SummaryQuality>, q: SummaryQuality) -> SummaryQuality {
    match acc {
        None => q,
        Some(a) => SummaryQuality {
            weighted_recall: a.weighted_recall + q.weighted_recall,
            unweighted_recall: a.unweighted_recall + q.unweighted_recall,
            weighted_precision: a.weighted_precision + q.weighted_precision,
            unweighted_precision: a.unweighted_precision + q.unweighted_precision,
            spearman: a.spearman + q.spearman,
            kl_divergence: a.kl_divergence + q.kl_divergence,
        },
    }
}

fn div_quality(q: SummaryQuality, n: f64) -> SummaryQuality {
    SummaryQuality {
        weighted_recall: q.weighted_recall / n,
        unweighted_recall: q.unweighted_recall / n,
        weighted_precision: q.weighted_precision / n,
        unweighted_precision: q.unweighted_precision / n,
        spearman: q.spearman / n,
        kl_divergence: q.kl_divergence / n,
    }
}

/// Figures 4 and 5: `R_k` curves for the three strategies, both samplers.
fn selection_figures(opts: &Options) {
    let sets = opts.sets_or(&["trec4", "trec6"]);
    let algos = opts.algos_or(&AlgoKind::all());
    let ks: Vec<usize> = (1..=20).collect();
    for set in &sets {
        for sampler in [SamplerKind::Qbs, SamplerKind::Fps] {
            // One expensive profiling pass per (set, sampler), shared by all
            // algorithms and strategies.
            let mut bed = opts.bed_config(set).build();
            let config = HarnessConfig::new(sampler, true, opts.seed);
            let profiled = profile_collection(&mut bed, &config);
            let sampler_name = if sampler == SamplerKind::Qbs {
                "QBS"
            } else {
                "FPS"
            };
            for algo in &algos {
                println!(
                    "\nFigure: Rk for {} over the {} data set ({sampler_name} summaries)",
                    algo.name(),
                    set
                );
                println!("{}", "-".repeat(60));
                let mut per_strategy: HashMap<&str, Vec<Vec<f64>>> = HashMap::new();
                let mut series: Vec<(&str, Vec<f64>)> = Vec::new();
                for strategy in [Strategy::Shrinkage, Strategy::Hierarchical, Strategy::Plain] {
                    let run = run_selection(&bed, &profiled, *algo, strategy, &ks, opts.seed + 7);
                    print_series(
                        &format!("{sampler_name} - {}", strategy.name()),
                        &ks,
                        &run.mean_rk,
                    );
                    series.push((strategy.name(), run.mean_rk.clone()));
                    per_strategy.insert(strategy.name(), run.per_query_rk);
                }
                if let Some(dir) = &opts.csv_dir {
                    write_figure_csv(dir, set, algo.name(), sampler_name, &ks, &series);
                }
                // Significance: shrinkage vs plain, pooled over all k.
                let shr = &per_strategy["Shrinkage"];
                let plain = &per_strategy["Plain"];
                let pooled_s: Vec<f64> = shr.iter().flatten().copied().collect();
                let pooled_p: Vec<f64> = plain.iter().flatten().copied().collect();
                if pooled_s.len() == pooled_p.len() {
                    if let Some(t) = paired_t_test(&pooled_s, &pooled_p) {
                        println!(
                            "{sampler_name}: shrinkage vs plain mean ΔRk = {:+.4}, t = {:.2}, p = {:.2e}",
                            t.mean_diff, t.t, t.p_value
                        );
                    }
                }
            }
        }
    }
}

/// Write one figure's series as `DIR/figure_{algo}_{set}_{sampler}.csv`
/// with columns `k,Shrinkage,Hierarchical,Plain` — ready for any plotting
/// tool.
fn write_figure_csv(
    dir: &str,
    set: &str,
    algo: &str,
    sampler: &str,
    ks: &[usize],
    series: &[(&str, Vec<f64>)],
) {
    use std::io::Write as _;
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {dir}: {e}");
        return;
    }
    let path = format!("{dir}/figure_{}_{set}_{sampler}.csv", algo.to_lowercase());
    let mut out = match std::fs::File::create(&path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("warning: cannot write {path}: {e}");
            return;
        }
    };
    let header: Vec<&str> = std::iter::once("k")
        .chain(series.iter().map(|(n, _)| *n))
        .collect();
    let _ = writeln!(out, "{}", header.join(","));
    for (i, k) in ks.iter().enumerate() {
        let mut row = vec![k.to_string()];
        for (_, values) in series {
            row.push(format!("{:.4}", values[i]));
        }
        let _ = writeln!(out, "{}", row.join(","));
    }
    eprintln!("[csv] wrote {path}");
}

/// Table 2: the category mixture weights λ for two example databases.
fn table2(opts: &Options) {
    let mut bed = opts.bed_config("web").build();
    let config = HarnessConfig::new(SamplerKind::Qbs, true, opts.seed);
    let profiled = profile_collection(&mut bed, &config);
    // Pick one database under a depth-3 leaf and one under a depth-2 leaf.
    let deep = bed
        .databases
        .iter()
        .position(|d| bed.hierarchy.depth(d.category) == 3)
        .unwrap_or(0);
    let shallow = bed
        .databases
        .iter()
        .position(|d| bed.hierarchy.depth(d.category) == 2)
        .unwrap_or(1);
    let mut rows = Vec::new();
    for &i in &[deep, shallow] {
        let tdb = &bed.databases[i];
        let lambdas = profiled.shrunk[i].lambdas();
        let path = bed.hierarchy.path_from_root(tdb.category);
        rows.push(vec![
            tdb.name.clone(),
            "Uniform".to_string(),
            f3(lambdas[0]),
        ]);
        for (level, &cat) in path.iter().enumerate() {
            rows.push(vec![
                String::new(),
                bed.hierarchy.name(cat).to_string(),
                f3(lambdas[1 + level]),
            ]);
        }
        rows.push(vec![
            String::new(),
            format!("{} (database)", tdb.name),
            f3(lambdas[lambdas.len() - 1]),
        ]);
    }
    print_table(
        "Table 2: category mixture weights λ for two databases",
        &["Database", "Category", "λ"],
        &rows,
    );
}

/// Table 10: percentage of (query, database) pairs with shrinkage applied.
fn table10(opts: &Options) {
    let sets = opts.sets_or(&["trec4", "trec6"]);
    let mut rows = Vec::new();
    for set in &sets {
        for sampler in [SamplerKind::Fps, SamplerKind::Qbs] {
            let mut bed = opts.bed_config(set).build();
            let config = HarnessConfig::new(sampler, true, opts.seed);
            let profiled = profile_collection(&mut bed, &config);
            let sampler_name = if sampler == SamplerKind::Qbs {
                "QBS"
            } else {
                "FPS"
            };
            for algo in AlgoKind::all() {
                let run = run_selection(
                    &bed,
                    &profiled,
                    algo,
                    Strategy::Shrinkage,
                    &[10],
                    opts.seed + 13,
                );
                // (profiling above is shared across the three algorithms)
                rows.push(vec![
                    set.to_string(),
                    sampler_name.to_string(),
                    algo.name().to_string(),
                    format!("{:.2}%", run.shrinkage_rate * 100.0),
                ]);
                eprintln!("[table10] {set} {sampler_name} {} done", algo.name());
            }
        }
    }
    print_table(
        "Table 10: query-database pairs for which shrinkage was applied",
        &["Data Set", "Sampling", "Selection", "Shrinkage Application"],
        &rows,
    );
}

/// Section 6.2 ablation: adaptive vs universal application of shrinkage.
fn ablation_universal(opts: &Options) {
    let sets = opts.sets_or(&["trec4", "trec6"]);
    let ks = [5usize, 10];
    let mut rows = Vec::new();
    for set in &sets {
        let mut bed = opts.bed_config(set).build();
        let config = HarnessConfig::new(SamplerKind::Qbs, true, opts.seed);
        let profiled = profile_collection(&mut bed, &config);
        for algo in AlgoKind::all() {
            let adaptive = run_selection(
                &bed,
                &profiled,
                algo,
                Strategy::Shrinkage,
                &ks,
                opts.seed + 3,
            );
            let universal = run_selection(
                &bed,
                &profiled,
                algo,
                Strategy::Universal,
                &ks,
                opts.seed + 3,
            );
            rows.push(vec![
                set.to_string(),
                algo.name().to_string(),
                f3(adaptive.mean_rk[0]),
                f3(universal.mean_rk[0]),
                f3(adaptive.mean_rk[1]),
                f3(universal.mean_rk[1]),
            ]);
        }
    }
    print_table(
        "Ablation: adaptive vs universal shrinkage (QBS summaries)",
        &[
            "Data Set",
            "Algorithm",
            "R5 adaptive",
            "R5 universal",
            "R10 adaptive",
            "R10 universal",
        ],
        &rows,
    );
}

/// Extension (the paper's footnote 9): the ReDDE selection algorithm over
/// the same samples, compared with the summary-based strategies.
fn redde_extension(opts: &Options) {
    use eval::rk::rk_for_ranking;
    use selection::{Redde, ReddeConfig};
    let sets = opts.sets_or(&["trec4", "trec6"]);
    let ks = [1usize, 5, 10, 20];
    let mut rows = Vec::new();
    for set in &sets {
        let mut bed = opts.bed_config(set).build();
        let config = HarnessConfig::new(SamplerKind::Qbs, true, opts.seed);
        let profiled = profile_collection(&mut bed, &config);
        let sizes: Vec<f64> = profiled.summaries.iter().map(|s| s.db_size()).collect();
        let redde = Redde::build(&profiled.samples, &sizes, ReddeConfig::default());
        // ReDDE ranking per query.
        let mut redde_rk = vec![Vec::new(); ks.len()];
        for (qi, query) in bed.queries.iter().enumerate() {
            let ranking = redde.rank(&query.terms);
            for (ki, &k) in ks.iter().enumerate() {
                if let Some(v) = rk_for_ranking(&ranking, &bed.relevance[qi], k) {
                    redde_rk[ki].push(v);
                }
            }
        }
        let redde_means: Vec<f64> = redde_rk
            .iter()
            .map(|v| {
                if v.is_empty() {
                    0.0
                } else {
                    v.iter().sum::<f64>() / v.len() as f64
                }
            })
            .collect();
        let cori_shr = run_selection(
            &bed,
            &profiled,
            AlgoKind::Cori,
            Strategy::Shrinkage,
            &ks,
            opts.seed,
        );
        let bg_shr = run_selection(
            &bed,
            &profiled,
            AlgoKind::BGloss,
            Strategy::Shrinkage,
            &ks,
            opts.seed,
        );
        for (ki, &k) in ks.iter().enumerate() {
            rows.push(vec![
                set.to_string(),
                format!("R{k}"),
                f3(redde_means[ki]),
                f3(cori_shr.mean_rk[ki]),
                f3(bg_shr.mean_rk[ki]),
            ]);
        }
    }
    print_table(
        "Extension (footnote 9): ReDDE vs shrinkage-based selection (QBS samples)",
        &[
            "Data Set",
            "k",
            "ReDDE",
            "CORI-Shrinkage",
            "bGlOSS-Shrinkage",
        ],
        &rows,
    );
}

/// The Table-4 discussion isolated: "Our shrinkage technique becomes
/// increasingly more useful for larger databases." Buckets the Web-like
/// set's databases by size and reports the mean recall gain per bucket.
fn size_effect(opts: &Options) {
    let mut bed = opts.bed_config("web").build();
    let config = HarnessConfig::new(SamplerKind::Qbs, true, opts.seed);
    let profiled = profile_collection(&mut bed, &config);
    // Buckets by true database size.
    let bounds = [0usize, 300, 1000, 3000, usize::MAX];
    let labels = ["< 300 docs", "300–1k", "1k–3k", "> 3k"];
    let mut gains: Vec<Vec<(f64, f64)>> = vec![Vec::new(); labels.len()]; // (Δwr, Δur)
    for (i, tdb) in bed.databases.iter().enumerate() {
        let size = tdb.db.num_docs();
        let bucket = bounds
            .windows(2)
            .position(|w| size >= w[0] && size < w[1])
            .unwrap();
        let perfect = EvaluatedSummary::from_content_summary(&ContentSummary::perfect(&tdb.db));
        let unshrunk = EvaluatedSummary::from_content_summary(&profiled.summaries[i]);
        let shrunk = EvaluatedSummary::from_shrunk_summary(&profiled.shrunk[i]);
        let qu = summary_quality(&unshrunk, &perfect);
        let qs = summary_quality(&shrunk, &perfect);
        gains[bucket].push((
            qs.weighted_recall - qu.weighted_recall,
            qs.unweighted_recall - qu.unweighted_recall,
        ));
    }
    let rows: Vec<Vec<String>> = labels
        .iter()
        .zip(&gains)
        .map(|(label, bucket)| {
            let n = bucket.len();
            let mean = |f: fn(&(f64, f64)) -> f64| {
                if n == 0 {
                    0.0
                } else {
                    bucket.iter().map(f).sum::<f64>() / n as f64
                }
            };
            vec![
                label.to_string(),
                n.to_string(),
                format!("{:+.3}", mean(|g| g.0)),
                format!("{:+.3}", mean(|g| g.1)),
            ]
        })
        .collect();
    print_table(
        "Size effect (Table 4 discussion): recall gain from shrinkage by database size (Web-like, QBS)",
        &["Database size", "Databases", "Δ weighted recall", "Δ unweighted recall"],
        &rows,
    );
}

/// Extension: end-to-end metasearch quality — select databases (CORI +
/// adaptive shrinkage), forward the query, and compare the three
/// results-merging strategies on the *document-level* ground truth. This
/// closes the loop on the metasearching pipeline the paper's introduction
/// defines (steps 1-3).
fn merging_comparison(opts: &Options) {
    use broker::SelectionEngine;
    use eval::merged::{average_precision, precision_at_k};
    use selection::{merge_results, AdaptiveConfig, MergeStrategy};
    use textindex::RemoteDatabase;

    let sets = opts.sets_or(&["trec6"]);
    let k_dbs = 5usize;
    let per_db = 10usize;
    let mut rows = Vec::new();
    for set in &sets {
        let mut bed = opts.bed_config(set).build();
        let config = HarnessConfig::new(SamplerKind::Qbs, true, opts.seed);
        let profiled = profile_collection(&mut bed, &config);
        let algorithm = AlgoKind::Cori.build(&profiled);
        // One adaptive selection pass per query, shared by the three merge
        // strategies: the comparison isolates merging, and the broker
        // engine evaluates the whole batch in parallel.
        let names: Vec<String> = bed.databases.iter().map(|d| d.name.clone()).collect();
        let catalog = std::sync::Arc::new(profiled.catalog(&names));
        let engine = SelectionEngine::new(
            catalog,
            algorithm,
            AdaptiveConfig::default(),
            broker::DEFAULT_CACHE_CAPACITY,
        );
        let queries: Vec<Vec<u32>> = bed.queries.iter().map(|q| q.terms.clone()).collect();
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        let outcomes = engine.route_batch(&queries, opts.seed + 99, threads);
        for strategy in [
            MergeStrategy::RoundRobin,
            MergeStrategy::RawScore,
            MergeStrategy::CoriWeighted,
        ] {
            let mut p10 = Vec::new();
            let mut ap = Vec::new();
            for (qi, query) in bed.queries.iter().enumerate() {
                let outcome = &outcomes[qi];
                let inputs: Vec<(usize, f64, textindex::SearchOutcome)> = outcome
                    .ranking
                    .iter()
                    .take(k_dbs)
                    .map(|r| {
                        (
                            r.index,
                            r.score,
                            bed.databases[r.index].db.query_any(&query.terms, per_db),
                        )
                    })
                    .collect();
                let merged: Vec<(usize, u32)> = merge_results(&inputs, strategy, k_dbs * per_db)
                    .into_iter()
                    .map(|m| (m.database, m.doc))
                    .collect();
                let total = bed.total_relevant(qi);
                if total == 0 {
                    continue;
                }
                p10.push(precision_at_k(
                    &merged,
                    |db, doc| bed.is_relevant(qi, db, doc),
                    10,
                ));
                if let Some(v) =
                    average_precision(&merged, |db, doc| bed.is_relevant(qi, db, doc), total)
                {
                    ap.push(v);
                }
            }
            let mean = |v: &[f64]| {
                if v.is_empty() {
                    0.0
                } else {
                    v.iter().sum::<f64>() / v.len() as f64
                }
            };
            rows.push(vec![
                set.to_string(),
                format!("{strategy:?}"),
                f3(mean(&p10)),
                f3(mean(&ap)),
            ]);
        }
    }
    print_table(
        "Extension: end-to-end metasearch (CORI-Shrinkage selection, k=5 databases, 10 docs each)",
        &["Data Set", "Merge strategy", "P@10", "MAP"],
        &rows,
    );
}

/// Ablation: single-word discriminative probes vs QProber-style learned
/// rules as the Focused Probing classifier.
fn classifier_ablation(opts: &Options) {
    use bench::experiment::ClassifierKind;
    let mut rows = Vec::new();
    for kind in [ClassifierKind::Words, ClassifierKind::Rules] {
        let mut bed = opts.bed_config("trec4").build();
        let mut config = HarnessConfig::new(SamplerKind::Fps, true, opts.seed);
        config.classifier_kind = kind;
        let profiled = profile_collection(&mut bed, &config);
        let truth = bed.true_categories();
        let n = truth.len() as f64;
        let exact = profiled
            .classifications
            .iter()
            .zip(&truth)
            .filter(|(a, b)| a == b)
            .count() as f64
            / n;
        let on_path = profiled
            .classifications
            .iter()
            .zip(&truth)
            .filter(|(&p, &t)| bed.hierarchy.path_from_root(t).contains(&p))
            .count() as f64
            / n;
        let mean_sample = profiled
            .summaries
            .iter()
            .map(|s| f64::from(s.sample_size()))
            .sum::<f64>()
            / n;
        let q = collection_quality(&bed, &profiled, true);
        rows.push(vec![
            format!("{kind:?}"),
            format!("{:.1}%", exact * 100.0),
            format!("{:.1}%", on_path * 100.0),
            format!("{mean_sample:.0}"),
            f3(q.weighted_recall),
            f3(q.unweighted_recall),
        ]);
    }
    print_table(
        "Ablation: FPS probe classifier (TREC4-like)",
        &[
            "Classifier",
            "Exact leaf",
            "On true path",
            "Mean |S|",
            "Shrunk wr",
            "Shrunk ur",
        ],
        &rows,
    );
}

/// Diagnostic: how accurate is the automatic (FPS) database classification
/// relative to the ground truth? The paper verified its TREC classification
/// manually ("generally accurate"; misclassified databases still landed in
/// the same wrong category as their topical twins, Section 5.2).
fn classification_report(opts: &Options) {
    let sets = opts.sets_or(&["trec4", "trec6"]);
    let mut rows = Vec::new();
    for set in &sets {
        let mut bed = opts.bed_config(set).build();
        let config = HarnessConfig::new(SamplerKind::Fps, true, opts.seed);
        let profiled = profile_collection(&mut bed, &config);
        let truth = bed.true_categories();
        let n = truth.len() as f64;
        let mut exact = 0usize;
        let mut on_path = 0usize;
        let mut top_branch = 0usize;
        for (i, &predicted) in profiled.classifications.iter().enumerate() {
            let true_path = bed.hierarchy.path_from_root(truth[i]);
            if predicted == truth[i] {
                exact += 1;
            }
            if true_path.contains(&predicted) {
                on_path += 1; // correct but possibly less specific
            }
            let predicted_path = bed.hierarchy.path_from_root(predicted);
            if predicted_path.len() > 1 && true_path.len() > 1 && predicted_path[1] == true_path[1]
            {
                top_branch += 1;
            }
        }
        rows.push(vec![
            set.to_string(),
            format!("{:.1}%", exact as f64 / n * 100.0),
            format!("{:.1}%", on_path as f64 / n * 100.0),
            format!("{:.1}%", top_branch as f64 / n * 100.0),
        ]);
    }
    print_table(
        "FPS automatic classification accuracy vs ground truth",
        &[
            "Data Set",
            "Exact leaf",
            "On true path (≤ specific)",
            "Same top-level branch",
        ],
        &rows,
    );
}

/// Ablation: the Focused Probing descent thresholds (coverage τ_c,
/// specificity τ_s) trade sampling cost against classification depth —
/// the knob \[17\] studies.
fn fps_threshold_ablation(opts: &Options) {
    use sampling::FpsConfig;
    let mut rows = Vec::new();
    for (coverage, specificity) in [(5u32, 0.15f64), (10, 0.25), (20, 0.40), (u32::MAX, 1.0)] {
        let mut bed = opts.bed_config("trec4").build();
        let mut config = HarnessConfig::new(SamplerKind::Fps, true, opts.seed);
        config.fps = FpsConfig {
            coverage_threshold: coverage,
            specificity_threshold: specificity,
            ..Default::default()
        };
        let profiled = profile_collection(&mut bed, &config);
        let truth = bed.true_categories();
        let exact = profiled
            .classifications
            .iter()
            .zip(&truth)
            .filter(|(a, b)| a == b)
            .count() as f64
            / truth.len() as f64;
        let mean_depth = profiled
            .classifications
            .iter()
            .map(|&c| bed.hierarchy.depth(c) as f64)
            .sum::<f64>()
            / truth.len() as f64;
        let mean_sample = profiled
            .summaries
            .iter()
            .map(|s| f64::from(s.sample_size()))
            .sum::<f64>()
            / truth.len() as f64;
        let q = collection_quality(&bed, &profiled, true);
        let coverage_label = if coverage == u32::MAX {
            "∞ (stay at root)".to_string()
        } else {
            coverage.to_string()
        };
        rows.push(vec![
            coverage_label,
            format!("{specificity:.2}"),
            format!("{:.1}%", exact * 100.0),
            format!("{mean_depth:.2}"),
            format!("{mean_sample:.0}"),
            f3(q.weighted_recall),
        ]);
    }
    print_table(
        "Ablation: FPS descent thresholds (TREC4-like)",
        &[
            "τ_c (coverage)",
            "τ_s (specificity)",
            "Exact leaf",
            "Mean depth",
            "Mean |S|",
            "Shrunk wr",
        ],
        &rows,
    );
}

/// Footnote-5 ablation: size-weighted (Eq. 1) vs uniform category averaging.
fn ablation_weighting(opts: &Options) {
    use dbselect_core::category_summary::CategoryWeighting;
    let mut rows = Vec::new();
    for weighting in [CategoryWeighting::BySize, CategoryWeighting::Uniform] {
        let mut bed = opts.bed_config("trec4").build();
        let mut config = HarnessConfig::new(SamplerKind::Qbs, true, opts.seed);
        config.weighting = weighting;
        let profiled = profile_collection(&mut bed, &config);
        let q = collection_quality(&bed, &profiled, true);
        rows.push(vec![
            format!("{weighting:?}"),
            f3(q.weighted_recall),
            f3(q.unweighted_recall),
            f3(q.weighted_precision),
            f3(q.spearman),
        ]);
    }
    print_table(
        "Ablation: category aggregation weighting (Eq. 1 vs footnote 5), TREC4-like, shrunk summaries",
        &["Weighting", "wr", "ur", "wp", "SRCC"],
        &rows,
    );
}

/// Ablation: overlap subtraction when building shrinkage components.
fn ablation_overlap(opts: &Options) {
    let mut rows = Vec::new();
    for subtract in [true, false] {
        let mut bed = opts.bed_config("trec4").build();
        let mut config = HarnessConfig::new(SamplerKind::Qbs, true, opts.seed);
        config.subtract_overlap = subtract;
        let profiled = profile_collection(&mut bed, &config);
        let q = collection_quality(&bed, &profiled, true);
        // Mean database λ (how much weight the database keeps for itself).
        let mean_db_lambda: f64 = profiled
            .shrunk
            .iter()
            .map(|s| s.lambdas().last().copied().unwrap_or(0.0))
            .sum::<f64>()
            / profiled.shrunk.len() as f64;
        rows.push(vec![
            if subtract { "Yes (paper)" } else { "No" }.to_string(),
            f3(q.weighted_recall),
            f3(q.weighted_precision),
            f3(q.kl_divergence),
            f3(mean_db_lambda),
        ]);
    }
    print_table(
        "Ablation: child-overlap subtraction in category components, TREC4-like, shrunk summaries",
        &["Subtract overlap", "wr", "wp", "KL", "mean λ(database)"],
        &rows,
    );
}
